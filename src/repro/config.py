"""Configuration objects shared across the library.

Two dataclasses drive every experiment in the paper:

* :class:`TrainConfig` — GBDT hyper-parameters.  Defaults match Section 5.1
  of the paper: ``T = 100`` trees, ``L = 8`` layers, ``q = 20`` candidate
  splits, logistic-style regularization with ``lambda_ = 1.0``.
* :class:`ClusterConfig` — the simulated cluster: number of workers and the
  network model.  Defaults match the paper's laboratory cluster (8 nodes,
  1 Gbps Ethernet).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of GBDT training.

    Attributes
    ----------
    num_trees:
        ``T`` in the paper — number of boosting rounds.  For a ``C``-class
        problem each round trains ``C`` one-vs-rest trees (the usual
        softmax-boosting formulation); the paper counts such a round as one
        "tree group".
    num_layers:
        ``L`` in the paper — depth of each tree counted in *layers*, so a
        tree has at most ``2**(L-1)`` leaves.
    num_candidates:
        ``q`` — candidate splits (histogram bins) proposed per feature.
    learning_rate:
        ``eta`` — shrinkage applied to leaf values.
    reg_lambda:
        ``lambda`` — L2 regularization on leaf weights (Equations 1 and 2).
    reg_gamma:
        ``gamma`` — per-leaf complexity penalty (Equation 2).
    min_split_gain:
        Minimum gain for a split to be accepted; nodes below become leaves.
    min_node_instances:
        Nodes with fewer instances are not split further.
    objective:
        ``"binary"`` (logistic loss), ``"multiclass"`` (softmax) or
        ``"regression"`` (square loss).
    num_classes:
        ``C`` — used only for ``objective="multiclass"``.
    sketch_eps:
        Accuracy parameter of the Greenwald-Khanna quantile sketch used to
        propose candidate splits.
    growth:
        ``"layerwise"`` (the paper's level-wise growth; all distributed
        quadrants use it) or ``"leafwise"`` (best-first growth as in
        LightGBM; reference trainer only).
    max_leaves:
        Leaf budget for leaf-wise growth; 0 means ``2**(num_layers-1)``
        (the full-tree equivalent).
    subsample / colsample:
        Per-tree instance and feature sampling fractions (stochastic
        GBDT).  Reference trainer only — the distributed quadrants study
        data management of the full dataset and reject sampling.
    seed:
        Seed for the sampling random stream.
    plan:
        Execution-plan registry key (e.g. ``"qd2-ps"``) naming the
        distributed strategy composition to train with; the empty string
        leaves the choice to the caller (``--system`` flag, advisor,
        harness).  Resolved against :data:`repro.systems.plans.PLANS`
        at build time, not here — the config layer stays free of system
        imports.
    faults:
        Seeded fault schedule as a ``SEED:SPEC`` string (e.g.
        ``"42:crash=2,drop=0.05"``); the empty string trains fault-free.
        Parsed by :meth:`repro.cluster.faults.FaultPlan.parse` at build
        time, not here — like ``plan``, the config layer stays free of
        cluster imports.
    codec:
        Wire-format codec stack for inter-worker payloads (``"none"``,
        ``"sparse"``, ``"delta"``, ``"f32"``, ``"f16"``); the empty
        string means ``"none"`` (dense float64 payloads, the paper's
        accounting).  Lossy stacks (``f32``/``f16``) trade model
        bit-identity for bytes and are strictly opt-in.  Resolved by
        :func:`repro.cluster.codecs.get_codec_stack` at build time, not
        here — like ``plan``, the config layer stays free of cluster
        imports.
    backend:
        Kernel backend for the histogram/predict hot loops (``"numpy"``,
        ``"numba"``, ``"pyloop"`` or ``"auto"``); the empty string means
        the portable numpy default.  All backends are bit-identical on
        the lossless path, so this is purely a speed knob.  Resolved by
        :func:`repro.core.kernels.make_backend` at build time, not here
        — like ``plan``, the config layer stays free of kernel imports.
    adapt:
        Adaptive re-planning cadence: every ``adapt`` trees the session
        recalibrates the cost model against the observed ledger and
        migrates to a cheaper execution plan when the projected savings
        over the remaining trees exceed the migration bill (DESIGN.md
        §13).  ``0`` (the default) disables adaptation; the CLI spells
        it ``--plan auto-adapt`` with ``--adapt-every``.
    """

    num_trees: int = 100
    num_layers: int = 8
    num_candidates: int = 20
    learning_rate: float = 0.1
    reg_lambda: float = 1.0
    reg_gamma: float = 0.0
    min_split_gain: float = 0.0
    min_node_instances: int = 1
    objective: str = "binary"
    num_classes: int = 2
    sketch_eps: float = 0.005
    growth: str = "layerwise"
    max_leaves: int = 0
    subsample: float = 1.0
    colsample: float = 1.0
    seed: int = 0
    plan: str = ""
    faults: str = ""
    codec: str = ""
    backend: str = ""
    adapt: int = 0

    def __post_init__(self) -> None:
        if self.num_trees < 1:
            raise ValueError(f"num_trees must be >= 1, got {self.num_trees}")
        if self.num_layers < 2:
            raise ValueError(f"num_layers must be >= 2, got {self.num_layers}")
        if self.num_candidates < 1:
            raise ValueError(
                f"num_candidates must be >= 1, got {self.num_candidates}"
            )
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )
        if self.reg_lambda < 0.0:
            raise ValueError(f"reg_lambda must be >= 0, got {self.reg_lambda}")
        if self.reg_gamma < 0.0:
            raise ValueError(f"reg_gamma must be >= 0, got {self.reg_gamma}")
        if self.objective not in ("binary", "multiclass", "regression"):
            raise ValueError(f"unknown objective: {self.objective!r}")
        if self.objective == "multiclass" and self.num_classes < 3:
            raise ValueError(
                "multiclass objective requires num_classes >= 3, "
                f"got {self.num_classes}"
            )
        if self.growth not in ("layerwise", "leafwise"):
            raise ValueError(f"unknown growth strategy: {self.growth!r}")
        if self.max_leaves < 0:
            raise ValueError(f"max_leaves must be >= 0, got "
                             f"{self.max_leaves}")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got "
                             f"{self.subsample}")
        if not 0.0 < self.colsample <= 1.0:
            raise ValueError(f"colsample must be in (0, 1], got "
                             f"{self.colsample}")
        if self.adapt < 0:
            raise ValueError(f"adapt must be >= 0, got {self.adapt}")

    @property
    def uses_sampling(self) -> bool:
        return self.subsample < 1.0 or self.colsample < 1.0

    @property
    def gradient_dim(self) -> int:
        """``C`` of Section 3.1.1 — 1 for binary/regression, else #classes."""
        if self.objective == "multiclass":
            return self.num_classes
        return 1

    @property
    def max_nodes(self) -> int:
        """Total nodes of a complete tree with ``num_layers`` layers."""
        return 2 ** self.num_layers - 1

    @property
    def effective_max_leaves(self) -> int:
        """Leaf budget for leaf-wise growth."""
        if self.max_leaves > 0:
            return self.max_leaves
        return 2 ** (self.num_layers - 1)


@dataclass(frozen=True)
class NetworkModel:
    """Cost model of the simulated interconnect.

    ``time = latency_s + bytes / bandwidth_bytes_per_s`` for each logical
    transfer; collectives decompose into transfers following the standard
    ring-algorithm cost in :mod:`repro.cluster.comm`.

    The defaults model the paper's laboratory cluster: 1 Gbps Ethernet and a
    conservative 0.5 ms software latency per operation.  ``production()``
    returns the 10 Gbps profile of the Tencent cluster in Section 6.
    """

    bandwidth_gbps: float = 1.0
    latency_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(
                f"bandwidth_gbps must be > 0, got {self.bandwidth_gbps}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    def transfer_time(self, num_bytes: float) -> float:
        """Simulated seconds to move ``num_bytes`` point-to-point."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bytes_per_second

    @classmethod
    def laboratory(cls) -> "NetworkModel":
        """The 1 Gbps cluster of Section 5."""
        return cls(bandwidth_gbps=1.0)

    @classmethod
    def production(cls) -> "NetworkModel":
        """The 10 Gbps Tencent cluster of Section 6."""
        return cls(bandwidth_gbps=10.0)


@dataclass(frozen=True)
class ClusterConfig:
    """The simulated cluster: ``W`` workers plus a network model.

    ``worker_speeds`` models heterogeneous machines (stragglers): worker
    ``w`` executes at ``worker_speeds[w]`` times the baseline rate, so a
    value of 0.5 makes it twice as slow.  ``None`` means homogeneous.
    """

    num_workers: int = 8
    network: NetworkModel = field(default_factory=NetworkModel)
    seed: int = 0
    worker_speeds: tuple = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.worker_speeds is not None:
            speeds = tuple(self.worker_speeds)
            if len(speeds) != self.num_workers:
                raise ValueError(
                    f"worker_speeds needs {self.num_workers} entries, "
                    f"got {len(speeds)}"
                )
            if any(s <= 0 for s in speeds):
                raise ValueError("worker speeds must be > 0")
            object.__setattr__(self, "worker_speeds", speeds)

    def speed_of(self, worker: int) -> float:
        if self.worker_speeds is None:
            return 1.0
        return self.worker_speeds[worker]
