"""Shared skeleton of the four distributed quadrant implementations.

The paper's Section 5.2 methodology — "implement different quadrants in the
same code base" — is realized here: every quadrant subclasses
:class:`DistributedGBDT` and reuses the same split finding, leaf
finalization, gradient bookkeeping, timing and memory accounting; only the
partitioning scheme, storage pattern, index structure and communication
pattern differ, each implemented in the subclass.

Timing model
------------
Computation runs for real; each simulated worker's kernel time is measured
with a wall clock, and a phase's parallel elapsed time is the *maximum*
over workers (workers run concurrently in the modelled cluster).
Communication time comes from the byte-accounted
:class:`~repro.cluster.network.SimulatedNetwork`.  Per-tree reports split
time into the paper's two buckets: ``Comp`` and ``Comm`` (Figure 10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..config import ClusterConfig, TrainConfig
from ..core.histogram import Histogram, HistogramBuilder, HistogramPool
from ..core.loss import Loss, make_loss
from ..core.split import SplitInfo, find_best_split, leaf_weight
from ..core.tree import Tree, TreeEnsemble
from ..data.dataset import BinnedDataset, Dataset
from ..cluster.codecs import get_codec_stack
from ..cluster.network import CommStats, SimulatedNetwork


@dataclass
class TreeReport:
    """Cost breakdown of training one tree (one bar of Figure 10).

    ``phase_seconds`` splits computation into the Section 3.2.4 phases
    (gradient, histogram, split-find, node-split); per-phase maxima are
    taken over workers independently, so they need not sum exactly to
    ``comp_seconds`` (which is the max of per-worker totals).
    """

    comp_seconds: float = 0.0
    comm_seconds: float = 0.0
    comm_bytes: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.comp_seconds + self.comm_seconds


@dataclass
class MemoryReport:
    """Peak per-worker memory split into the paper's two buckets
    (Figure 10(e)/(f)): dataset storage vs gradient histograms."""

    data_bytes: int = 0
    histogram_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.histogram_bytes


@dataclass
class DistEvalRecord:
    """Validation metric with the simulated time axis of Figure 11."""

    tree_index: int
    metric_name: str
    metric_value: float
    elapsed_seconds: float


@dataclass
class DistTrainResult:
    """Model plus the full cost/quality record of a distributed run.

    ``plan_history`` lists every execution plan the run trained under, in
    order (one entry for a static run); ``migrations`` and ``decisions``
    record the :class:`~repro.systems.migration.MigrationRecord` and
    :class:`~repro.systems.advisor.AdaptDecision` trail of an adaptive
    session (both empty for a static run).
    """

    ensemble: TreeEnsemble
    tree_reports: List[TreeReport] = field(default_factory=list)
    evals: List[DistEvalRecord] = field(default_factory=list)
    memory: MemoryReport = field(default_factory=MemoryReport)
    comm: CommStats = field(default_factory=CommStats)
    plan_history: List[str] = field(default_factory=list)
    migrations: List = field(default_factory=list)
    decisions: List = field(default_factory=list)

    def total_modeled_seconds(self) -> float:
        """Simulated cost of the whole run: trees plus migration bills."""
        return (
            sum(r.total_seconds for r in self.tree_reports)
            + sum(m.seconds for m in self.migrations)
        )

    def mean_tree_seconds(self) -> float:
        if not self.tree_reports:
            return 0.0
        return float(
            np.mean([r.total_seconds for r in self.tree_reports])
        )

    def mean_comp_seconds(self) -> float:
        if not self.tree_reports:
            return 0.0
        return float(np.mean([r.comp_seconds for r in self.tree_reports]))

    def mean_comm_seconds(self) -> float:
        if not self.tree_reports:
            return 0.0
        return float(np.mean([r.comm_seconds for r in self.tree_reports]))

    def std_tree_seconds(self) -> float:
        if not self.tree_reports:
            return 0.0
        return float(np.std([r.total_seconds for r in self.tree_reports]))


#: computation phases of one boosting round (Section 3.2.4 vocabulary,
#: plus the wire-codec encode/decode kernels of the codec layer)
PHASES = ("gradient", "histogram", "split-find", "node-split", "codec")


class WorkerClock:
    """Per-worker computation stopwatch; phase time = max over workers.

    ``speeds`` (from :attr:`ClusterConfig.worker_speeds`) scales measured
    kernel time per worker: a 0.5-speed straggler is charged twice the
    measured seconds, so the max-over-workers phase time reflects it.

    Charges carry a *phase* label so the per-round breakdown (gradient /
    histogram / split-find / node-split) can be reported — the paper's
    Section 3.2.4 argues histogram construction dominates the rest.
    """

    def __init__(self, num_workers: int,
                 speeds: Optional[Sequence[float]] = None) -> None:
        self.seconds = np.zeros(num_workers, dtype=np.float64)
        self.phase_seconds: Dict[str, np.ndarray] = {
            phase: np.zeros(num_workers, dtype=np.float64)
            for phase in PHASES
        }
        if speeds is None:
            self._inv_speeds = np.ones(num_workers, dtype=np.float64)
        else:
            self._inv_speeds = 1.0 / np.asarray(speeds, dtype=np.float64)

    def charge(self, worker: int, seconds: float,
               phase: str = "histogram") -> None:
        scaled = seconds * self._inv_speeds[worker]
        self.seconds[worker] += scaled
        self.phase_seconds[phase][worker] += scaled

    def charge_all(self, seconds: float,
                   phase: str = "histogram") -> None:
        scaled = seconds * self._inv_speeds
        self.seconds += scaled
        self.phase_seconds[phase] += scaled

    @property
    def elapsed(self) -> float:
        return float(self.seconds.max()) if self.seconds.size else 0.0

    def phase_breakdown(self) -> Dict[str, float]:
        """Per-phase parallel time (max over workers, per phase)."""
        return {
            phase: float(per_worker.max()) if per_worker.size else 0.0
            for phase, per_worker in self.phase_seconds.items()
        }


class HistogramStore:
    """Per-worker histogram cache with live/peak byte tracking.

    Parents are retained for subtraction (Section 3.1.2), so the peak here
    is exactly the paper's per-worker histogram memory.  With a
    :class:`~repro.core.histogram.HistogramPool` attached, retired buffers
    are recycled on ``pop``/``clear`` instead of discarded; pool-parked
    buffers no longer count as live, so the accounting is unchanged.
    """

    def __init__(self, pool: Optional[HistogramPool] = None) -> None:
        self._store: Dict[int, Histogram] = {}
        self._pool = pool
        self.live_bytes = 0
        self.peak_bytes = 0

    def put(self, node: int, hist: Histogram) -> None:
        old = self._store.get(node)
        if old is not None:
            self.live_bytes -= old.nbytes
        self._store[node] = hist
        self.live_bytes += hist.nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)

    def get(self, node: int) -> Histogram:
        return self._store[node]

    def pop(self, node: int) -> Optional[Histogram]:
        """Retire a node's histogram.

        Without a pool the histogram is returned for the caller to use;
        with one it is released for reuse and ``None`` is returned (a
        recycled buffer must not be retained).
        """
        hist = self._store.pop(node, None)
        if hist is not None:
            self.live_bytes -= hist.nbytes
            if self._pool is not None:
                self._pool.release(hist)
                return None
        return hist

    def __contains__(self, node: int) -> bool:
        return node in self._store

    def clear(self) -> None:
        if self._pool is not None:
            for hist in self._store.values():
                self._pool.release(hist)
        self._store.clear()
        self.live_bytes = 0


class DistributedGBDT:
    """Base distributed trainer; subclasses implement one quadrant."""

    #: quadrant label, e.g. "QD4"
    quadrant: str = "base"
    #: human name, e.g. "Vero"
    name: str = "base"
    #: histogram subtraction (Section 2.1.2); disable for the ablation
    use_subtraction: bool = True

    def __init__(self, config: TrainConfig, cluster: ClusterConfig) -> None:
        if config.uses_sampling:
            raise ValueError(
                "the distributed quadrants study full-dataset data "
                "management; subsample/colsample are reference-trainer "
                "features"
            )
        if config.growth != "layerwise":
            raise ValueError(
                "the distributed quadrants grow trees layer-wise "
                "(the paper's strategy); leaf-wise growth is a "
                "reference-trainer feature"
            )
        self.config = config
        self.cluster = cluster
        self.net = SimulatedNetwork(cluster.network)
        #: negotiated wire-format codec stack for inter-worker payloads
        self.codec = get_codec_stack(config.codec)
        self.loss: Loss = make_loss(config.objective, config.num_classes)
        # workspace-owning kernel engine shared by the simulated workers;
        # its pool recycles per-node histogram buffers across layers/trees,
        # and config.backend picks the scatter kernel implementation
        self.hist_builder = HistogramBuilder(
            backend=config.backend or None)
        self.hist_builder.constant_hessian = self.loss.constant_hessian

    # -- subclass contract -----------------------------------------------------

    def _setup(self, binned: BinnedDataset) -> None:
        """Partition the dataset and initialize per-worker state."""
        raise NotImplementedError

    def _train_tree(self, grad: np.ndarray, hess: np.ndarray,
                    clock: WorkerClock) -> Tuple[Tree, np.ndarray]:
        """Grow one tree; returns it plus each instance's leaf id."""
        raise NotImplementedError

    def _histogram_peak_bytes(self) -> int:
        """Max per-worker histogram memory seen so far."""
        raise NotImplementedError

    def _data_bytes(self) -> int:
        """Max per-worker dataset memory (shard + labels)."""
        raise NotImplementedError

    # -- shared driver -----------------------------------------------------------

    def fit(
        self,
        train: "Dataset | BinnedDataset",
        valid: Optional[Dataset] = None,
        num_trees: Optional[int] = None,
    ) -> DistTrainResult:
        """Train on a dataset (binned on the fly) or a pre-binned dataset.

        The tree loop itself lives in
        :class:`~repro.systems.executor.TrainingSession`; this wrapper
        runs one session to completion.  Callers that need to pause,
        checkpoint, or migrate plans mid-run construct the session
        directly.
        """
        from .executor import TrainingSession

        return TrainingSession(self, train, valid=valid,
                               num_trees=num_trees).run()

    def predict(self, ensemble: TreeEnsemble,
                dataset: Dataset) -> np.ndarray:
        """Predictions in the objective's natural space."""
        return self.loss.predict(ensemble.raw_scores(dataset.csc()))

    # -- shared pieces used by subclasses ---------------------------------------

    def _measure_gradient_unit(self, binned: BinnedDataset,
                               scores: np.ndarray) -> float:
        """Measured seconds per instance of one gradient computation."""
        start = time.perf_counter()
        self.loss.gradients(binned.labels, scores)
        total = time.perf_counter() - start
        return total / max(binned.num_instances, 1)

    def _gradient_instances(self) -> int:
        """Instances each worker computes gradients for.

        Horizontal partitioning: the shard's rows (``N / W``); vertical:
        every worker holds all labels and computes all ``N`` (Section
        2.2.1).  Subclasses override accordingly.
        """
        raise NotImplementedError

    def _decide_split(
        self,
        hist: Histogram,
        stats: Tuple[np.ndarray, np.ndarray],
        count: int,
        bins_per_feature: np.ndarray,
    ) -> Optional[SplitInfo]:
        """Local best split under the shared acceptance rules."""
        cfg = self.config
        if count < max(2, 2 * cfg.min_node_instances):
            return None
        split = find_best_split(
            hist, stats[0], stats[1], cfg.reg_lambda, cfg.reg_gamma,
            bins_per_feature,
        )
        if split is not None and split.gain < cfg.min_split_gain:
            return None
        return split

    def _leaf(self, stats: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        return leaf_weight(stats[0], stats[1], self.config.reg_lambda)


def _leaf_scores(tree: Tree, leaf_of_instance: np.ndarray) -> np.ndarray:
    """Per-instance leaf weights from the training-time assignment.

    One lookup-table gather instead of a boolean mask per leaf; ids of
    ``-1`` (untracked rows) land on the trailing all-zero row.
    """
    max_node = max(tree.nodes) if tree.nodes else 0
    lut = np.zeros((max_node + 2, tree.gradient_dim))
    for node_id, node in tree.nodes.items():
        if node.is_leaf:
            lut[node_id] = node.weight
    return lut[leaf_of_instance]


def subtraction_schedule(
    nodes: Sequence[int], counts: Dict[int, int], have_parent: Set[int]
) -> List[Tuple[str, int, int]]:
    """Plan histogram construction for one layer (master's "schema").

    Returns a list of ``("build", node, -1)`` and
    ``("subtract", node, sibling)`` actions: for each sibling pair whose
    parent histogram is retained, build only the smaller child and derive
    the other (Section 2.1.2); every other node is built directly.
    """
    actions: List[Tuple[str, int, int]] = []
    done: Set[int] = set()
    node_set = set(nodes)
    for node in nodes:
        if node in done:
            continue
        if node == 0:
            actions.append(("build", node, -1))
            done.add(node)
            continue
        parent = (node - 1) // 2
        sibling = node + 1 if node % 2 == 1 else node - 1
        if sibling in node_set and parent in have_parent:
            left, right = min(node, sibling), max(node, sibling)
            small = left if counts.get(left, 0) <= counts.get(right, 0) \
                else right
            large = right if small == left else left
            actions.append(("build", small, -1))
            actions.append(("subtract", large, small))
            done.update((small, large))
        else:
            actions.append(("build", node, -1))
            done.add(node)
    return actions
