"""The plan executor: one training loop for every quadrant.

:class:`PlanExecutor` replaces the per-quadrant ``_train_tree`` overrides
of the old inheritance tree.  It composes one strategy per axis —
partitioning, storage layout, index plan, aggregation — and runs the
single layer-wise loop they all shared:

1. build each worker's histograms for the layer (:class:`IndexPlan`),
2. turn them into global split decisions (:class:`AggregationStrategy`),
3. finalize the nodes that did not split,
4. apply the winning splits to every index replica (aggregation again —
   it owns the placement traffic),
5. run post-layer index maintenance and histogram retirement.

All per-run state (shards, indexes, histogram stores, node statistics)
lives on the executor; the strategies are stateless singletons from
:mod:`~repro.systems.strategies`.  Which strategies compose is described
by an :class:`~repro.systems.plans.ExecutionPlan`, so a new system
variant is a registry entry, not a subclass.

Fault tolerance
---------------
With ``TrainConfig.faults`` set, the executor checkpoints trainer state
at every tree boundary (:class:`TreeCheckpoint`: model, row-placement
state, network snapshot) and consults the seeded
:class:`~repro.cluster.faults.FaultInjector` at every layer boundary.  A
scheduled worker crash aborts the tree: the aborted attempt's traffic is
reclassified under ``recovery:<kind>``, the aggregation strategy's
recovery policy charges the restore traffic (``recovery:reshard`` /
``recovery:replicate`` / ``recovery:checkpoint``), state is restored
from the checkpoint, and the tree replays.  Replay is deterministic, so
the final model is bit-identical to the fault-free run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from ..cluster.comm import SPLIT_INFO_BYTES
from ..cluster.faults import (CrashEvent, FaultInjector, FaultPlan,
                              RECOVERY_PREFIX)
from ..cluster.network import CommStats
from ..cluster.transform import TransformResult, horizontal_to_vertical
from ..config import ClusterConfig, TrainConfig
from ..core.gbdt import evaluate
from ..core.indexing import NodeToInstanceIndex
from ..core.tree import Tree, TreeEnsemble, layer_nodes
from ..data.dataset import BinnedDataset, Dataset, bin_dataset
from .base import (DistEvalRecord, DistributedGBDT, DistTrainResult,
                   HistogramStore, MemoryReport, TreeReport, WorkerClock,
                   _leaf_scores)
from .strategies import AGGREGATIONS, INDEX_PLANS, PARTITIONS, STORAGES

if TYPE_CHECKING:
    from .migration import MigrationRecord
    from .plans import ExecutionPlan


class WorkerCrashError(RuntimeError):
    """Raised at a layer boundary when a scheduled worker crash fires."""

    def __init__(self, event: CrashEvent) -> None:
        super().__init__(
            f"worker {event.worker} crashed at tree {event.tree}, "
            f"layer boundary {event.layer}"
        )
        self.event = event


@dataclass(frozen=True)
class TreeCheckpoint:
    """Trainer state at one tree boundary, sufficient to replay the tree.

    ``index_state`` holds one ``node_of_instance`` snapshot per physical
    index replica (one per worker for horizontal plans, a single shared
    one for vertical plans); ``model_bytes`` is the serialized size of
    the boosted trees committed so far; ``network_snapshot`` pins the
    traffic ledger at the boundary, so recovery can tell lost work from
    committed work.
    """

    tree_index: int
    model_bytes: int
    index_state: Tuple[np.ndarray, ...]
    network_snapshot: CommStats

    @property
    def state_bytes(self) -> int:
        """Bytes of placement state a full restore must ship."""
        return sum(arr.nbytes for arr in self.index_state)

    def worker_state_bytes(self, worker: int) -> int:
        """Placement-state bytes of one worker's index replica."""
        if len(self.index_state) == 1:
            return self.index_state[0].nbytes
        return self.index_state[worker].nbytes


@dataclass(frozen=True)
class RecoveryRecord:
    """One absorbed crash: where it hit and what the recovery shipped."""

    tree: int
    layer: int
    worker: int
    policy: str
    restore_bytes: int


class PlanExecutor(DistributedGBDT):
    """Distributed GBDT trainer driven by an execution plan."""

    def __init__(self, config: TrainConfig, cluster: ClusterConfig,
                 plan: "ExecutionPlan") -> None:
        super().__init__(config, cluster)
        self.plan = plan
        self.partition = PARTITIONS[plan.partition]
        self.storage = STORAGES[plan.storage]
        self.index_plan = INDEX_PLANS[plan.index]
        self.aggregation = AGGREGATIONS[plan.aggregation]
        self.aggregation.validate(config)
        self.quadrant = plan.quadrant
        self.name = plan.name
        #: column grouping strategy (Section 4.2.3); ablations override
        self.grouping = "greedy"
        #: seeded fault schedule; ``None`` trains fault-free
        self.injector: Optional[FaultInjector] = None
        #: absorbed crashes, in firing order
        self.recovery_log: List[RecoveryRecord] = []
        self.last_checkpoint: Optional[TreeCheckpoint] = None
        if config.faults:
            fault_plan = FaultPlan.parse(config.faults)
            if fault_plan.active:
                self.injector = FaultInjector(
                    fault_plan, cluster.num_workers, config.num_trees,
                    config.num_layers,
                )
                self.net.injector = self.injector

    # -- state management --------------------------------------------------------

    def _setup(self, binned: BinnedDataset) -> None:
        self.partition.setup(self, binned)
        self.stores = [
            HistogramStore(pool=self.hist_builder.pool)
            for _ in range(self.cluster.num_workers)
        ]
        self.storage.setup(self)
        self.index_plan.setup(self)
        self._trees_trained = 0
        self._reset_tree_state()

    def _reset_tree_state(self) -> None:
        self.partition.reset(self)
        self.index_plan.reset(self)
        for store in self.stores:
            store.clear()
        self.stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # -- the unified training loop -----------------------------------------------

    def _train_tree(self, grad: np.ndarray, hess: np.ndarray,
                    clock: WorkerClock) -> Tuple[Tree, np.ndarray]:
        tree_index = self._trees_trained
        self._reset_tree_state()
        if self.injector is None:
            result = self._grow_tree(tree_index, grad, hess, clock)
        else:
            checkpoint = self._take_checkpoint(tree_index)
            self.last_checkpoint = checkpoint
            while True:
                attempt_mark = self.net.mark()
                try:
                    result = self._grow_tree(tree_index, grad, hess,
                                             clock)
                    break
                except WorkerCrashError as crash:
                    self._recover(crash.event, checkpoint, attempt_mark,
                                  clock)
        self._trees_trained += 1
        return result

    def _grow_tree(self, tree_index: int, grad: np.ndarray,
                   hess: np.ndarray,
                   clock: WorkerClock) -> Tuple[Tree, np.ndarray]:
        cfg = self.config
        tree = Tree(cfg.num_layers, grad.shape[1])
        self.partition.compute_stats(self, 0, grad, hess, clock)
        active: Set[int] = {0}

        for layer in range(cfg.num_layers - 1):
            if self.injector is not None:
                event = self.injector.maybe_crash(tree_index, layer)
                if event is not None:
                    raise WorkerCrashError(event)
            nodes = [n for n in layer_nodes(layer) if n in active]
            if not nodes:
                break
            self.index_plan.build_layer(self, nodes, grad, hess, clock)
            splits = self.aggregation.find_splits(self, nodes, clock)
            for node in nodes:
                if node not in splits:
                    self._finalize_leaf(tree, node, active)
            self.aggregation.apply_splits(self, tree, splits, grad, hess,
                                          active, clock)
            self.index_plan.after_layer(self, nodes, sorted(splits),
                                        clock)
        for node in sorted(active):
            self._finalize_leaf(tree, node, active)
        return tree, self.partition.assemble_leaves(self)

    # -- checkpointing and crash recovery ------------------------------------------

    def _take_checkpoint(self, tree_index: int) -> TreeCheckpoint:
        """Snapshot trainer state at the tree boundary (post-reset)."""
        if self.partition.key == "horizontal":
            index_state = tuple(
                index.node_of_instance.copy() for index in self.indexes
            )
        else:
            index_state = (self.index.node_of_instance.copy(),)
        return TreeCheckpoint(
            tree_index=tree_index,
            model_bytes=self._model_state_bytes(),
            index_state=index_state,
            network_snapshot=self.net.snapshot(),
        )

    def _restore_checkpoint(self, checkpoint: TreeCheckpoint) -> None:
        """Rebuild per-tree state from the checkpoint's snapshots."""
        self._reset_tree_state()
        if self.partition.key == "horizontal":
            self.indexes = [
                NodeToInstanceIndex.from_assignment(arr)
                for arr in checkpoint.index_state
            ]
        else:
            self.index = NodeToInstanceIndex.from_assignment(
                checkpoint.index_state[0]
            )

    def _recover(self, event: CrashEvent, checkpoint: TreeCheckpoint,
                 attempt_mark: int, clock: WorkerClock) -> None:
        """Absorb one worker crash and prepare the tree replay.

        The aborted attempt's traffic is reclassified under
        ``recovery:<kind>`` (it was real wire traffic that produced no
        committed state), then the aggregation strategy's recovery
        policy charges the restore path:

        * ``reshard`` — the crashed worker's row shard plus labels are
          re-shipped from durable storage (``recovery:reshard``) and its
          checkpointed state follows (``recovery:checkpoint``);
        * ``replicate`` — a surviving peer streams its full replica
          (``recovery:replicate``) plus the checkpoint state;
        * ``rollback`` — the column shard is irreplaceable without its
          owner, so only the checkpoint state crosses the wire while
          the restarted owner reloads its shard locally.
        """
        net = self.net
        net.relabel_since(attempt_mark, RECOVERY_PREFIX)
        policy = self.aggregation.recovery_policy
        state_raw = checkpoint.worker_state_bytes(event.worker)
        state_wire = state_raw
        if not self.codec.is_identity:
            # ship the placement state through the index codec; the
            # decode is exercised for real (lossless, so restoring from
            # the local snapshot equals restoring the decoded payload)
            if len(checkpoint.index_state) == 1:
                state_arr = checkpoint.index_state[0]
            else:
                state_arr = checkpoint.index_state[event.worker]
            start = time.perf_counter()
            enc = self.codec.index.encode(state_arr)
            self.codec.index.decode(enc)
            clock.charge_all(time.perf_counter() - start, phase="codec")
            state_wire = enc.nbytes
        restore_bytes = checkpoint.model_bytes + state_wire
        if policy == "reshard":
            data_bytes = (
                self.storage.shard_bytes(self, event.worker)
                + self.partition.label_bytes(self, event.worker)
            )
            net.transfer("recovery:reshard", data_bytes)
            restore_bytes += data_bytes
        elif policy == "replicate":
            data_bytes = (self._binned.binned.nbytes
                          + self._binned.labels.nbytes)
            net.transfer("recovery:replicate", data_bytes)
            restore_bytes += data_bytes
        net.transfer(
            "recovery:checkpoint",
            checkpoint.model_bytes + state_wire,
            raw_nbytes=checkpoint.model_bytes + state_raw,
        )
        self.recovery_log.append(RecoveryRecord(
            tree=event.tree, layer=event.layer, worker=event.worker,
            policy=policy, restore_bytes=restore_bytes,
        ))
        self._restore_checkpoint(checkpoint)

    def _model_state_bytes(self) -> int:
        """Serialized size of the trees committed so far (checkpoint
        payload): one split record per internal node, one weight vector
        per leaf."""
        ensemble = getattr(self, "_ensemble", None)
        if ensemble is None:
            return 0
        total = 0
        for tree in ensemble.trees:
            for node in tree.nodes.values():
                if node.is_leaf:
                    total += 8 * self.config.gradient_dim
                else:
                    total += SPLIT_INFO_BYTES
        return total

    def _finalize_leaf(self, tree: Tree, node: int,
                       active: Set[int]) -> None:
        tree.set_leaf(node, self._leaf(self.stats[node]))
        active.discard(node)
        self.partition.retire_node(self, node)
        for store in self.stores:
            store.pop(node)

    # -- accounting ---------------------------------------------------------------

    def _gradient_instances(self) -> int:
        return self.partition.gradient_instances(self)

    def _data_bytes(self) -> int:
        return self.partition.data_bytes(self)

    def _histogram_peak_bytes(self) -> int:
        return max(store.peak_bytes for store in self.stores)

    # -- end-to-end path including the transformation ------------------------------

    def fit_from_raw(
        self,
        train: Dataset,
        valid: Optional[Dataset] = None,
        num_trees: Optional[int] = None,
    ) -> Tuple[DistTrainResult, TransformResult]:
        """Transform a horizontally partitioned raw dataset, then train.

        Only meaningful for vertically partitioned plans (QD4's five-step
        transformation, Section 4.2.1); the transformation's sketch-based
        candidate splits are used for training, so its compression is
        lossless with respect to the model, and its cost report rides
        along.
        """
        if self.partition.key == "horizontal":
            raise ValueError(
                "fit_from_raw runs the horizontal-to-vertical "
                f"transformation; plan {self.plan.key!r} is already "
                "horizontally partitioned — call fit() directly"
            )
        transform = horizontal_to_vertical(
            train, self.cluster, self.config.num_candidates, net=self.net,
        )
        result = self.fit(transform.global_binned, valid=valid,
                          num_trees=num_trees)
        return result, transform


# ---------------------------------------------------------------------------
# The resumable training session
# ---------------------------------------------------------------------------

@dataclass
class SessionState:
    """Boosting state that outlives a single tree.

    Everything the old monolithic ``fit`` loop kept in locals — the next
    tree index, the raw score vectors, the simulated elapsed clock, and
    which plan is current — lives here explicitly, so a session can stop
    at any tree boundary and continue later (same process via
    :meth:`TrainingSession.run`, another process via
    :class:`SessionCheckpoint`), possibly under a different plan.
    """

    tree_index: int = 0
    plan_key: str = ""
    scores: Optional[np.ndarray] = None
    valid_scores: Optional[np.ndarray] = None
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class SessionCheckpoint:
    """The session's persistence format at a tree boundary.

    This generalizes :class:`TreeCheckpoint` — which captures only what
    one tree replay needs — into everything a *session* resume needs:
    the committed model (as a serialized payload), the boosting scores,
    the simulated clock, and the plan the session was executing.  The
    embedded ``tree_checkpoint`` carries the placement/ledger snapshot
    exactly as crash recovery uses it.
    """

    tree_index: int
    plan_key: str
    model_payload: dict
    scores: np.ndarray
    valid_scores: Optional[np.ndarray]
    elapsed_seconds: float
    tree_checkpoint: Optional[TreeCheckpoint] = None
    plan_history: Tuple[str, ...] = field(default_factory=tuple)


class TrainingSession:
    """Resumable driver of one distributed training run.

    Owns the per-run state (:class:`SessionState`, the ensemble, the
    result records) and drives any :class:`DistributedGBDT` through the
    shared boosting loop one tree at a time:

    * :meth:`step` trains exactly one tree;
    * :meth:`run` loops to ``num_trees`` (or an earlier ``until``
      boundary, leaving the session resumable);
    * :meth:`migrate` swaps the execution plan at the current tree
      boundary via :class:`~repro.systems.migration.PlanMigrator`;
    * :meth:`checkpoint` / :meth:`resume` persist and rebuild a session
      across processes.

    With a ``policy`` (an :class:`~repro.systems.advisor.AdaptivePolicy`)
    attached, the session consults it at every tree boundary and applies
    any migration it decides — the ``--plan auto-adapt`` path.
    """

    def __init__(
        self,
        system: DistributedGBDT,
        train: "Dataset | BinnedDataset",
        valid: Optional[Dataset] = None,
        num_trees: Optional[int] = None,
        policy=None,
    ) -> None:
        cfg = system.config
        if isinstance(train, BinnedDataset):
            binned = train
        else:
            binned = bin_dataset(train, cfg.num_candidates)
        self.system = system
        self.binned = binned
        self.valid = valid
        self.policy = policy
        self.num_trees = cfg.num_trees if num_trees is None else num_trees
        system._binned = binned
        system._setup(binned)
        self.ensemble = TreeEnsemble(
            system.loss.num_outputs, cfg.learning_rate,
            objective=cfg.objective, num_classes=cfg.num_classes,
        )
        # checkpointing reads the committed model through this reference
        system._ensemble = self.ensemble
        self.result = DistTrainResult(self.ensemble)
        plan = getattr(system, "plan", None)
        self.state = SessionState(
            tree_index=0,
            plan_key=plan.key if plan is not None else system.name,
            scores=system.loss.init_scores(binned.num_instances),
            valid_scores=(
                system.loss.init_scores(valid.num_instances)
                if valid is not None else None
            ),
        )
        self.result.plan_history.append(self.state.plan_key)
        self._grad_unit = system._measure_gradient_unit(
            binned, self.state.scores)
        self._peak_data_bytes = 0
        self._peak_hist_bytes = 0
        self._migrator = None

    # -- the boosting loop, one tree at a time ---------------------------------

    @property
    def done(self) -> bool:
        return self.state.tree_index >= self.num_trees

    def step(self) -> TreeReport:
        """Train exactly one tree and advance the session state."""
        if self.done:
            raise RuntimeError(
                f"session already trained {self.num_trees} trees"
            )
        system, cfg, state = self.system, self.system.config, self.state
        t = state.tree_index
        clock = WorkerClock(system.cluster.num_workers,
                            system.cluster.worker_speeds)
        comm_before = system.net.snapshot()
        grad, hess = system.loss.gradients(self.binned.labels,
                                           state.scores)
        clock.charge_all(self._grad_unit * system._gradient_instances(),
                         phase="gradient")
        tree, leaf_of_instance = system._train_tree(grad, hess, clock)
        self.ensemble.append(tree)
        state.scores += cfg.learning_rate * _leaf_scores(tree,
                                                         leaf_of_instance)
        comm_delta = system.net.snapshot().minus(comm_before)
        report = TreeReport(
            comp_seconds=clock.elapsed,
            comm_seconds=comm_delta.total_seconds,
            comm_bytes=comm_delta.total_bytes,
            phase_seconds=clock.phase_breakdown(),
        )
        self.result.tree_reports.append(report)
        state.elapsed_seconds += report.total_seconds
        state.tree_index = t + 1
        if self.valid is not None:
            state.valid_scores += cfg.learning_rate * tree.predict(
                self.valid.csc())
            rec = evaluate(system.loss, self.valid, state.valid_scores, t,
                           train_loss=0.0)
            self.result.evals.append(
                DistEvalRecord(t, rec.metric_name, rec.metric_value,
                               state.elapsed_seconds)
            )
        return report

    def run(self, until: Optional[int] = None) -> DistTrainResult:
        """Train to completion (or pause at the ``until`` tree boundary).

        Returns the result record — final when the session is done,
        in-progress (memory/comm not yet finalized) when paused early.
        """
        target = self.num_trees if until is None \
            else min(until, self.num_trees)
        while self.state.tree_index < target:
            if self.policy is not None and self.state.tree_index > 0:
                self._consult_policy()
            self.step()
        if self.done:
            self._finalize()
        return self.result

    def _finalize(self) -> None:
        system = self.system
        self.result.memory = MemoryReport(
            data_bytes=max(self._peak_data_bytes, system._data_bytes()),
            histogram_bytes=max(self._peak_hist_bytes,
                                system._histogram_peak_bytes()),
        )
        self.result.comm = system.net.snapshot()

    # -- plan migration ---------------------------------------------------------

    @property
    def migrator(self):
        """The session's :class:`~repro.systems.migration.PlanMigrator`."""
        if self._migrator is None:
            from .migration import PlanMigrator

            self._migrator = PlanMigrator(self)
        return self._migrator

    def migrate(self, target, decision=None) -> "MigrationRecord":
        """Switch to the ``target`` plan at the current tree boundary."""
        return self.migrator.migrate(target, decision=decision)

    def _adopt_system(self, system: DistributedGBDT,
                      record: "MigrationRecord") -> None:
        """Commit a completed migration: swap executors, keep the books."""
        old = self.system
        self._peak_data_bytes = max(self._peak_data_bytes,
                                    old._data_bytes())
        self._peak_hist_bytes = max(self._peak_hist_bytes,
                                    old._histogram_peak_bytes())
        self.system = system
        self.state.plan_key = record.target_plan
        self.state.elapsed_seconds += record.seconds
        self.result.migrations.append(record)
        self.result.plan_history.append(record.target_plan)
        self._grad_unit = system._measure_gradient_unit(
            self.binned, self.state.scores)

    def _consult_policy(self) -> None:
        decision = self.policy.consider(self)
        if decision is None:
            return
        self.result.decisions.append(decision)
        if decision.migrate:
            self.migrate(decision.target_plan, decision=decision)

    # -- persistence ------------------------------------------------------------

    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the session at the current tree boundary."""
        from ..core.serialize import ensemble_to_dict

        state = self.state
        tree_cp = None
        if isinstance(self.system, PlanExecutor):
            tree_cp = self.system._take_checkpoint(state.tree_index)
        return SessionCheckpoint(
            tree_index=state.tree_index,
            plan_key=state.plan_key,
            model_payload=ensemble_to_dict(self.ensemble),
            scores=state.scores.copy(),
            valid_scores=(None if state.valid_scores is None
                          else state.valid_scores.copy()),
            elapsed_seconds=state.elapsed_seconds,
            tree_checkpoint=tree_cp,
            plan_history=tuple(self.result.plan_history),
        )

    @classmethod
    def resume(
        cls,
        checkpoint: SessionCheckpoint,
        config: TrainConfig,
        cluster: ClusterConfig,
        train: "Dataset | BinnedDataset",
        valid: Optional[Dataset] = None,
        num_trees: Optional[int] = None,
        policy=None,
    ) -> "TrainingSession":
        """Rebuild a session from a checkpoint and continue from there.

        The resumed session re-trains nothing: the committed trees come
        from the checkpoint payload, and training picks up at
        ``checkpoint.tree_index``.  Its traffic ledger starts fresh (the
        checkpoint pins the pre-resume ledger via its embedded
        ``tree_checkpoint``).
        """
        from ..core.serialize import ensemble_from_dict
        from .plans import get_plan

        system = get_plan(checkpoint.plan_key).build(config, cluster)
        session = cls(system, train, valid=valid, num_trees=num_trees,
                      policy=policy)
        restored = ensemble_from_dict(checkpoint.model_payload)
        session.ensemble.trees[:] = restored.trees
        session.state.tree_index = checkpoint.tree_index
        session.state.scores = checkpoint.scores.copy()
        session.state.valid_scores = (
            None if checkpoint.valid_scores is None
            else checkpoint.valid_scores.copy()
        )
        session.state.elapsed_seconds = checkpoint.elapsed_seconds
        session.result.plan_history[:] = list(
            checkpoint.plan_history or (checkpoint.plan_key,))
        system._trees_trained = checkpoint.tree_index
        return session
