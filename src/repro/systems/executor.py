"""The plan executor: one training loop for every quadrant.

:class:`PlanExecutor` replaces the per-quadrant ``_train_tree`` overrides
of the old inheritance tree.  It composes one strategy per axis —
partitioning, storage layout, index plan, aggregation — and runs the
single layer-wise loop they all shared:

1. build each worker's histograms for the layer (:class:`IndexPlan`),
2. turn them into global split decisions (:class:`AggregationStrategy`),
3. finalize the nodes that did not split,
4. apply the winning splits to every index replica (aggregation again —
   it owns the placement traffic),
5. run post-layer index maintenance and histogram retirement.

All per-run state (shards, indexes, histogram stores, node statistics)
lives on the executor; the strategies are stateless singletons from
:mod:`~repro.systems.strategies`.  Which strategies compose is described
by an :class:`~repro.systems.plans.ExecutionPlan`, so a new system
variant is a registry entry, not a subclass.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from ..cluster.transform import TransformResult, horizontal_to_vertical
from ..config import ClusterConfig, TrainConfig
from ..core.tree import Tree, layer_nodes
from ..data.dataset import BinnedDataset, Dataset
from .base import DistributedGBDT, DistTrainResult, HistogramStore, \
    WorkerClock
from .strategies import AGGREGATIONS, INDEX_PLANS, PARTITIONS, STORAGES

if TYPE_CHECKING:
    from .plans import ExecutionPlan


class PlanExecutor(DistributedGBDT):
    """Distributed GBDT trainer driven by an execution plan."""

    def __init__(self, config: TrainConfig, cluster: ClusterConfig,
                 plan: "ExecutionPlan") -> None:
        super().__init__(config, cluster)
        self.plan = plan
        self.partition = PARTITIONS[plan.partition]
        self.storage = STORAGES[plan.storage]
        self.index_plan = INDEX_PLANS[plan.index]
        self.aggregation = AGGREGATIONS[plan.aggregation]
        self.aggregation.validate(config)
        self.quadrant = plan.quadrant
        self.name = plan.name
        #: column grouping strategy (Section 4.2.3); ablations override
        self.grouping = "greedy"

    # -- state management --------------------------------------------------------

    def _setup(self, binned: BinnedDataset) -> None:
        self.partition.setup(self, binned)
        self.stores = [
            HistogramStore(pool=self.hist_builder.pool)
            for _ in range(self.cluster.num_workers)
        ]
        self.storage.setup(self)
        self.index_plan.setup(self)
        self._reset_tree_state()

    def _reset_tree_state(self) -> None:
        self.partition.reset(self)
        self.index_plan.reset(self)
        for store in self.stores:
            store.clear()
        self.stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # -- the unified training loop -----------------------------------------------

    def _train_tree(self, grad: np.ndarray, hess: np.ndarray,
                    clock: WorkerClock) -> Tuple[Tree, np.ndarray]:
        cfg = self.config
        self._reset_tree_state()
        tree = Tree(cfg.num_layers, grad.shape[1])
        self.partition.compute_stats(self, 0, grad, hess, clock)
        active: Set[int] = {0}

        for layer in range(cfg.num_layers - 1):
            nodes = [n for n in layer_nodes(layer) if n in active]
            if not nodes:
                break
            self.index_plan.build_layer(self, nodes, grad, hess, clock)
            splits = self.aggregation.find_splits(self, nodes, clock)
            for node in nodes:
                if node not in splits:
                    self._finalize_leaf(tree, node, active)
            self.aggregation.apply_splits(self, tree, splits, grad, hess,
                                          active, clock)
            self.index_plan.after_layer(self, nodes, sorted(splits),
                                        clock)
        for node in sorted(active):
            self._finalize_leaf(tree, node, active)
        return tree, self.partition.assemble_leaves(self)

    def _finalize_leaf(self, tree: Tree, node: int,
                       active: Set[int]) -> None:
        tree.set_leaf(node, self._leaf(self.stats[node]))
        active.discard(node)
        self.partition.retire_node(self, node)
        for store in self.stores:
            store.pop(node)

    # -- accounting ---------------------------------------------------------------

    def _gradient_instances(self) -> int:
        return self.partition.gradient_instances(self)

    def _data_bytes(self) -> int:
        return self.partition.data_bytes(self)

    def _histogram_peak_bytes(self) -> int:
        return max(store.peak_bytes for store in self.stores)

    # -- end-to-end path including the transformation ------------------------------

    def fit_from_raw(
        self,
        train: Dataset,
        valid: Optional[Dataset] = None,
        num_trees: Optional[int] = None,
    ) -> Tuple[DistTrainResult, TransformResult]:
        """Transform a horizontally partitioned raw dataset, then train.

        Only meaningful for vertically partitioned plans (QD4's five-step
        transformation, Section 4.2.1); the transformation's sketch-based
        candidate splits are used for training, so its compression is
        lossless with respect to the model, and its cost report rides
        along.
        """
        if self.partition.key == "horizontal":
            raise ValueError(
                "fit_from_raw runs the horizontal-to-vertical "
                f"transformation; plan {self.plan.key!r} is already "
                "horizontally partitioned — call fit() directly"
            )
        transform = horizontal_to_vertical(
            train, self.cluster, self.config.num_candidates, net=self.net,
        )
        result = self.fit(transform.global_binned, valid=valid,
                          num_trees=num_trees)
        return result, transform
