"""Closed-form cost model of Section 3.

These formulas are the paper's analytical claims; the test suite checks
the simulator against them, and ``tests/test_costmodel.py`` reproduces the
worked example of Section 3.1.4 (the industrial *Age* dataset) exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.codecs import sparse_entry_bytes
from ..core.histogram import histogram_size_bytes


@dataclass(frozen=True)
class WorkloadShape:
    """The quantities the Section 3 analysis is parameterized by."""

    num_instances: int            # N
    num_features: int             # D
    num_workers: int              # W
    num_layers: int               # L
    num_candidates: int           # q
    num_classes: int = 1          # C (1 for binary per Section 3)

    def __post_init__(self) -> None:
        if min(self.num_instances, self.num_features, self.num_workers,
               self.num_layers, self.num_candidates,
               self.num_classes) < 1:
            raise ValueError("all shape parameters must be >= 1")


def sizehist_bytes(shape: WorkloadShape) -> int:
    """``Sizehist = 2 * D * q * C * 8`` bytes (Section 3.1.1)."""
    return histogram_size_bytes(shape.num_features, shape.num_candidates,
                                shape.num_classes)


def horizontal_histogram_memory_bytes(shape: WorkloadShape) -> int:
    """Per-worker histogram memory, horizontal: ``Sizehist * 2^(L-2)``."""
    return sizehist_bytes(shape) * 2 ** (shape.num_layers - 2)


def vertical_histogram_memory_bytes(shape: WorkloadShape) -> float:
    """Per-worker histogram memory, vertical: horizontal / W (expected)."""
    return horizontal_histogram_memory_bytes(shape) / shape.num_workers


def horizontal_comm_bytes_per_tree(shape: WorkloadShape) -> int:
    """Total aggregation traffic for one tree, horizontal partitioning:
    ``Sizehist * W * (2^(L-1) - 1)`` (Section 3.1.3)."""
    return (
        sizehist_bytes(shape) * shape.num_workers
        * (2 ** (shape.num_layers - 1) - 1)
    )


def vertical_comm_bytes_per_tree(shape: WorkloadShape) -> int:
    """Total placement traffic for one tree, vertical partitioning:
    ``ceil(N / 8) * W * L`` (Section 3.1.3)."""
    bitmap = (shape.num_instances + 7) // 8
    return bitmap * shape.num_workers * shape.num_layers


def expected_hist_density(shape: WorkloadShape,
                          avg_nnz_per_instance: float,
                          layer: int = 0) -> float:
    """Expected occupied-slot fraction of a layer-``layer`` node histogram.

    A node at layer ``l`` holds about ``N / 2^l`` instances contributing
    ``N d / (D 2^l)`` stored entries per feature, which can occupy at
    most that many (and at most ``q``) of the feature's ``q`` bins — so
    the density is at most ``min(1, N d / (D q 2^l))``.  Sparse datasets
    (RCV1-like: ``d << D``) sit far below 1 even at the root, and the
    density halves with each layer — the Vasiloudis et al. observation
    that makes sparse histogram encoding pay.
    """
    if avg_nnz_per_instance <= 0:
        raise ValueError("avg_nnz_per_instance must be > 0")
    if layer < 0:
        raise ValueError(f"layer must be >= 0, got {layer}")
    entries_per_feature = (
        shape.num_instances * avg_nnz_per_instance
        / (shape.num_features * 2 ** layer)
    )
    return min(1.0, entries_per_feature / shape.num_candidates)


def codec_byte_factor(density: float, gradient_dim: int,
                      codec: str) -> float:
    """Fraction of dense histogram bytes a codec puts on the wire.

    ``sparse`` ships ``4 + 16 C`` bytes per occupied slot against
    ``16 C`` dense, capped at 1.0 by the codec's dense fallback;
    ``f32``/``f16`` quantize every slot to 4/2 bytes; ``none`` and
    ``delta`` ship histograms dense (``delta`` compresses only integer
    payloads).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if codec in ("none", "delta"):
        return 1.0
    if codec == "f32":
        return 0.5
    if codec == "f16":
        return 0.25
    if codec == "sparse":
        dense_slot = 2 * 8 * gradient_dim
        return min(1.0, density * sparse_entry_bytes(gradient_dim)
                   / dense_slot)
    raise ValueError(f"unknown codec for byte projection: {codec!r}")


def encoded_sizehist_bytes(shape: WorkloadShape, density: float,
                           codec: str) -> float:
    """``Sizehist`` after encoding at the given occupied-slot density."""
    return sizehist_bytes(shape) * codec_byte_factor(
        density, shape.num_classes, codec)


def horizontal_comm_bytes_per_tree_encoded(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    codec: str,
) -> float:
    """Aggregation traffic of one tree with encoded histogram payloads.

    The dense formula charges ``Sizehist * W`` for each of the
    ``2^(L-1) - 1`` nodes; here each layer's nodes are scaled by the
    codec's byte factor at that layer's expected density (density halves
    per layer, so deep layers compress progressively better).
    """
    total = 0.0
    for layer in range(shape.num_layers - 1):
        density = expected_hist_density(shape, avg_nnz_per_instance,
                                        layer)
        total += (
            2 ** layer * shape.num_workers
            * encoded_sizehist_bytes(shape, density, codec)
        )
    return total


def histogram_construction_cost(shape: WorkloadShape,
                                avg_nnz_per_instance: float) -> float:
    """Per-layer accesses ``O(N * d / W)`` (Section 3.2.4)."""
    return shape.num_instances * avg_nnz_per_instance / shape.num_workers


def colstore_node_index_cost(shape: WorkloadShape,
                             avg_nnz_per_instance: float) -> float:
    """Column-store + node-to-instance: binary search per access adds a
    ``log(N * d / (W * D))`` factor (Section 3.2.4)."""
    import math

    base = histogram_construction_cost(shape, avg_nnz_per_instance)
    per_column = max(
        shape.num_instances * avg_nnz_per_instance
        / (shape.num_workers * shape.num_features),
        2.0,
    )
    return base * math.log2(per_column)


def split_finding_cost(shape: WorkloadShape) -> float:
    """``O(q * D / W)`` per layer regardless of partitioning."""
    return (
        shape.num_candidates * shape.num_features / shape.num_workers
    )


def node_splitting_cost(shape: WorkloadShape, vertical: bool) -> float:
    """Index update per layer: ``O(N/W)`` horizontal, ``O(N)`` vertical."""
    if vertical:
        return float(shape.num_instances)
    return shape.num_instances / shape.num_workers


def checkpoint_state_bytes(shape: WorkloadShape, vertical: bool) -> int:
    """Placement state one crash recovery must restore (DESIGN.md §9).

    The tree checkpoint carries a 4-byte node id per tracked row.  A
    horizontal worker tracks only its ``N / W`` shard rows; a vertical
    worker's (shared) index covers all ``N`` rows.
    """
    if vertical:
        return 4 * shape.num_instances
    return 4 * ((shape.num_instances + shape.num_workers - 1)
                // shape.num_workers)


def recovery_restore_bytes(shape: WorkloadShape,
                           avg_nnz_per_instance: float,
                           vertical: bool) -> float:
    """Expected wire bytes to restore state after one worker crash.

    Horizontal partitioning reshards: the crashed worker's binned rows
    (8 bytes per stored entry, the row-store convention) plus its
    checkpointed placement state are re-shipped.  Vertical partitioning
    rolls back: the restarted owner reloads its irreplaceable column
    shard from local storage, so only the checkpoint state crosses the
    wire.
    """
    state = checkpoint_state_bytes(shape, vertical)
    if vertical:
        return float(state)
    shard_entries = (shape.num_instances * avg_nnz_per_instance
                     / shape.num_workers)
    return 8.0 * shard_entries + state


def migration_wire_bytes(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    source_partition: str,
    target_partition: str,
) -> float:
    """Projected wire bytes of one plan migration (DESIGN.md §13).

    Mirrors the :class:`~repro.systems.migration.PlanMigrator` charges:
    the checkpointed placement state always ships; changing the
    partition axis reshards the stored entries at the reshard machinery's
    ``(W-1)/W`` wire fraction (every worker for a replicated target);
    leaving horizontal partitioning broadcasts the labels.  A
    storage-only migration ships only the checkpoint.
    """
    total = float(checkpoint_state_bytes(
        shape, vertical=source_partition != "horizontal"))
    if source_partition != target_partition:
        entries = shape.num_instances * avg_nnz_per_instance
        copies = (
            float(shape.num_workers - 1)
            if target_partition == "replicated"
            else (shape.num_workers - 1) / shape.num_workers
        )
        total += 8.0 * entries * copies
    if source_partition == "horizontal" and target_partition != "horizontal":
        total += 4.0 * shape.num_instances * (shape.num_workers - 1)
    return total


def migration_seconds(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    source_partition: str,
    target_partition: str,
    bytes_per_second: float,
    latency_s: float = 0.0,
) -> float:
    """Projected migration bill: wire time plus per-worker latencies
    (one checkpoint transfer, one reshard stream per worker, one
    decision broadcast)."""
    wire = migration_wire_bytes(shape, avg_nnz_per_instance,
                                source_partition, target_partition)
    transfers = 2 + (shape.num_workers
                     if source_partition != target_partition else 0)
    return wire / bytes_per_second + transfers * latency_s


def sharded_serving_deploy_bytes(shard_nbytes, num_rows: int) -> int:
    """Rollout wire bytes of a sharded fleet: each of the ``R`` replica
    rows receives every shard's payload once (shard ``j`` to its group's
    member in that row) — ``R * sum_j shard_j``.  A replicated fleet of
    the same ``W = R * S`` workers ships ``R * S *`` the full payload, so
    sharding wins on deploy bytes whenever
    ``sum_j shard_j < S * full`` — i.e. for every ``S >= 2`` (the shard
    payloads repeat only the few metadata keys)."""
    return int(num_rows) * int(sum(shard_nbytes))


def replicated_serving_deploy_bytes(model_nbytes: int,
                                    num_workers: int) -> int:
    """Rollout wire bytes of a replicated fleet: the full canonical
    payload to every worker."""
    return int(model_nbytes) * int(num_workers)


def score_reduction_bytes_per_batch(batch_rows: int, gradient_dim: int,
                                    num_shards: int,
                                    reduction: str = "gather") -> int:
    """Wire bytes one batch's score reduction puts on the ledger.

    The sharded dispatch charges the ring reduce-scatter decomposition
    per kind: the ``serve:partial`` carry is ``(S-1)/S * payload`` per
    worker over the float64 score vector (``batch * C * 8`` bytes), and
    ``reduction="allreduce"`` adds the all-gather half again under
    ``serve:reduce`` — together the closed-form ring all-reduce.  This
    is the exact number the ledger records (``S = 1`` charges nothing).
    """
    if reduction not in ("gather", "allreduce"):
        raise ValueError(f"unknown reduction {reduction!r}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return 0
    payload = batch_rows * gradient_dim * 8
    per_worker = (num_shards - 1) / num_shards * payload
    half = int(per_worker * num_shards)
    return half if reduction == "gather" else 2 * half


def score_reduction_rounds(num_shards: int,
                           reduction: str = "gather") -> int:
    """Latency rounds the score reduction adds to every batch:
    ``S - 1`` sequential carry hops (``2 (S-1)`` with the all-gather
    half) — the bounded latency cost sharding pays per batch."""
    if reduction not in ("gather", "allreduce"):
        raise ValueError(f"unknown reduction {reduction!r}")
    if num_shards <= 1:
        return 0
    hops = num_shards - 1
    return hops if reduction == "gather" else 2 * hops


def score_reduction_seconds_per_batch(
    batch_rows: int,
    gradient_dim: int,
    num_shards: int,
    bytes_per_second: float,
    latency_s: float,
    reduction: str = "gather",
) -> float:
    """Simulated seconds the reduction adds to one batch: per-worker
    wire time plus one latency per round (the
    :class:`~repro.cluster.comm.Collective` timing model)."""
    if num_shards <= 1:
        return 0.0
    payload = batch_rows * gradient_dim * 8
    per_worker = (num_shards - 1) / num_shards * payload
    rounds = score_reduction_rounds(num_shards, reduction)
    factor = 1 if reduction == "gather" else 2
    return factor * per_worker / bytes_per_second + rounds * latency_s


def price_serving_layouts(
    model_nbytes: int,
    shard_nbytes_by_s,
    num_workers: int,
    batch_rows: int,
    gradient_dim: int,
    bytes_per_second: float,
    latency_s: float,
    reduction: str = "gather",
):
    """Replicate-vs-shard price list for one model and fleet.

    ``shard_nbytes_by_s`` maps each candidate shard count to its
    per-shard canonical payload sizes (``S = 1`` is the replicated
    layout).  Returns one dict per candidate with the three axes the
    decision trades off: model bytes per worker, rollout deploy bytes,
    and the per-batch reduction bytes/rounds/seconds.
    """
    layouts = []
    for num_shards in sorted(shard_nbytes_by_s):
        shard_nbytes = shard_nbytes_by_s[num_shards]
        if num_workers % num_shards != 0:
            raise ValueError(
                f"fleet of {num_workers} cannot hold {num_shards} "
                "shard groups evenly"
            )
        if len(shard_nbytes) != num_shards:
            raise ValueError(
                f"need {num_shards} shard sizes, got {len(shard_nbytes)}"
            )
        rows = num_workers // num_shards
        layouts.append({
            "num_shards": num_shards,
            "rows": rows,
            "model_bytes_per_worker": int(max(shard_nbytes)),
            "deploy_bytes": (
                replicated_serving_deploy_bytes(model_nbytes, num_workers)
                if num_shards == 1
                else sharded_serving_deploy_bytes(shard_nbytes, rows)),
            "reduction_bytes_per_batch": score_reduction_bytes_per_batch(
                batch_rows, gradient_dim, num_shards, reduction),
            "reduction_rounds": score_reduction_rounds(
                num_shards, reduction),
            "reduction_seconds_per_batch":
                score_reduction_seconds_per_batch(
                    batch_rows, gradient_dim, num_shards,
                    bytes_per_second, latency_s, reduction),
        })
    return layouts


def recommend_serving_layout(layouts,
                             max_reduction_seconds: float = 0.002):
    """Pick a layout from :func:`price_serving_layouts` output.

    Among candidates whose per-batch reduction latency stays within
    ``max_reduction_seconds``, choose the smallest model-bytes-per-worker
    footprint; ties break to fewer shards (less coordination).  The
    replicated layout (``S = 1``) pays no reduction, so the fall-back is
    always eligible.
    """
    eligible = [entry for entry in layouts
                if entry["reduction_seconds_per_batch"]
                <= max_reduction_seconds]
    if not eligible:
        eligible = [entry for entry in layouts
                    if entry["num_shards"] == 1] or layouts
    return min(eligible, key=lambda entry: (
        entry["model_bytes_per_worker"], entry["num_shards"]))


def expected_recovery_seconds_per_tree(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    bytes_per_second: float,
    crash_rate: float,
    vertical: bool,
) -> float:
    """Expected per-tree recovery cost under ``crash_rate`` crashes/tree.

    A crash at a uniformly random layer boundary wastes half the
    interrupted tree's aggregation traffic (the rolled-back attempt is
    replayed), on top of the policy's restore transfer — the term the
    advisor adds to each quadrant's per-tree estimate.
    """
    if crash_rate < 0:
        raise ValueError(f"crash_rate must be >= 0, got {crash_rate}")
    if crash_rate == 0:
        return 0.0
    restore = recovery_restore_bytes(shape, avg_nnz_per_instance,
                                     vertical)
    tree_bytes = (vertical_comm_bytes_per_tree(shape) if vertical
                  else horizontal_comm_bytes_per_tree(shape))
    replayed = 0.5 * tree_bytes / shape.num_workers
    return crash_rate * (restore + replayed) / bytes_per_second
