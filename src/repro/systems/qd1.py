"""Deprecated location of :class:`XGBoostStyle` (now in ``plans``)."""

from .plans import XGBoostStyle, _deprecated_alias_module

_deprecated_alias_module(__name__)

__all__ = ["XGBoostStyle"]
