"""QD1 — horizontal partitioning + column-store (XGBoost style).

Since the ExecutionPlan refactor this is a thin alias: the behavior
lives in the ``qd1`` registry entry (horizontal partition, CSC column
store, level-wise instance-to-node pass, ring all-reduce with a leader
split find) composed by :class:`~repro.systems.executor.PlanExecutor`.
"""

from __future__ import annotations

from ..config import ClusterConfig, TrainConfig
from .executor import PlanExecutor
from .plans import get_plan


class XGBoostStyle(PlanExecutor):
    """Horizontal + column-store with all-reduce aggregation."""

    def __init__(self, config: TrainConfig,
                 cluster: ClusterConfig) -> None:
        super().__init__(config, cluster, get_plan("qd1"))
