"""Declarative registry of distributed GBDT execution plans.

An :class:`ExecutionPlan` names one strategy per axis — partitioning,
storage layout, index plan, aggregation — and can build a ready-to-train
:class:`~repro.systems.executor.PlanExecutor`.  The paper's quadrants
(and the bolted-on variants of its Section 5 study) are entries in
:data:`PLANS`; adding a system variant means adding an entry, not a
subclass, and mixed layouts beyond the four quadrants (e.g. the
blockified ``qd4-blocked``) are just new axis combinations.

Use :func:`get_plan` to resolve a registry key or alias, and
``plan.build(config, cluster).fit(binned)`` to train with it::

    from repro.systems.plans import get_plan
    result = get_plan("qd2-ps").build(config, cluster).fit(binned)

Custom plans need no registration — ``dataclasses.replace`` an existing
entry (or construct :class:`ExecutionPlan` directly) and call ``build``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

from .strategies import AGGREGATIONS, INDEX_PLANS, PARTITIONS, STORAGES

if TYPE_CHECKING:
    from ..config import ClusterConfig, TrainConfig
    from .executor import PlanExecutor


@dataclass(frozen=True)
class ExecutionPlan:
    """One point of the plan space: a strategy key per axis."""

    #: registry key, e.g. ``"qd2-ps"``
    key: str
    #: quadrant label of the paper's taxonomy, e.g. ``"QD2"``
    quadrant: str
    #: human name, e.g. ``"dimboost-style"``
    name: str
    #: one-line description (shown by ``repro advise``)
    description: str
    #: :data:`~repro.systems.strategies.PARTITIONS` key
    partition: str
    #: :data:`~repro.systems.strategies.STORAGES` key
    storage: str
    #: :data:`~repro.systems.strategies.INDEX_PLANS` key
    index: str
    #: :data:`~repro.systems.strategies.AGGREGATIONS` key
    aggregation: str

    def __post_init__(self) -> None:
        for axis, registry in (("partition", PARTITIONS),
                               ("storage", STORAGES),
                               ("index", INDEX_PLANS),
                               ("aggregation", AGGREGATIONS)):
            value = getattr(self, axis)
            if value not in registry:
                raise ValueError(
                    f"unknown {axis} strategy {value!r}; known: "
                    f"{', '.join(sorted(registry))}"
                )

    def build(self, config: "TrainConfig",
              cluster: "ClusterConfig") -> "PlanExecutor":
        """Compose the plan's strategies into a ready trainer."""
        from .executor import PlanExecutor

        return PlanExecutor(config, cluster, self)

    def replace(self, **changes) -> "ExecutionPlan":
        """A derived plan with some axes (or labels) swapped out."""
        return dataclasses.replace(self, **changes)

    def axes(self) -> Dict[str, str]:
        """The four strategy keys, by axis name."""
        return {
            "partition": self.partition,
            "storage": self.storage,
            "index": self.index,
            "aggregation": self.aggregation,
        }


def _plans(*plans: ExecutionPlan) -> Dict[str, ExecutionPlan]:
    return {plan.key: plan for plan in plans}


#: the plan registry: every system of the paper's study, by key
PLANS: Dict[str, ExecutionPlan] = _plans(
    ExecutionPlan(
        key="qd1", quadrant="QD1", name="xgboost-style",
        description=("horizontal rows in CSC; level-wise instance-to-"
                     "node pass; ring all-reduce + leader split find"),
        partition="horizontal", storage="column",
        index="instance-to-node", aggregation="all-reduce",
    ),
    ExecutionPlan(
        key="qd2", quadrant="QD2", name="lightgbm-style",
        description=("horizontal rows in CSR; node-to-instance index "
                     "with subtraction; reduce-scatter over feature "
                     "slices"),
        partition="horizontal", storage="row",
        index="node-to-instance", aggregation="reduce-scatter",
    ),
    ExecutionPlan(
        key="qd2-ps", quadrant="QD2", name="dimboost-style",
        description=("QD2 with parameter-server push/pull aggregation "
                     "(the DimBoost architecture)"),
        partition="horizontal", storage="row",
        index="node-to-instance", aggregation="parameter-server",
    ),
    ExecutionPlan(
        key="qd2-fp", quadrant="QD2-FP",
        name="lightgbm-feature-parallel",
        description=("feature-parallel LightGBM: full data copy per "
                     "worker, local election, local node splitting"),
        partition="replicated", storage="row",
        index="node-to-instance", aggregation="local",
    ),
    ExecutionPlan(
        key="qd3", quadrant="QD3", name="yggdrasil-style",
        description=("vertical column groups in CSC; hybrid scan/search "
                     "kernel; local election + bitmap broadcast"),
        partition="vertical", storage="column",
        index="hybrid", aggregation="bitmap-broadcast",
    ),
    ExecutionPlan(
        key="qd3-pure", quadrant="QD3", name="yggdrasil-style",
        description=("pure Yggdrasil: per-column node-to-instance index "
                     "with per-layer column reorders"),
        partition="vertical", storage="column",
        index="columnwise", aggregation="bitmap-broadcast",
    ),
    ExecutionPlan(
        key="vero", quadrant="QD4", name="vero",
        description=("vertical column groups in CSR; node-to-instance "
                     "index with subtraction; local election + bitmap "
                     "broadcast (the paper's system)"),
        partition="vertical", storage="row",
        index="node-to-instance", aggregation="bitmap-broadcast",
    ),
    ExecutionPlan(
        key="qd4-blocked", quadrant="QD4", name="vero-blocked",
        description=("Vero over blockified column groups with the "
                     "two-phase block index (Figure 9 layout)"),
        partition="vertical", storage="blocked-row",
        index="two-phase", aggregation="bitmap-broadcast",
    ),
)

#: accepted spellings that map onto a canonical registry key
ALIASES: Dict[str, str] = {
    "xgboost": "qd1",
    "lightgbm": "qd2",
    "dimboost": "qd2-ps",
    "lightgbm-fp": "qd2-fp",
    "yggdrasil": "qd3",
    "qd4": "vero",
}


def plan_keys() -> List[str]:
    """Canonical registry keys, in registry order."""
    return list(PLANS)


def get_plan(key: str) -> ExecutionPlan:
    """Resolve a registry key or alias (case-insensitive)."""
    canonical = key.lower()
    canonical = ALIASES.get(canonical, canonical)
    try:
        return PLANS[canonical]
    except KeyError:
        raise KeyError(
            f"unknown plan {key!r}; known: "
            f"{', '.join(sorted(set(PLANS) | set(ALIASES)))}"
        ) from None


# ---------------------------------------------------------------------------
# Classic class-name aliases over the registry entries
# ---------------------------------------------------------------------------
#
# These lived in per-quadrant modules (systems/qd1.py, qd2.py, qd3.py,
# vero.py, feature_parallel.py) when each quadrant was a real subclass;
# since the ExecutionPlan refactor they are one-line wrappers, so they
# live here with the registry — the single source of plan truth.  The
# old module paths remain as deprecation shims.

from .executor import PlanExecutor  # noqa: E402 — needs no plan symbols


def _deprecated_alias_module(name: str) -> None:
    """The deprecation shim shared by the folded per-quadrant modules."""
    import warnings

    warnings.warn(
        f"{name} is deprecated; import the alias classes from "
        "repro.systems (they live in repro.systems.plans now)",
        DeprecationWarning, stacklevel=3,
    )


class XGBoostStyle(PlanExecutor):
    """QD1: horizontal + column-store with all-reduce aggregation."""

    def __init__(self, config: "TrainConfig",
                 cluster: "ClusterConfig") -> None:
        super().__init__(config, cluster, get_plan("qd1"))


class LightGBMStyle(PlanExecutor):
    """QD2: horizontal + row-store with reduce-scatter aggregation."""

    def __init__(self, config: "TrainConfig",
                 cluster: "ClusterConfig") -> None:
        super().__init__(config, cluster, get_plan("qd2"))


class DimBoostStyle(PlanExecutor):
    """QD2 with parameter-server aggregation (DimBoost architecture)."""

    def __init__(self, config: "TrainConfig",
                 cluster: "ClusterConfig") -> None:
        super().__init__(config, cluster, get_plan("qd2-ps"))


class YggdrasilStyle(PlanExecutor):
    """QD3: vertical + column-store.

    ``index_mode`` selects the registry entry: ``"hybrid"`` (plan
    ``qd3``, the paper's scan-or-search kernel) or ``"columnwise"``
    (plan ``qd3-pure``, pure Yggdrasil's per-column index with per-layer
    reorders — Appendix C compares the two).
    """

    def __init__(self, config: "TrainConfig", cluster: "ClusterConfig",
                 index_mode: str = "hybrid") -> None:
        if index_mode not in ("hybrid", "columnwise"):
            raise ValueError(f"unknown index_mode: {index_mode!r}")
        plan = get_plan("qd3" if index_mode == "hybrid" else "qd3-pure")
        super().__init__(config, cluster, plan)
        self.index_mode = index_mode


class Vero(PlanExecutor):
    """QD4: vertical + row-store (the paper's system)."""

    def __init__(self, config: "TrainConfig",
                 cluster: "ClusterConfig") -> None:
        super().__init__(config, cluster, get_plan("vero"))


class LightGBMFeatureParallel(PlanExecutor):
    """Feature-parallel LightGBM: full data copy per worker (App. D)."""

    def __init__(self, config: "TrainConfig",
                 cluster: "ClusterConfig") -> None:
        super().__init__(config, cluster, get_plan("qd2-fp"))
