"""The four data-management quadrants, one code base (Section 5.2).

Every system is an :class:`~repro.systems.plans.ExecutionPlan` — one
strategy per axis, composed by a
:class:`~repro.systems.executor.PlanExecutor`:

========  ============  =========  ============  =================
Plan key  Partitioning  Storage    Index         Aggregation
========  ============  =========  ============  =================
qd1       horizontal    column     inst-to-node  all-reduce
qd2       horizontal    row        node-to-inst  reduce-scatter
qd2-ps    horizontal    row        node-to-inst  parameter-server
qd2-fp    replicated    row        node-to-inst  local
qd3       vertical      column     hybrid        bitmap-broadcast
qd3-pure  vertical      column     columnwise    bitmap-broadcast
vero      vertical      row        node-to-inst  bitmap-broadcast
========  ============  =========  ============  =================

The classic class names (:class:`XGBoostStyle`, :class:`LightGBMStyle`,
:class:`DimBoostStyle`, :class:`YggdrasilStyle`, :class:`Vero`,
:class:`LightGBMFeatureParallel`) survive as thin aliases over the
registry entries.
"""

from __future__ import annotations

from ..config import ClusterConfig, TrainConfig
from .advisor import (QuadrantEstimate, Recommendation, estimate,
                      recommend)
from .base import (DistEvalRecord, DistributedGBDT, DistTrainResult,
                   MemoryReport, TreeReport)
from .executor import PlanExecutor
from .feature_parallel import LightGBMFeatureParallel
from .plans import ALIASES, PLANS, ExecutionPlan, get_plan, plan_keys
from .qd1 import XGBoostStyle
from .qd2 import DimBoostStyle, LightGBMStyle
from .qd3 import YggdrasilStyle
from .vero import Vero

#: names that resolve to a dedicated alias class (kwargs accepted)
_SYSTEMS = {
    "qd1": XGBoostStyle,
    "xgboost": XGBoostStyle,
    "qd2": LightGBMStyle,
    "lightgbm": LightGBMStyle,
    "qd2-ps": DimBoostStyle,
    "dimboost": DimBoostStyle,
    "qd3": YggdrasilStyle,
    "yggdrasil": YggdrasilStyle,
    "qd4": Vero,
    "vero": Vero,
    "qd2-fp": LightGBMFeatureParallel,
    "lightgbm-fp": LightGBMFeatureParallel,
}


def make_system(
    name: str, config: TrainConfig, cluster: ClusterConfig, **kwargs
) -> DistributedGBDT:
    """Factory over system names and plan registry keys (case-insensitive).

    Accepted names: qd1/xgboost, qd2/lightgbm, qd2-ps/dimboost,
    qd3/yggdrasil (``index_mode=`` kwarg), qd4/vero, qd2-fp/lightgbm-fp,
    plus any other :data:`~repro.systems.plans.PLANS` key (e.g.
    ``qd3-pure``, ``qd4-blocked``).
    """
    cls = _SYSTEMS.get(name.lower())
    if cls is not None:
        return cls(config, cluster, **kwargs)
    try:
        plan = get_plan(name)
    except KeyError:
        known = ", ".join(sorted(set(_SYSTEMS) | set(PLANS) | set(ALIASES)))
        raise KeyError(f"unknown system {name!r}; known: {known}") from None
    if kwargs:
        raise TypeError(
            f"plan {plan.key!r} takes no keyword arguments; got "
            f"{sorted(kwargs)}"
        )
    return plan.build(config, cluster)


__all__ = [
    "ALIASES",
    "ExecutionPlan",
    "PLANS",
    "PlanExecutor",
    "QuadrantEstimate",
    "Recommendation",
    "estimate",
    "get_plan",
    "plan_keys",
    "recommend",
    "DistEvalRecord",
    "DistTrainResult",
    "DistributedGBDT",
    "DimBoostStyle",
    "LightGBMFeatureParallel",
    "LightGBMStyle",
    "MemoryReport",
    "TreeReport",
    "Vero",
    "XGBoostStyle",
    "YggdrasilStyle",
    "make_system",
]
