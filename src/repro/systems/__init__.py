"""The four data-management quadrants, one code base (Section 5.2).

========  ============  =========  ==========================
Quadrant  Partitioning  Storage    Class
========  ============  =========  ==========================
QD1       horizontal    column     :class:`XGBoostStyle`
QD2       horizontal    row        :class:`LightGBMStyle`,
                                   :class:`DimBoostStyle`
QD3       vertical      column     :class:`YggdrasilStyle`
QD4       vertical      row        :class:`Vero`
========  ============  =========  ==========================
"""

from __future__ import annotations

from ..config import ClusterConfig, TrainConfig
from .advisor import (QuadrantEstimate, Recommendation, estimate,
                      recommend)
from .base import (DistEvalRecord, DistributedGBDT, DistTrainResult,
                   MemoryReport, TreeReport)
from .feature_parallel import LightGBMFeatureParallel
from .qd1 import XGBoostStyle
from .qd2 import DimBoostStyle, LightGBMStyle
from .qd3 import YggdrasilStyle
from .vero import Vero

_SYSTEMS = {
    "qd1": XGBoostStyle,
    "xgboost": XGBoostStyle,
    "qd2": LightGBMStyle,
    "lightgbm": LightGBMStyle,
    "dimboost": DimBoostStyle,
    "qd3": YggdrasilStyle,
    "yggdrasil": YggdrasilStyle,
    "qd4": Vero,
    "vero": Vero,
    "lightgbm-fp": LightGBMFeatureParallel,
}


def make_system(
    name: str, config: TrainConfig, cluster: ClusterConfig, **kwargs
) -> DistributedGBDT:
    """Factory over quadrant/system names (case-insensitive).

    Accepted names: qd1/xgboost, qd2/lightgbm, dimboost, qd3/yggdrasil,
    qd4/vero, lightgbm-fp.
    """
    cls = _SYSTEMS.get(name.lower())
    if cls is None:
        known = ", ".join(sorted(_SYSTEMS))
        raise KeyError(f"unknown system {name!r}; known: {known}")
    return cls(config, cluster, **kwargs)


__all__ = [
    "QuadrantEstimate",
    "Recommendation",
    "estimate",
    "recommend",
    "DistEvalRecord",
    "DistTrainResult",
    "DistributedGBDT",
    "DimBoostStyle",
    "LightGBMFeatureParallel",
    "LightGBMStyle",
    "MemoryReport",
    "TreeReport",
    "Vero",
    "XGBoostStyle",
    "YggdrasilStyle",
    "make_system",
]
