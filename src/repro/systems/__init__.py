"""The four data-management quadrants, one code base (Section 5.2).

Every system is an :class:`~repro.systems.plans.ExecutionPlan` — one
strategy per axis, composed by a
:class:`~repro.systems.executor.PlanExecutor`:

========  ============  =========  ============  =================
Plan key  Partitioning  Storage    Index         Aggregation
========  ============  =========  ============  =================
qd1       horizontal    column     inst-to-node  all-reduce
qd2       horizontal    row        node-to-inst  reduce-scatter
qd2-ps    horizontal    row        node-to-inst  parameter-server
qd2-fp    replicated    row        node-to-inst  local
qd3       vertical      column     hybrid        bitmap-broadcast
qd3-pure  vertical      column     columnwise    bitmap-broadcast
vero      vertical      row        node-to-inst  bitmap-broadcast
========  ============  =========  ============  =================

The classic class names (:class:`XGBoostStyle`, :class:`LightGBMStyle`,
:class:`DimBoostStyle`, :class:`YggdrasilStyle`, :class:`Vero`,
:class:`LightGBMFeatureParallel`) survive as thin aliases over the
registry entries, defined next to the registry in
:mod:`repro.systems.plans`.

Training runs through a resumable
:class:`~repro.systems.executor.TrainingSession`, which can migrate
between plans at tree boundaries (``system.fit`` wraps one).
:func:`make_adaptive_session` builds a session with an
:class:`~repro.systems.advisor.AdaptivePolicy` attached — the
``--plan auto-adapt`` path.
"""

from __future__ import annotations

from typing import Optional

from ..config import ClusterConfig, TrainConfig
from .advisor import (AdaptDecision, AdaptivePolicy, CalibratedConstants,
                      PlanCost, QuadrantEstimate, Recommendation,
                      calibrate_constants, estimate, price_plans,
                      recommend)
from .base import (DistEvalRecord, DistributedGBDT, DistTrainResult,
                   MemoryReport, TreeReport)
from .costmodel import WorkloadShape
from .executor import (PlanExecutor, SessionCheckpoint, SessionState,
                       TrainingSession)
from .migration import MigrationRecord, PlanMigrator
from .plans import (ALIASES, PLANS, DimBoostStyle, ExecutionPlan,
                    LightGBMFeatureParallel, LightGBMStyle, Vero,
                    XGBoostStyle, YggdrasilStyle, get_plan, plan_keys)

#: names that resolve to a dedicated alias class (kwargs accepted)
_SYSTEMS = {
    "qd1": XGBoostStyle,
    "xgboost": XGBoostStyle,
    "qd2": LightGBMStyle,
    "lightgbm": LightGBMStyle,
    "qd2-ps": DimBoostStyle,
    "dimboost": DimBoostStyle,
    "qd3": YggdrasilStyle,
    "yggdrasil": YggdrasilStyle,
    "qd4": Vero,
    "vero": Vero,
    "qd2-fp": LightGBMFeatureParallel,
    "lightgbm-fp": LightGBMFeatureParallel,
}


def make_system(
    name: str, config: TrainConfig, cluster: ClusterConfig, **kwargs
) -> DistributedGBDT:
    """Factory over system names and plan registry keys (case-insensitive).

    Accepted names: qd1/xgboost, qd2/lightgbm, qd2-ps/dimboost,
    qd3/yggdrasil (``index_mode=`` kwarg), qd4/vero, qd2-fp/lightgbm-fp,
    plus any other :data:`~repro.systems.plans.PLANS` key (e.g.
    ``qd3-pure``, ``qd4-blocked``).
    """
    cls = _SYSTEMS.get(name.lower())
    if cls is not None:
        return cls(config, cluster, **kwargs)
    try:
        plan = get_plan(name)
    except KeyError:
        known = ", ".join(sorted(set(_SYSTEMS) | set(PLANS) | set(ALIASES)))
        raise KeyError(f"unknown system {name!r}; known: {known}") from None
    if kwargs:
        raise TypeError(
            f"plan {plan.key!r} takes no keyword arguments; got "
            f"{sorted(kwargs)}"
        )
    return plan.build(config, cluster)


def make_adaptive_session(
    config: TrainConfig,
    cluster: ClusterConfig,
    train,
    valid=None,
    start_plan: str = "",
    every: Optional[int] = None,
    margin: float = 1.0,
) -> TrainingSession:
    """A :class:`TrainingSession` with adaptive re-planning attached.

    ``start_plan`` (or ``config.plan``) names the opening plan; when
    neither is set the advisor's prior-cost recommendation picks it.
    The policy recalibrates every ``every`` trees (``config.adapt``, or
    4 when that is 0) and migrates whenever the projected savings over
    the remaining trees exceed the migration bill by ``margin``.
    """
    session = TrainingSession(
        _adaptive_start_system(config, cluster, train, start_plan),
        train, valid=valid,
    )
    binned = session.binned
    shape = WorkloadShape(
        num_instances=binned.num_instances,
        num_features=binned.num_features,
        num_workers=cluster.num_workers,
        num_layers=config.num_layers,
        num_candidates=config.num_candidates,
        num_classes=config.gradient_dim,
    )
    avg_nnz = binned.binned.nnz / max(binned.num_instances, 1)
    session.policy = AdaptivePolicy(
        shape, avg_nnz, cluster.network,
        every=every if every is not None else (config.adapt or 4),
        margin=margin,
        codec=config.codec or "none",
    )
    return session


def _adaptive_start_system(config, cluster, train, start_plan):
    key = start_plan or config.plan
    if key and key != "auto-adapt":
        return get_plan(key).build(config, cluster)
    # no opening plan named: let the prior cost model pick one (the
    # session migrates away later if the calibrated model disagrees)
    from ..data.dataset import BinnedDataset, bin_dataset

    binned = train if isinstance(train, BinnedDataset) \
        else bin_dataset(train, config.num_candidates)
    shape = WorkloadShape(
        num_instances=binned.num_instances,
        num_features=binned.num_features,
        num_workers=cluster.num_workers,
        num_layers=config.num_layers,
        num_candidates=config.num_candidates,
        num_classes=config.gradient_dim,
    )
    avg_nnz = binned.binned.nnz / max(binned.num_instances, 1)
    verdict = recommend(shape, avg_nnz, cluster.network,
                        codec=config.codec or "none",
                        backend=config.backend)
    return get_plan(verdict.best.plan_key).build(config, cluster)


__all__ = [
    "ALIASES",
    "AdaptDecision",
    "AdaptivePolicy",
    "CalibratedConstants",
    "ExecutionPlan",
    "MigrationRecord",
    "PLANS",
    "PlanCost",
    "PlanExecutor",
    "PlanMigrator",
    "QuadrantEstimate",
    "Recommendation",
    "SessionCheckpoint",
    "SessionState",
    "TrainingSession",
    "WorkloadShape",
    "calibrate_constants",
    "estimate",
    "get_plan",
    "plan_keys",
    "price_plans",
    "recommend",
    "DistEvalRecord",
    "DistTrainResult",
    "DistributedGBDT",
    "DimBoostStyle",
    "LightGBMFeatureParallel",
    "LightGBMStyle",
    "MemoryReport",
    "TreeReport",
    "Vero",
    "XGBoostStyle",
    "YggdrasilStyle",
    "make_adaptive_session",
    "make_system",
]
