"""Plan migration at tree boundaries.

:class:`PlanMigrator` tears down the current
:class:`~repro.systems.plans.ExecutionPlan`'s partition/index/aggregation
state and rebuilds it for a target plan, mid-session, without touching
the model: all eight registry plans train bit-identical trees, so a
migrated run's ensemble equals the prefix of the source plan followed by
the suffix of the target plan, and the only ledger difference is the
migration traffic itself.

Every migrated byte is charged to a ``migrate:`` ledger kind, reusing
the byte conventions of the chaos-recovery reshard machinery:

* ``migrate:checkpoint`` — the committed model plus every index
  replica's placement state, encoded through the codec stack's index
  codec (the same path ``recovery:checkpoint`` takes);
* ``migrate:reshard`` — per worker, the target layout's shard with the
  expected ``(W-1)/W`` wire fraction (rows/columns the worker does not
  already hold locally), charged only when the partition axis changes —
  a storage-only migration (e.g. qd1 → qd2) is a local relayout;
* ``migrate:labels`` — the label broadcast owed when leaving horizontal
  partitioning (vertical/replicated workers need all labels);
* ``migrate:decision`` — the decision inputs broadcast to the workers
  (numeric fields as 8-byte doubles, strings as utf-8), so the
  adaptation trail is itself in the ledger.

Crash safety: a worker crash during migration aborts the attempt — the
partial migration traffic is reclassified under ``recovery:migrate:*``
(it was real wire traffic that produced no committed state), the source
plan's state remains authoritative, and the migration replays
deterministically.  Scheduled :class:`~repro.cluster.faults.FaultInjector`
crashes are *not* consumed here (their schedule addresses layer
boundaries of specific trees and must stay aligned with the training
loop); mid-migration crashes are injected via
:attr:`PlanMigrator.scripted_crashes`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import List, Tuple

from ..cluster.faults import CrashEvent, RECOVERY_PREFIX
from .executor import PlanExecutor, RecoveryRecord, WorkerCrashError
from .plans import ExecutionPlan, get_plan

#: ``layer`` value of recovery records for crashes absorbed mid-migration
#: (migration happens between trees, so no real layer applies)
MIGRATION_LAYER = -1

MIGRATE_PREFIX = "migrate:"


def decision_wire_bytes(inputs: dict) -> int:
    """Canonical broadcast size of a decision payload.

    Keys and string values ship as utf-8, numeric fields as 8-byte
    doubles, booleans as one byte.  Free-text ``reason`` strings ride
    the result record for display, not the wire — keeping the charge
    independent of wall-clock-derived digit counts so migrated runs
    replay bit-identically.
    """
    total = 0
    for key, value in inputs.items():
        if key == "reason":
            continue
        total += len(key.encode("utf-8"))
        if isinstance(value, bool):
            total += 1
        elif isinstance(value, str):
            total += len(value.encode("utf-8"))
        else:
            total += 8
    return total


@dataclass(frozen=True)
class MigrationRecord:
    """One completed plan migration: what moved and what it cost."""

    tree_index: int
    source_plan: str
    target_plan: str
    checkpoint_bytes: int
    reshard_bytes: int
    label_bytes: int
    decision_bytes: int
    seconds: float
    pool_buffers_dropped: int = 0
    #: crashes absorbed (and replayed) during this migration
    crashes: int = 0

    @property
    def wire_bytes(self) -> int:
        return (self.checkpoint_bytes + self.reshard_bytes
                + self.label_bytes + self.decision_bytes)


class PlanMigrator:
    """Rebuilds a session's execution state for a different plan."""

    def __init__(self, session) -> None:
        self.session = session
        #: worker ids whose crash is injected mid-migration (one popped
        #: per attempt); tests use this to pin the crash-during-migration
        #: recovery path
        self.scripted_crashes: List[int] = []

    def migrate(self, target, decision=None) -> MigrationRecord:
        """Tear down the current plan and rebuild for ``target``.

        Must be called at a tree boundary.  On success the session's
        executor is swapped and a :class:`MigrationRecord` is returned;
        a scripted mid-migration crash aborts the attempt, reclassifies
        its traffic under ``recovery:migrate:*``, and replays.
        """
        session = self.session
        old = session.system
        if not isinstance(old, PlanExecutor):
            raise TypeError(
                f"cannot migrate {type(old).__name__}: plan migration "
                "needs a PlanExecutor session"
            )
        plan = target if isinstance(target, ExecutionPlan) \
            else get_plan(target)
        if plan.key == old.plan.key:
            raise ValueError(
                f"session is already executing plan {plan.key!r}"
            )
        net = old.net
        crashes = 0
        while True:
            attempt_mark = net.mark()
            try:
                record, new = self._attempt(old, plan, decision)
                break
            except WorkerCrashError as crash:
                crashes += 1
                net.relabel_since(attempt_mark, RECOVERY_PREFIX)
                old.recovery_log.append(RecoveryRecord(
                    tree=session.state.tree_index, layer=MIGRATION_LAYER,
                    worker=crash.event.worker,
                    policy="migration-restart", restore_bytes=0,
                ))
        if crashes:
            record = dataclasses.replace(record, crashes=crashes)
        session._adopt_system(new, record)
        return record

    # -- one migration attempt --------------------------------------------------

    def _attempt(
        self, old: PlanExecutor, plan: ExecutionPlan, decision,
    ) -> Tuple[MigrationRecord, PlanExecutor]:
        session = self.session
        net = old.net
        num_workers = old.cluster.num_workers
        binned = session.binned
        seconds = 0.0

        # 1. quiesce the source plan and ship the committed state: the
        # model plus every index replica's placement snapshot, through
        # the codec stack exactly as crash recovery ships it.
        old._reset_tree_state()
        checkpoint = old._take_checkpoint(session.state.tree_index)
        old.last_checkpoint = checkpoint
        state_raw = checkpoint.state_bytes
        state_wire = state_raw
        if not old.codec.is_identity:
            start = time.perf_counter()
            state_wire = 0
            for arr in checkpoint.index_state:
                enc = old.codec.index.encode(arr)
                old.codec.index.decode(enc)
                state_wire += enc.nbytes
            # codec kernel time is real compute; fold it into the
            # simulated clock via the migration bill
            seconds += time.perf_counter() - start
        checkpoint_bytes = checkpoint.model_bytes + state_wire
        seconds += net.transfer(
            "migrate:checkpoint", checkpoint_bytes,
            raw_nbytes=checkpoint.model_bytes + state_raw,
        )
        self._maybe_crash(session.state.tree_index)

        # 2. build the target executor on the shared fabric: same
        # network (one ledger), same fault schedule, same kernel
        # builder.  The pool is reset so buffers shaped for the old
        # plan's shards do not pin memory for the rest of the run.
        new = PlanExecutor(old.config, old.cluster, plan)
        new.net = net
        new.injector = old.injector
        new.codec = old.codec
        dropped = old.hist_builder.pool.reset()
        new.hist_builder = old.hist_builder
        new.hist_builder.constant_hessian = new.loss.constant_hessian
        # session-wide recovery trail: share the list across executors
        new.recovery_log = old.recovery_log
        new._binned = binned
        new._setup(binned)
        new._trees_trained = session.state.tree_index
        new._ensemble = session.ensemble

        # 3. reshard: when the partition axis changes, each worker
        # fetches the (W-1)/W of its new shard it does not already hold
        # (the chaos reshard's wire-fraction convention); labels follow
        # when leaving horizontal partitioning.  Same-axis migrations
        # relayout locally and ship nothing.
        reshard_bytes = 0
        label_bytes = 0
        if new.partition.key != old.partition.key:
            for worker in range(num_workers):
                shard = new.storage.shard_bytes(new, worker)
                wire = int(shard * (num_workers - 1) / num_workers)
                if wire:
                    seconds += net.transfer("migrate:reshard", wire)
                    reshard_bytes += wire
            if (old.partition.key == "horizontal"
                    and new.partition.key != "horizontal"):
                label_bytes = binned.labels.nbytes * (num_workers - 1)
                seconds += net.transfer("migrate:labels", label_bytes)

        # 4. broadcast the decision inputs so `repro ledger` can show
        # why the plan changed (a minimal control record for manual
        # migrations).
        payload = self._decision_inputs(old, plan, decision)
        decision_bytes = decision_wire_bytes(payload) \
            * max(num_workers - 1, 1)
        seconds += net.transfer("migrate:decision", decision_bytes)

        record = MigrationRecord(
            tree_index=session.state.tree_index,
            source_plan=old.plan.key,
            target_plan=plan.key,
            checkpoint_bytes=checkpoint_bytes,
            reshard_bytes=reshard_bytes,
            label_bytes=label_bytes,
            decision_bytes=decision_bytes,
            seconds=seconds,
            pool_buffers_dropped=dropped,
        )
        return record, new

    def _maybe_crash(self, tree_index: int) -> None:
        if self.scripted_crashes:
            worker = self.scripted_crashes.pop(0)
            raise WorkerCrashError(
                CrashEvent(tree=tree_index, layer=MIGRATION_LAYER,
                           worker=worker)
            )

    def _decision_inputs(self, old: PlanExecutor, plan: ExecutionPlan,
                         decision) -> dict:
        if decision is not None and hasattr(decision, "payload"):
            return decision.payload()
        return {
            "tree": self.session.state.tree_index,
            "source": old.plan.key,
            "target": plan.key,
            "reason": "manual",
        }
