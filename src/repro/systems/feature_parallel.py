"""Feature-parallel LightGBM (Appendix D of the paper).

Since the ExecutionPlan refactor this is a thin alias over the
``qd2-fp`` registry entry: no dataset partitioning — every worker loads
a full copy and builds histograms only for its assigned feature subset.
Split finding proceeds like vertical partitioning (local best +
election), but node splitting is local everywhere — no placement bitmap
is broadcast because every worker owns all the data.  The price is
``W`` full copies of the dataset, which is why the paper calls it
impractical for large-scale workloads.
"""

from __future__ import annotations

from ..config import ClusterConfig, TrainConfig
from .executor import PlanExecutor
from .plans import get_plan


class LightGBMFeatureParallel(PlanExecutor):
    """LightGBM's feature-parallel mode: full data copy per worker."""

    def __init__(self, config: TrainConfig,
                 cluster: ClusterConfig) -> None:
        super().__init__(config, cluster, get_plan("qd2-fp"))
