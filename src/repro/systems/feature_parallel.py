"""Deprecated location of :class:`LightGBMFeatureParallel` (now in
``plans``)."""

from .plans import LightGBMFeatureParallel, _deprecated_alias_module

_deprecated_alias_module(__name__)

__all__ = ["LightGBMFeatureParallel"]
