"""The four strategy axes of a distributed GBDT execution plan.

The paper's thesis is that distributed GBDT decomposes into orthogonal
data-management choices.  This module makes each axis a first-class
strategy object:

* :class:`PartitionStrategy` — who owns which slice of the dataset
  (horizontal row shards / vertical column groups / full replicas) and,
  consequently, where gradients and node statistics live.
* :class:`StorageLayout` — how a worker lays out its shard (CSR row
  store / CSC column store / blockified column group) and which
  histogram-construction and placement kernels that layout admits.
* :class:`IndexPlan` — which node/instance index drives histogram
  construction (level-wise instance-to-node pass, node-to-instance with
  subtraction scheduling, per-column node-to-instance, the hybrid plan
  of Section 5.2.2, or the blockified two-phase index of Figure 9).
* :class:`AggregationStrategy` — how per-worker histograms become global
  split decisions (ring all-reduce, reduce-scatter, parameter-server
  push, or no aggregation at all with local election plus placement
  bitmap broadcast), including every byte the pattern puts on the wire.

Strategies are stateless policy singletons: all per-run state (shards,
indexes, histogram stores, node statistics) lives on the
:class:`~repro.systems.executor.PlanExecutor` they are handed, so one
strategy instance can serve any number of concurrent executors.  The
combination of one strategy per axis is an
:class:`~repro.systems.plans.ExecutionPlan`; the quadrants of the paper
are seven entries in that plan registry rather than seven subclasses.

Every method here is a verbatim relocation of the corresponding
pre-refactor quadrant code — the equivalence suite pins bit-identical
trees and identical traffic against the frozen legacy classes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, TYPE_CHECKING, Tuple

import numpy as np

from ..cluster.blocks import BlockedColumnGroup, blockify_shard
from ..cluster.comm import (SPLIT_INFO_BYTES, allreduce_histograms,
                            broadcast_bytes, exchange_split_infos,
                            ps_push_histograms, record_collective,
                            reduce_scatter_histograms)
from ..cluster.partition import horizontal_shards, vertical_shards
from ..core.histogram import ColumnwiseIndex, Histogram, node_totals
from ..core.indexing import NodeToInstanceIndex
from ..core.placement import (layer_placements_colstore,
                              layer_placements_rowstore,
                              rowstore_search_keys)
from ..core.split import SplitInfo
from ..core.tree import Tree
from .base import WorkerClock, subtraction_schedule

if TYPE_CHECKING:
    from ..config import TrainConfig
    from .executor import PlanExecutor

#: leader worker that owns aggregated histograms under all-reduce (QD1)
LEADER = 0


def _encode_worker_hists(ex, node: int, clock: WorkerClock,
                         enc_bytes: List[int],
                         enc_seconds: List[float]) -> Tuple[List, float]:
    """Encode every worker's histogram of ``node`` with the executor's
    codec and decode at the receiving end.

    The encode kernel is charged to the owning worker, the decode time
    is returned for the caller to charge where the aggregated result
    materializes.  Returns the decoded per-worker histograms (for a
    lossless codec these are bit-identical to the originals, so the
    downstream sum — in unchanged order — reproduces the dense model
    exactly) and the accumulated decode seconds.
    """
    codec = ex.codec.histogram
    decoded = []
    dec_seconds = 0.0
    for worker, store in enumerate(ex.stores):
        start = time.perf_counter()
        enc = codec.encode(store.get(node))
        enc_seconds[worker] += time.perf_counter() - start
        enc_bytes[worker] += enc.nbytes
        start = time.perf_counter()
        decoded.append(codec.decode(enc))
        dec_seconds += time.perf_counter() - start
    return decoded, dec_seconds


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

class PartitionStrategy:
    """How the dataset is sliced across workers.

    A partition owns the per-run sharding state on the executor, knows
    where gradients are computed, how node statistics are obtained, and
    how per-instance leaf ids are assembled at the end of a tree.
    """

    key: str = "abstract"

    def setup(self, ex: "PlanExecutor", binned) -> None:
        raise NotImplementedError

    def reset(self, ex: "PlanExecutor") -> None:
        """Per-tree index/statistics reset."""
        raise NotImplementedError

    def hist_workers(self, ex: "PlanExecutor") -> Sequence[int]:
        """Workers that participate in histogram construction."""
        return range(ex.cluster.num_workers)

    def worker_grad(self, ex: "PlanExecutor", worker: int,
                    grad: np.ndarray,
                    hess: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The gradient rows worker ``worker`` holds locally."""
        raise NotImplementedError

    def worker_index(self, ex: "PlanExecutor",
                     worker: int) -> NodeToInstanceIndex:
        """The node/instance index tracking the worker's local rows."""
        raise NotImplementedError

    def gradient_instances(self, ex: "PlanExecutor") -> int:
        raise NotImplementedError

    def node_count(self, ex: "PlanExecutor", node: int) -> int:
        raise NotImplementedError

    def compute_stats(self, ex: "PlanExecutor", node: int,
                      grad: np.ndarray, hess: np.ndarray,
                      clock: WorkerClock) -> None:
        """Fill ``ex.stats[node]`` with the node's global (G, H) totals."""
        raise NotImplementedError

    def retire_node(self, ex: "PlanExecutor", node: int) -> None:
        raise NotImplementedError

    def assemble_leaves(self, ex: "PlanExecutor") -> np.ndarray:
        raise NotImplementedError

    def label_bytes(self, ex: "PlanExecutor", worker: int) -> int:
        raise NotImplementedError

    def data_bytes(self, ex: "PlanExecutor") -> int:
        """Max per-worker dataset memory (storage shard + labels)."""
        return max(
            ex.storage.shard_bytes(ex, w) + self.label_bytes(ex, w)
            for w in range(ex.cluster.num_workers)
        )


class HorizontalPartition(PartitionStrategy):
    """Each worker owns a contiguous row range (QD1/QD2, Figure 4(a)).

    Workers see all features of their own rows, so node splitting is
    purely local, but histograms must be aggregated before split finding
    and node statistics are sums of per-worker partial totals.
    """

    key = "horizontal"

    def setup(self, ex: "PlanExecutor", binned) -> None:
        num_workers = ex.cluster.num_workers
        ex.shards, ex.row_ranges = horizontal_shards(binned, num_workers)
        # contiguous feature ranges used for reduce-scatter / server shards
        bounds = np.linspace(0, binned.num_features,
                             num_workers + 1).astype(np.int64)
        ex.feature_ranges = [
            np.arange(bounds[w], bounds[w + 1], dtype=np.int64)
            for w in range(num_workers)
        ]

    def reset(self, ex: "PlanExecutor") -> None:
        ex.indexes = [
            NodeToInstanceIndex(shard.num_instances)
            for shard in ex.shards
        ]

    def worker_grad(self, ex, worker, grad, hess):
        rows = ex.row_ranges[worker]
        return grad[rows], hess[rows]

    def worker_index(self, ex, worker):
        return ex.indexes[worker]

    def gradient_instances(self, ex) -> int:
        """Each worker computes gradients for its own rows only."""
        return max(r.size for r in ex.row_ranges)

    def node_count(self, ex, node) -> int:
        return sum(index.count_of(node) for index in ex.indexes)

    def compute_stats(self, ex, node, grad, hess, clock) -> None:
        """Global node totals as the sum of per-worker local totals."""
        total_g = np.zeros(grad.shape[1])
        total_h = np.zeros(hess.shape[1])
        for worker in range(ex.cluster.num_workers):
            local_g, local_h = self.worker_grad(ex, worker, grad, hess)
            g, h = node_totals(ex.indexes[worker].rows_of(node),
                               local_g, local_h)
            total_g += g
            total_h += h
        ex.stats[node] = (total_g, total_h)

    def retire_node(self, ex, node) -> None:
        for index in ex.indexes:
            index.retire_node(node)

    def assemble_leaves(self, ex) -> np.ndarray:
        """Global per-instance leaf ids from the worker-local indexes."""
        leaf = np.empty(ex._binned.num_instances, dtype=np.int32)
        for worker, index in enumerate(ex.indexes):
            leaf[ex.row_ranges[worker]] = index.node_of_instance
        return leaf

    def label_bytes(self, ex, worker) -> int:
        return ex.shards[worker].labels.nbytes


class VerticalPartition(PartitionStrategy):
    """Each worker owns a column group plus all labels (QD3/QD4).

    Histograms never need aggregation; every worker computes all ``N``
    gradients, and a single physical index stands in for the per-worker
    replicas, which never diverge because every worker applies identical
    placement updates (Section 4.2.2).
    """

    key = "vertical"

    def setup(self, ex: "PlanExecutor", binned) -> None:
        num_workers = ex.cluster.num_workers
        ex.shards, ex.groups = vertical_shards(
            binned, num_workers, strategy=ex.grouping,
            seed=ex.cluster.seed,
        )
        ex.owner_of_feature = np.empty(binned.num_features, dtype=np.int64)
        ex.local_of_feature = np.empty(binned.num_features, dtype=np.int64)
        for worker, group in enumerate(ex.groups):
            ex.owner_of_feature[group] = worker
            ex.local_of_feature[group] = np.arange(group.size)

    def reset(self, ex: "PlanExecutor") -> None:
        ex.index = NodeToInstanceIndex(ex._binned.num_instances)

    def hist_workers(self, ex) -> Sequence[int]:
        """Skip workers owning no features (W > D)."""
        return [w for w in range(ex.cluster.num_workers)
                if ex.groups[w].size > 0]

    def worker_grad(self, ex, worker, grad, hess):
        """Every worker holds all labels, hence all gradients."""
        return grad, hess

    def worker_index(self, ex, worker):
        return ex.index

    def gradient_instances(self, ex) -> int:
        return ex._binned.num_instances

    def node_count(self, ex, node) -> int:
        return ex.index.count_of(node)

    def compute_stats(self, ex, node, grad, hess, clock) -> None:
        """Node totals — computed identically on every worker."""
        start = time.perf_counter()
        ex.stats[node] = node_totals(ex.index.rows_of(node), grad, hess)
        clock.charge_all(time.perf_counter() - start, phase="split-find")

    def retire_node(self, ex, node) -> None:
        ex.index.retire_node(node)

    def assemble_leaves(self, ex) -> np.ndarray:
        return ex.index.node_of_instance.copy()

    def label_bytes(self, ex, worker) -> int:
        return ex._binned.labels.nbytes


class ReplicatedPartition(VerticalPartition):
    """Feature-parallel mode: every worker holds the *full* dataset.

    Histogram work is still divided by column group (so the group
    structures of :class:`VerticalPartition` apply unchanged), but no
    placement traffic is ever needed and dataset memory is ``W`` full
    copies — the Appendix D trade-off.
    """

    key = "replicated"

    def data_bytes(self, ex) -> int:
        """Every worker holds the entire dataset."""
        return ex._binned.binned.nbytes + ex._binned.labels.nbytes


# ---------------------------------------------------------------------------
# Storage layout
# ---------------------------------------------------------------------------

class StorageLayout:
    """How a worker materializes its shard, and the kernels that admits."""

    key: str = "abstract"

    def setup(self, ex: "PlanExecutor") -> None:
        """Materialize the storage representation of every shard."""

    def build_node_hist(self, ex: "PlanExecutor", worker: int, node: int,
                        rows: np.ndarray, grad: np.ndarray,
                        hess: np.ndarray,
                        index: NodeToInstanceIndex) -> Histogram:
        """Histogram of one node over the worker's stored entries."""
        raise NotImplementedError

    def build_layer_hists(self, ex: "PlanExecutor", worker: int,
                          nodes: Sequence[int], grad: np.ndarray,
                          hess: np.ndarray,
                          index: NodeToInstanceIndex) -> List[Histogram]:
        """All node histograms of one layer in a single pass."""
        raise NotImplementedError(
            f"{self.key} storage has no level-wise layer kernel; use a "
            "subtraction-style index plan"
        )

    def placements(self, ex: "PlanExecutor", worker: int,
                   index: NodeToInstanceIndex,
                   splits: Dict[int, SplitInfo]) -> Dict[int, np.ndarray]:
        """``go_left`` per split node, computed from the worker's shard."""
        raise NotImplementedError

    def shard_bytes(self, ex: "PlanExecutor", worker: int) -> int:
        raise NotImplementedError


class RowStore(StorageLayout):
    """CSR shard: rows of (feature, bin) pairs (QD2/QD4)."""

    key = "row"

    def build_node_hist(self, ex, worker, node, rows, grad, hess, index):
        hist, _ = ex.hist_builder.build_rowstore(
            ex.shards[worker].binned, rows, grad, hess,
            ex._binned.num_bins,
        )
        return hist

    def placements(self, ex, worker, index, splits):
        return layer_placements_rowstore(
            ex.shards[worker].binned, index, splits,
            search_keys=ex.shards[worker].search_keys(),
        )

    def shard_bytes(self, ex, worker) -> int:
        return ex.shards[worker].binned.nbytes


class ColumnStore(StorageLayout):
    """CSC shard: one bin-index array per feature column (QD1/QD3)."""

    key = "column"

    def setup(self, ex: "PlanExecutor") -> None:
        ex.csc_shards = [shard.csc() for shard in ex.shards]

    def build_node_hist(self, ex, worker, node, rows, grad, hess, index):
        """The hybrid kernel (Section 5.2.2): per column, linear scan with
        instance-to-node lookups or binary search of the node's rows,
        whichever is cheaper."""
        hist, _, _ = ex.hist_builder.build_colstore_hybrid(
            ex.csc_shards[worker], rows, index.node_of_instance, node,
            grad, hess, ex._binned.num_bins,
        )
        return hist

    def build_layer_hists(self, ex, worker, nodes, grad, hess, index):
        slots = index.slot_of_instance(nodes)
        hists, _ = ex.hist_builder.build_colstore_layer(
            ex.csc_shards[worker], slots, len(nodes), grad, hess,
            ex._binned.num_bins,
        )
        return hists

    def placements(self, ex, worker, index, splits):
        return layer_placements_colstore(
            ex.csc_shards[worker], index, splits,
        )

    def shard_bytes(self, ex, worker) -> int:
        return ex.csc_shards[worker].nbytes


class BlockifiedRowStore(StorageLayout):
    """Blockified column group (Figure 9): the post-repartition layout.

    Each shard is wrapped as one shipped :class:`Block`, assembled into a
    :class:`BlockedColumnGroup` and merged down; kernels run over the
    merged CSR (the paper's training representation), which holds entry
    for entry the same data as the plain row store, so trees are
    bit-identical to QD4's while the memory report reflects the block
    arrays actually held.
    """

    key = "blocked-row"

    def setup(self, ex: "PlanExecutor") -> None:
        ex.blocked_groups = []
        ex.block_csr = []
        ex.block_search_keys = []
        for shard in ex.shards:
            group = BlockedColumnGroup(
                [blockify_shard(shard.binned, row_offset=0)],
                shard.num_features,
            ).merge(max_blocks=1)
            csr = group.to_csr()
            ex.blocked_groups.append(group)
            ex.block_csr.append(csr)
            ex.block_search_keys.append(rowstore_search_keys(csr))

    def build_node_hist(self, ex, worker, node, rows, grad, hess, index):
        hist, _ = ex.hist_builder.build_rowstore(
            ex.block_csr[worker], rows, grad, hess, ex._binned.num_bins,
        )
        return hist

    def placements(self, ex, worker, index, splits):
        return layer_placements_rowstore(
            ex.block_csr[worker], index, splits,
            search_keys=ex.block_search_keys[worker],
        )

    def shard_bytes(self, ex, worker) -> int:
        return sum(b.nbytes for b in ex.blocked_groups[worker].blocks)


# ---------------------------------------------------------------------------
# Index plan
# ---------------------------------------------------------------------------

class IndexPlan:
    """Which node/instance index drives histogram construction."""

    key: str = "abstract"

    def setup(self, ex: "PlanExecutor") -> None:
        """One-time structures next to the storage layout."""

    def reset(self, ex: "PlanExecutor") -> None:
        """Per-tree reset of index-plan-owned structures."""

    def build_layer(self, ex: "PlanExecutor", nodes: Sequence[int],
                    grad: np.ndarray, hess: np.ndarray,
                    clock: WorkerClock) -> None:
        """Fill every worker's histogram store for one layer's nodes."""
        raise NotImplementedError

    def after_layer(self, ex: "PlanExecutor", nodes: Sequence[int],
                    split_nodes: Sequence[int],
                    clock: WorkerClock) -> None:
        """Post-split maintenance: index reorders, histogram retirement."""


class InstanceToNodePlan(IndexPlan):
    """Level-wise pass keyed by the instance-to-node direction (QD1).

    One scan of *all* stored entries scatters each into the histogram of
    the node its instance currently occupies, so histogram subtraction
    cannot skip any data and the layer's histograms are discarded whole.
    """

    key = "instance-to-node"

    def build_layer(self, ex, nodes, grad, hess, clock) -> None:
        for worker in ex.partition.hist_workers(ex):
            local_g, local_h = ex.partition.worker_grad(ex, worker,
                                                        grad, hess)
            index = ex.partition.worker_index(ex, worker)
            start = time.perf_counter()
            hists = ex.storage.build_layer_hists(ex, worker, nodes,
                                                 local_g, local_h, index)
            clock.charge(worker, time.perf_counter() - start)
            store = ex.stores[worker]
            for node, hist in zip(nodes, hists):
                store.put(node, hist)

    def after_layer(self, ex, nodes, split_nodes, clock) -> None:
        # nothing is retained: the layer's histograms are discarded
        for store in ex.stores:
            for node in nodes:
                store.pop(node)


class NodeToInstancePlan(IndexPlan):
    """Node-to-instance index with histogram subtraction (QD2/QD4).

    The master plans each layer's schema from global node counts
    (Section 4.2.2): for every sibling pair whose parent histogram is
    retained, only the smaller child is built and the other is derived.
    """

    key = "node-to-instance"

    def build_node_hist(self, ex, worker, node, rows, grad, hess, index):
        return ex.storage.build_node_hist(ex, worker, node, rows,
                                          grad, hess, index)

    def build_layer(self, ex, nodes, grad, hess, clock) -> None:
        counts = {
            node: ex.partition.node_count(ex, node) for node in nodes
        }
        have_parent = {
            (node - 1) // 2 for node in nodes
            if node > 0 and (node - 1) // 2 in ex.stores[0]
        } if ex.use_subtraction else set()
        actions = subtraction_schedule(nodes, counts, have_parent)
        for worker in ex.partition.hist_workers(ex):
            local_g, local_h = ex.partition.worker_grad(ex, worker,
                                                        grad, hess)
            index = ex.partition.worker_index(ex, worker)
            store = ex.stores[worker]
            start = time.perf_counter()
            for op, node, other in actions:
                if op == "build":
                    store.put(node, self.build_node_hist(
                        ex, worker, node, index.rows_of(node),
                        local_g, local_h, index))
                else:  # subtract: node = parent_hist - other(sibling)
                    parent = (node - 1) // 2
                    store.put(node, ex.hist_builder.subtract(
                        store.get(parent), store.get(other)))
            # parents consumed this layer are no longer needed
            for op, node, _ in actions:
                if op == "subtract":
                    store.pop((node - 1) // 2)
            clock.charge(worker, time.perf_counter() - start)

    def after_layer(self, ex, nodes, split_nodes, clock) -> None:
        if not ex.use_subtraction:
            # parents are never consumed by subtraction: drop them
            for store in ex.stores:
                for node in nodes:
                    store.pop(node)


class HybridIndexPlan(NodeToInstancePlan):
    """The paper's own QD3 plan (Section 5.2.2): subtraction scheduling
    over the column store's hybrid scan/search kernel."""

    key = "hybrid"


class ColumnwiseIndexPlan(NodeToInstancePlan):
    """Pure Yggdrasil: a per-column node-to-instance index gives free
    per-node column slices but costs an ``O(nnz)`` reorder of every
    column at each layer split (Appendix C)."""

    key = "columnwise"

    def reset(self, ex: "PlanExecutor") -> None:
        if hasattr(ex, "csc_shards"):
            ex.column_indexes = [
                ColumnwiseIndex(csc) for csc in ex.csc_shards
            ]

    def build_node_hist(self, ex, worker, node, rows, grad, hess, index):
        hist, _ = ex.hist_builder.build_colstore_columnwise(
            ex.column_indexes[worker], node, grad, hess,
            ex._binned.num_bins,
        )
        return hist

    def after_layer(self, ex, nodes, split_nodes, clock) -> None:
        if split_nodes:
            children = [c for n in split_nodes
                        for c in (2 * n + 1, 2 * n + 2)]
            for worker, column_index in enumerate(ex.column_indexes):
                start = time.perf_counter()
                column_index.update_after_split(
                    ex.index.node_of_instance, children,
                )
                clock.charge(worker, time.perf_counter() - start,
                             phase="node-split")
        super().after_layer(ex, nodes, split_nodes, clock)


class TwoPhaseIndexPlan(NodeToInstancePlan):
    """Subtraction scheduling over a blockified group (Figure 9).

    Global instance ids resolve through the two-phase block index
    (binary-search the block, then offset arithmetic); with blocks merged
    down the first phase is free and the kernels run over the merged
    representation.
    """

    key = "two-phase"


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

class AggregationStrategy:
    """How local histograms become global split decisions, and how the
    winning placements reach every replica of the index.

    Each strategy charges its own traffic on the executor's simulated
    network — histogram collectives, split-info exchanges and placement
    bitmaps — so per-plan ``comm_bytes`` accounting lives entirely on
    this axis.
    """

    key: str = "abstract"

    #: how a crashed worker is brought back (see DESIGN.md §9):
    #: ``"reshard"`` — the horizontal patterns; any row shard can be
    #: re-shipped from durable storage, so the crashed worker is restored
    #: from the tree checkpoint plus a reshard of its rows.
    #: ``"rollback"`` — the vertical broadcast pattern; a column shard is
    #: irreplaceable without its owner, so the whole tree rolls back to
    #: the last checkpoint before the replacement rejoins.
    #: ``"replicate"`` — the feature-parallel pattern; every peer holds
    #: the full dataset, so the replacement copies a replica from any
    #: survivor.
    #: All three replay the interrupted tree from its checkpoint; the
    #: policy decides what restore traffic is charged.
    recovery_policy: str = "rollback"

    def validate(self, config: "TrainConfig") -> None:
        """Reject configurations the pattern cannot serve."""

    def find_splits(self, ex: "PlanExecutor", nodes: Sequence[int],
                    clock: WorkerClock) -> Dict[int, SplitInfo]:
        raise NotImplementedError

    def apply_splits(self, ex: "PlanExecutor", tree: Tree,
                     splits: Dict[int, SplitInfo], grad: np.ndarray,
                     hess: np.ndarray, active: Set[int],
                     clock: WorkerClock) -> None:
        raise NotImplementedError


class _LocalPlacementMixin:
    """Shared by the horizontal patterns: every worker knows all features
    of its own rows, so node splitting is purely local — no placement
    broadcast is needed."""

    def apply_splits(self, ex, tree, splits, grad, hess, active,
                     clock) -> None:
        binned = ex._binned
        for node, split in splits.items():
            tree.set_split(node, split,
                           binned.threshold_of(split.feature, split.bin))
        for worker, index in enumerate(ex.indexes):
            start = time.perf_counter()
            placements = ex.storage.placements(ex, worker, index, splits)
            for node in splits:
                left, right = 2 * node + 1, 2 * node + 2
                index.split_node(node, placements[node], left, right)
            clock.charge(worker, time.perf_counter() - start,
                         phase="node-split")
        for node in splits:
            left, right = 2 * node + 1, 2 * node + 2
            ex.partition.compute_stats(ex, left, grad, hess, clock)
            ex.partition.compute_stats(ex, right, grad, hess, clock)
            active.discard(node)
            active.update((left, right))


class AllReduceAggregation(_LocalPlacementMixin, AggregationStrategy):
    """Ring all-reduce per layer; a leader enumerates every split (QD1).

    One all-reduce covers the whole layer (latency paid once); the
    leader's winning splits are broadcast as compact split infos.
    """

    key = "all-reduce"

    recovery_policy = "reshard"

    def find_splits(self, ex, nodes, clock) -> Dict[int, SplitInfo]:
        aggregated: Dict[int, Histogram] = {}
        payload = 0
        num_workers = ex.cluster.num_workers
        if ex.codec.is_identity:
            for node in nodes:
                aggregated[node] = allreduce_histograms(
                    [store.get(node) for store in ex.stores], net=None,
                )
                payload += aggregated[node].nbytes
            record_collective(ex.net, "hist-aggregation", payload,
                              num_workers, "allreduce")
        else:
            # each worker encodes its local histograms; the reduction
            # runs over the decoded payloads in the same worker order,
            # so a lossless codec reproduces the dense model exactly
            enc_bytes = [0] * num_workers
            enc_seconds = [0.0] * num_workers
            dec_seconds = 0.0
            for node in nodes:
                decoded, node_dec = _encode_worker_hists(
                    ex, node, clock, enc_bytes, enc_seconds)
                dec_seconds += node_dec
                aggregated[node] = allreduce_histograms(decoded, net=None)
                payload += aggregated[node].nbytes
            for worker, seconds in enumerate(enc_seconds):
                clock.charge(worker, seconds, phase="codec")
            # all-reduce materializes the result on every worker
            clock.charge_all(dec_seconds, phase="codec")
            record_collective(ex.net, "hist-aggregation", payload,
                              num_workers, "allreduce",
                              encoded_worker_bytes=enc_bytes)
        splits: Dict[int, SplitInfo] = {}
        bins = ex._binned.bins_per_feature
        start = time.perf_counter()
        for node in nodes:
            split = ex._decide_split(
                aggregated[node], ex.stats[node],
                ex.partition.node_count(ex, node), bins,
            )
            if split is not None:
                splits[node] = split
        clock.charge(LEADER, time.perf_counter() - start,
                     phase="split-find")
        broadcast_bytes(len(splits) * SPLIT_INFO_BYTES,
                        ex.cluster.num_workers, ex.net,
                        kind="split-broadcast")
        return splits


class ReduceScatterAggregation(_LocalPlacementMixin, AggregationStrategy):
    """Reduce-scatter over contiguous feature slices (QD2, LightGBM).

    Each worker ends up owning the aggregated slice of ``D / W``
    features, proposes a local best split, and the global best is
    elected from the exchange.
    """

    key = "reduce-scatter"

    recovery_policy = "reshard"

    #: collective pattern used to aggregate one layer's histograms
    pattern = "reducescatter"

    def aggregate_node(self, ex, node: int,
                       hists: Optional[List[Histogram]] = None,
                       ) -> List[Histogram]:
        """Aggregated feature-slice histograms, one per worker.

        ``hists`` overrides the per-worker inputs (the codec path passes
        decoded payloads).  The traffic is charged per layer in
        :meth:`find_splits` (real systems batch a layer's histograms
        into one collective)."""
        if hists is None:
            hists = [store.get(node) for store in ex.stores]
        return reduce_scatter_histograms(
            hists, ex.feature_ranges, net=None,
        )

    def find_splits(self, ex, nodes, clock) -> Dict[int, SplitInfo]:
        splits: Dict[int, SplitInfo] = {}
        bins = ex._binned.bins_per_feature
        payload = 0
        num_workers = ex.cluster.num_workers
        encode = not ex.codec.is_identity
        enc_bytes = [0] * num_workers
        enc_seconds = [0.0] * num_workers
        dec_seconds = 0.0
        for node in nodes:
            payload += ex.stores[0].get(node).nbytes
            if encode:
                decoded, node_dec = _encode_worker_hists(
                    ex, node, clock, enc_bytes, enc_seconds)
                dec_seconds += node_dec
                slices = self.aggregate_node(ex, node, decoded)
            else:
                slices = self.aggregate_node(ex, node)
            best: Optional[SplitInfo] = None
            for worker, piece in enumerate(slices):
                features = ex.feature_ranges[worker]
                if features.size == 0:
                    continue
                start = time.perf_counter()
                candidate = ex._decide_split(
                    piece, ex.stats[node],
                    ex.partition.node_count(ex, node), bins[features],
                )
                clock.charge(worker, time.perf_counter() - start,
                             phase="split-find")
                if candidate is not None:
                    candidate = SplitInfo(
                        feature=candidate.feature + int(features[0]),
                        bin=candidate.bin,
                        default_left=candidate.default_left,
                        gain=candidate.gain,
                    )
                    if candidate.better_than(best):
                        best = candidate
            if best is not None:
                splits[node] = best
        if encode:
            for worker, seconds in enumerate(enc_seconds):
                clock.charge(worker, seconds, phase="codec")
            # decoded slices materialize on the scatter owners; the
            # parallel decode is bounded by the full decode work
            clock.charge_all(dec_seconds, phase="codec")
            record_collective(ex.net, "hist-aggregation", payload,
                              num_workers, self.pattern,
                              encoded_worker_bytes=enc_bytes)
        else:
            record_collective(ex.net, "hist-aggregation", payload,
                              num_workers, self.pattern)
        exchange_split_infos(len(nodes), ex.cluster.num_workers, ex.net)
        return splits


class ParameterServerAggregation(ReduceScatterAggregation):
    """Parameter-server push/pull (QD2-PS, the DimBoost architecture).

    Histograms are pushed whole to ``W`` range-sharded servers; split
    finding happens server-side on the aggregated slices, with none of
    reduce-scatter's savings.
    """

    key = "parameter-server"

    pattern = "ps"

    def validate(self, config: "TrainConfig") -> None:
        if config.objective == "multiclass":
            raise ValueError(
                "parameter-server aggregation (DimBoost) does not "
                "support multi-classification (Section 5.3 of the paper)"
            )

    def aggregate_node(self, ex, node: int,
                       hists: Optional[List[Histogram]] = None,
                       ) -> List[Histogram]:
        if hists is None:
            hists = [store.get(node) for store in ex.stores]
        total = ps_push_histograms(hists, net=None)
        grad_view = total.grad_view()
        hess_view = total.hess_view()
        slices: List[Histogram] = []
        for features in ex.feature_ranges:
            piece = Histogram(max(features.size, 1), total.num_bins,
                              total.gradient_dim)
            if features.size:
                piece.grad[:] = grad_view[features].reshape(
                    piece.grad.shape)
                piece.hess[:] = hess_view[features].reshape(
                    piece.hess.shape)
            slices.append(piece)
        return slices


class _LocalElectionMixin:
    """Vertical split finding: every worker proposes a local best for its
    feature group and the global best is elected — no histogram ever
    crosses the wire (Section 2.2.1, Figure 4(b))."""

    def find_splits(self, ex, nodes, clock) -> Dict[int, SplitInfo]:
        splits: Dict[int, SplitInfo] = {}
        bins = ex._binned.bins_per_feature
        for node in nodes:
            best: Optional[SplitInfo] = None
            for worker, group in enumerate(ex.groups):
                if group.size == 0:
                    continue
                start = time.perf_counter()
                candidate = ex._decide_split(
                    ex.stores[worker].get(node), ex.stats[node],
                    ex.index.count_of(node), bins[group],
                )
                clock.charge(worker, time.perf_counter() - start,
                             phase="split-find")
                if candidate is not None:
                    candidate = SplitInfo(
                        feature=int(group[candidate.feature]),
                        bin=candidate.bin,
                        default_left=candidate.default_left,
                        gain=candidate.gain,
                    )
                    if candidate.better_than(best):
                        best = candidate
            if best is not None:
                splits[node] = best
        # one exchange covers every node of the layer
        exchange_split_infos(len(nodes), ex.cluster.num_workers, ex.net)
        return splits

    def _owner_splits(self, ex, tree, splits):
        """Record splits in the tree and group them by owning worker,
        with feature ids translated to shard-local ids — each owner then
        computes all of its placements in ONE pass over its shard
        (the Section 3.2.4 node-splitting bound)."""
        binned = ex._binned
        by_owner: Dict[int, Dict[int, SplitInfo]] = {}
        for node, split in sorted(splits.items()):
            tree.set_split(node, split,
                           binned.threshold_of(split.feature, split.bin))
            owner = int(ex.owner_of_feature[split.feature])
            local = SplitInfo(
                feature=int(ex.local_of_feature[split.feature]),
                bin=split.bin,
                default_left=split.default_left,
                gain=split.gain,
            )
            by_owner.setdefault(owner, {})[node] = local
        return by_owner


class BitmapBroadcastAggregation(_LocalElectionMixin,
                                 AggregationStrategy):
    """Local election + placement bitmap broadcast (QD3/QD4).

    Only the owner of a winning feature can compute the resulting
    instance placement; it broadcasts the decision as a one-bit-per-
    instance bitmap covering every split node of the layer
    (Section 4.2.2, at most ``ceil(N/8)`` bytes per node).
    """

    key = "bitmap-broadcast"

    recovery_policy = "rollback"

    def apply_splits(self, ex, tree, splits, grad, hess, active,
                     clock) -> None:
        by_owner = self._owner_splits(ex, tree, splits)
        codec = ex.codec.placement
        placements: Dict[int, np.ndarray] = {}
        payloads: Dict[int, object] = {}
        wire_bytes = 0
        raw_bytes = 0
        for owner, local_splits in by_owner.items():
            start = time.perf_counter()
            owner_placements = ex.storage.placements(
                ex, owner, ex.index, local_splits)
            for node, go_left in owner_placements.items():
                enc = codec.encode(go_left)
                payloads[node] = enc
                wire_bytes += enc.nbytes
                raw_bytes += enc.raw_nbytes
            clock.charge(owner, time.perf_counter() - start,
                         phase="node-split")
            placements.update(owner_placements)
        # one placement broadcast per layer (Section 3.1.3); the default
        # bitmap codec charges exactly ceil(N/8) per node, an adaptive
        # codec may beat it and accounts the saving as codec:<kind>
        broadcast_bytes(wire_bytes, ex.cluster.num_workers, ex.net,
                        kind="placement-bitmap", raw_nbytes=raw_bytes)
        start = time.perf_counter()
        for node in sorted(splits):
            decoded = codec.decode(payloads[node],
                                   placements[node].size)
            left, right = 2 * node + 1, 2 * node + 2
            ex.index.split_node(node, decoded, left, right)
        clock.charge_all(time.perf_counter() - start, phase="node-split")
        for node in sorted(splits):
            left, right = 2 * node + 1, 2 * node + 2
            ex.partition.compute_stats(ex, left, grad, hess, clock)
            ex.partition.compute_stats(ex, right, grad, hess, clock)
            active.discard(node)
            active.update((left, right))


class LocalApplyAggregation(_LocalElectionMixin, AggregationStrategy):
    """Local election, local node splitting everywhere (QD2-FP).

    Every worker owns all the data, so the owner's placement is
    recomputed locally on each replica; the computation is charged to
    all workers and no placement traffic hits the network (Appendix D).
    """

    key = "local"

    recovery_policy = "replicate"

    def apply_splits(self, ex, tree, splits, grad, hess, active,
                     clock) -> None:
        by_owner = self._owner_splits(ex, tree, splits)
        start = time.perf_counter()
        placements: Dict[int, np.ndarray] = {}
        for owner, local_splits in by_owner.items():
            placements.update(
                ex.storage.placements(ex, owner, ex.index, local_splits)
            )
        for node in sorted(splits):
            left, right = 2 * node + 1, 2 * node + 2
            ex.index.split_node(node, placements[node], left, right)
        clock.charge_all(time.perf_counter() - start, phase="node-split")
        for node in sorted(splits):
            left, right = 2 * node + 1, 2 * node + 2
            ex.partition.compute_stats(ex, left, grad, hess, clock)
            ex.partition.compute_stats(ex, right, grad, hess, clock)
            active.discard(node)
            active.update((left, right))


# ---------------------------------------------------------------------------
# Strategy registries (one singleton per key)
# ---------------------------------------------------------------------------

def _registry(*strategies) -> Dict[str, object]:
    return {s.key: s for s in (cls() for cls in strategies)}


PARTITIONS: Dict[str, PartitionStrategy] = _registry(
    HorizontalPartition, VerticalPartition, ReplicatedPartition,
)

STORAGES: Dict[str, StorageLayout] = _registry(
    RowStore, ColumnStore, BlockifiedRowStore,
)

INDEX_PLANS: Dict[str, IndexPlan] = _registry(
    InstanceToNodePlan, NodeToInstancePlan, HybridIndexPlan,
    ColumnwiseIndexPlan, TwoPhaseIndexPlan,
)

AGGREGATIONS: Dict[str, AggregationStrategy] = _registry(
    AllReduceAggregation, ReduceScatterAggregation,
    ParameterServerAggregation, BitmapBroadcastAggregation,
    LocalApplyAggregation,
)
