"""Deprecated location of :class:`Vero` (now in ``plans``)."""

from .plans import Vero, _deprecated_alias_module

_deprecated_alias_module(__name__)

__all__ = ["Vero"]
