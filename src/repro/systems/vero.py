"""QD4 — Vero: vertical partitioning + row-store (the paper's system).

Since the ExecutionPlan refactor this is a thin alias over the ``vero``
registry entry: vertical column groups kept as CSR rows of
``(group-local feature id, bin index)`` pairs, a node-to-instance index
with histogram subtraction, local best splits without any histogram
aggregation, and placement bitmap broadcast (Section 4.2).
``fit_from_raw`` (inherited from the executor) runs the full five-step
horizontal-to-vertical transformation first (Section 4.2.1).
"""

from __future__ import annotations

from ..config import ClusterConfig, TrainConfig
from .executor import PlanExecutor
from .plans import get_plan


class Vero(PlanExecutor):
    """Vertical + row-store distributed GBDT."""

    def __init__(self, config: TrainConfig,
                 cluster: ClusterConfig) -> None:
        super().__init__(config, cluster, get_plan("vero"))
