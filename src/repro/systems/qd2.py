"""QD2 — horizontal partitioning + row-store (LightGBM / DimBoost style).

Since the ExecutionPlan refactor these are thin aliases over the ``qd2``
and ``qd2-ps`` registry entries: horizontal partition, CSR row store and
a node-to-instance index with histogram subtraction, aggregated by
reduce-scatter (:class:`LightGBMStyle`) or a parameter-server push
(:class:`DimBoostStyle` — the DimBoost architecture [17]).
"""

from __future__ import annotations

from ..config import ClusterConfig, TrainConfig
from .executor import PlanExecutor
from .plans import get_plan


class LightGBMStyle(PlanExecutor):
    """Horizontal + row-store with reduce-scatter aggregation."""

    def __init__(self, config: TrainConfig,
                 cluster: ClusterConfig) -> None:
        super().__init__(config, cluster, get_plan("qd2"))


class DimBoostStyle(PlanExecutor):
    """QD2 with parameter-server aggregation (DimBoost architecture)."""

    def __init__(self, config: TrainConfig,
                 cluster: ClusterConfig) -> None:
        super().__init__(config, cluster, get_plan("qd2-ps"))
