"""Deprecated location of the QD2 aliases (now in ``plans``)."""

from .plans import DimBoostStyle, LightGBMStyle, _deprecated_alias_module

_deprecated_alias_module(__name__)

__all__ = ["LightGBMStyle", "DimBoostStyle"]
