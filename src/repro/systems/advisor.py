"""Data-management advisor — the paper's stated future work.

Section 6 closes with an open problem: *"How to determine an optimal
dataset management strategy given the size of dataset (e.g., number of
instances, feature dimensionality and number of classes) along with the
application environment (e.g., network bandwidth, number of machines,
number of cores) is remained unsolved."*

This module implements that decision procedure on top of the Section 3
cost model: it prices one tree under each quadrant — computation from the
access-count complexities of Section 3.2.4 against a calibratable scan
rate, communication from the byte formulas of Section 3.1.3 against the
network model — and recommends the cheapest, with per-quadrant breakdowns
so the choice is auditable.  The test suite validates the advisor's
ranking against the simulator on representative regimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import NetworkModel
from ..core.kernels import compute_factor
from .costmodel import (WorkloadShape, expected_recovery_seconds_per_tree,
                        horizontal_comm_bytes_per_tree,
                        horizontal_comm_bytes_per_tree_encoded,
                        migration_seconds, sizehist_bytes,
                        vertical_comm_bytes_per_tree)
from .plans import PLANS, ExecutionPlan, get_plan

#: key-value pair accesses per second of one worker core; the default is
#: calibratable via :func:`calibrate_scan_rate`
DEFAULT_SCAN_RATE = 5e7

QUADRANTS = ("QD1", "QD2", "QD3", "QD4")

_DESCRIPTIONS = {
    "QD1": "horizontal + column-store (XGBoost style)",
    "QD2": "horizontal + row-store (LightGBM/DimBoost style)",
    "QD3": "vertical + column-store (Yggdrasil style)",
    "QD4": "vertical + row-store (Vero)",
}

#: quadrant label -> canonical plan registry key
PLAN_OF_QUADRANT = {
    "QD1": "qd1",
    "QD2": "qd2",
    "QD3": "qd3",
    "QD4": "vero",
}


@dataclass(frozen=True)
class QuadrantEstimate:
    """Per-tree cost prediction of one quadrant."""

    quadrant: str
    comp_seconds: float
    comm_seconds: float
    histogram_memory_bytes: float
    #: expected crash-recovery cost per tree (0 on a fault-free cluster)
    recovery_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.comp_seconds + self.comm_seconds \
            + self.recovery_seconds

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self.quadrant]

    @property
    def plan_key(self) -> str:
        """Registry key of the quadrant's canonical execution plan."""
        return PLAN_OF_QUADRANT[self.quadrant]

    @property
    def plan(self) -> ExecutionPlan:
        """The quadrant's canonical execution plan."""
        return get_plan(self.plan_key)


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict: ranked quadrants plus the reasoning.

    The verdict is directly executable:
    ``recommendation.plan.build(config, cluster).fit(binned)`` trains
    with the recommended strategy composition.
    """

    best: QuadrantEstimate
    ranking: List[QuadrantEstimate]
    reasons: List[str]
    #: projected histogram-aggregation byte reduction per codec name
    #: (dense bytes / encoded bytes; > 1 means the codec saves wire)
    codec_projections: Dict[str, float] = field(default_factory=dict)

    @property
    def plan_key(self) -> str:
        """Registry key of the recommended plan (``repro train --plan``)."""
        return self.best.plan_key

    @property
    def plan(self) -> ExecutionPlan:
        """The recommended, ready-to-build execution plan."""
        return self.best.plan


def _access_counts(shape: WorkloadShape, avg_nnz: float) -> Dict[str, float]:
    """Stored-entry accesses per tree for each quadrant's kernel plan
    (Section 3.2.4), including histogram-subtraction savings."""
    layers = shape.num_layers - 1
    nnz = shape.num_instances * avg_nnz
    # with subtraction, layers below the root scan about half the data
    subtracted = nnz + (layers - 1) * nnz / 2 if layers > 1 else nnz
    full = layers * nnz
    per_column = max(nnz / max(shape.num_features, 1), 2.0)
    search_penalty = math.log2(per_column)
    return {
        # column + instance-to-node: full scan, no subtraction
        "QD1": full / shape.num_workers,
        # row + node-to-instance: subtraction
        "QD2": subtracted / shape.num_workers,
        # column + hybrid index: subtraction, but search/filter overhead
        "QD3": subtracted * search_penalty / shape.num_workers,
        "QD4": subtracted / shape.num_workers,
    }


def estimate(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    network: NetworkModel = None,
    scan_rate: float = DEFAULT_SCAN_RATE,
    crash_rate: float = 0.0,
    codec: str = "none",
    backend: str = "",
) -> Dict[str, QuadrantEstimate]:
    """Per-tree cost estimates of all four quadrants.

    ``crash_rate`` (expected worker crashes per tree) adds each
    quadrant's expected recovery cost: horizontal quadrants pay a
    reshard of the crashed worker's rows, vertical quadrants a rollback
    of shared placement state, both plus half a tree of replayed
    aggregation traffic (DESIGN.md §9).

    ``codec`` prices the horizontal quadrants' aggregation traffic with
    the encoded-byte formula at the workload's expected histogram
    density (the vertical quadrants' bitmap traffic is already minimal;
    the adaptive placement codec can only improve on it).

    ``backend`` scales the effective scan rate by the kernel backend's
    relative histogram throughput (numpy 1.0, numba the bench-pinned
    speedup) — a faster backend shrinks every quadrant's compute term,
    so network-bound and compute-bound verdicts can flip with it.
    """
    if avg_nnz_per_instance <= 0:
        raise ValueError("avg_nnz_per_instance must be > 0")
    if scan_rate <= 0:
        raise ValueError("scan_rate must be > 0")
    if network is None:
        network = NetworkModel()
    scan_rate = scan_rate * compute_factor(backend)
    accesses = _access_counts(shape, avg_nnz_per_instance)
    if codec == "none":
        horizontal_bytes = horizontal_comm_bytes_per_tree(shape)
    else:
        horizontal_bytes = horizontal_comm_bytes_per_tree_encoded(
            shape, avg_nnz_per_instance, codec)
    vertical_bytes = vertical_comm_bytes_per_tree(shape)
    bps = network.bytes_per_second
    layers = shape.num_layers - 1
    horizontal_comm = (
        horizontal_bytes / shape.num_workers / bps
        + layers * 2 * shape.num_workers * network.latency_s
    )
    vertical_comm = (
        vertical_bytes / shape.num_workers / bps
        + layers * 2 * network.latency_s
    )
    hist_mem_h = float(sizehist_bytes(shape)) * 2 ** (shape.num_layers - 2)
    hist_mem_v = hist_mem_h / shape.num_workers
    out = {}
    for quadrant in QUADRANTS:
        horizontal = quadrant in ("QD1", "QD2")
        out[quadrant] = QuadrantEstimate(
            quadrant=quadrant,
            comp_seconds=accesses[quadrant] / scan_rate,
            comm_seconds=horizontal_comm if horizontal else vertical_comm,
            histogram_memory_bytes=hist_mem_h if horizontal else
            hist_mem_v,
            recovery_seconds=expected_recovery_seconds_per_tree(
                shape, avg_nnz_per_instance, bps, crash_rate,
                vertical=not horizontal,
            ),
        )
    return out


def codec_projections(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    codecs: tuple = ("sparse", "f32", "f16"),
) -> Dict[str, float]:
    """Projected histogram-aggregation byte reduction per codec.

    Each entry is ``dense bytes / encoded bytes`` for one tree of
    horizontal aggregation at the workload's expected density profile.
    """
    dense = horizontal_comm_bytes_per_tree(shape)
    out: Dict[str, float] = {}
    for codec in codecs:
        encoded = horizontal_comm_bytes_per_tree_encoded(
            shape, avg_nnz_per_instance, codec)
        out[codec] = dense / encoded if encoded else float("inf")
    return out


def recommend(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    network: NetworkModel = None,
    memory_budget_bytes: float = None,
    scan_rate: float = DEFAULT_SCAN_RATE,
    crash_rate: float = 0.0,
    codec: str = "none",
    backend: str = "",
) -> Recommendation:
    """Pick the cheapest feasible quadrant for a workload.

    ``memory_budget_bytes`` (per worker, histograms only) disqualifies
    quadrants whose predicted histogram memory exceeds it — the paper's
    OOM scenario for horizontal partitioning on multi-class data.
    ``crash_rate`` folds an expected-recovery-cost term into the
    ranking, so an unreliable cluster can tip the verdict toward the
    quadrant with the cheaper recovery policy.  ``codec`` prices
    horizontal aggregation with the named codec's encoded bytes, so a
    sparse workload can tip the verdict back toward a horizontal
    quadrant; the returned :attr:`Recommendation.codec_projections`
    reports the projected byte reduction of every codec either way.
    """
    estimates = estimate(shape, avg_nnz_per_instance, network, scan_rate,
                         crash_rate=crash_rate, codec=codec,
                         backend=backend)
    reasons: List[str] = []
    feasible = []
    for est in estimates.values():
        if (memory_budget_bytes is not None
                and est.histogram_memory_bytes > memory_budget_bytes):
            reasons.append(
                f"{est.quadrant} excluded: predicted histogram memory "
                f"{est.histogram_memory_bytes / 2**30:.2f} GiB exceeds "
                f"the {memory_budget_bytes / 2**30:.2f} GiB budget"
            )
        else:
            feasible.append(est)
    if not feasible:
        raise ValueError(
            "no quadrant fits the memory budget; add workers or shrink "
            "the model (fewer layers/candidates)"
        )
    ranking = sorted(feasible, key=lambda e: e.total_seconds)
    best = ranking[0]
    reasons.append(
        f"{best.quadrant} ({best.description}) predicted cheapest: "
        f"{best.comp_seconds * 1e3:.1f} ms compute + "
        f"{best.comm_seconds * 1e3:.1f} ms network per tree"
    )
    if crash_rate > 0:
        reasons.append(
            f"expected recovery cost at {crash_rate:g} crashes/tree: "
            f"{best.recovery_seconds * 1e3:.1f} ms per tree "
            f"({best.quadrant} recovery policy)"
        )
    if len(ranking) > 1:
        runner = ranking[1]
        reasons.append(
            f"runner-up {runner.quadrant} at "
            f"{runner.total_seconds * 1e3:.1f} ms per tree"
        )
    projections = codec_projections(shape, avg_nnz_per_instance)
    best_codec = max(("sparse",), key=lambda c: projections[c])
    if projections[best_codec] > 1.05:
        reasons.append(
            f"lossless {best_codec} codec projects a "
            f"{projections[best_codec]:.1f}x histogram-aggregation byte "
            f"reduction at this density (train --codec {best_codec})"
        )
    if codec != "none":
        reasons.append(
            f"horizontal aggregation priced with the {codec!r} codec"
        )
    if backend and backend != "numpy":
        factor = compute_factor(backend)
        reasons.append(
            f"compute priced for the {backend!r} kernel backend "
            f"({factor:g}x the numpy scan rate)"
        )
    return Recommendation(best=best, ranking=ranking, reasons=reasons,
                          codec_projections=projections)


def calibrate_scan_rate(sample_seconds: float,
                        sample_accesses: float) -> float:
    """Scan rate from a measured probe (e.g. one tree of the oracle)."""
    if sample_seconds <= 0 or sample_accesses <= 0:
        raise ValueError("probe measurements must be > 0")
    return sample_accesses / sample_seconds


# ---------------------------------------------------------------------------
# Adaptive re-planning (DESIGN.md §13)
# ---------------------------------------------------------------------------

def _plan_comp_profile(plan: ExecutionPlan) -> str:
    """Which Section 3.2.4 access-count profile prices a plan's compute.

    Derived from the axes, not the registry key, so derived/custom plans
    price correctly: a full instance-to-node pass is the QD1 profile, a
    column store with a search-based index the QD3 profile; everything
    else builds from a row-major node-to-instance scan with subtraction
    (the QD2/QD4 profile — identical per-worker access counts).
    """
    if plan.index == "instance-to-node":
        return "QD1"
    if plan.storage == "column":
        return "QD3"
    return "QD2" if plan.partition in ("horizontal", "replicated") \
        else "QD4"


def plan_access_counts(shape: WorkloadShape,
                       avg_nnz_per_instance: float) -> Dict[str, float]:
    """Per-worker stored-entry accesses per tree, for every registry plan."""
    base = _access_counts(shape, avg_nnz_per_instance)
    return {key: base[_plan_comp_profile(plan)]
            for key, plan in PLANS.items()}


def plan_comm_seconds(
    shape: WorkloadShape,
    plan: ExecutionPlan,
    network: NetworkModel,
    avg_nnz_per_instance: float,
    codec: str = "none",
) -> float:
    """Predicted per-tree communication seconds of one plan.

    Horizontal aggregations pay the Section 3.1.3 histogram traffic
    (codec-priced when one is set); bitmap-broadcast plans pay the
    placement bitmaps; a ``local`` aggregation (feature-parallel) pays
    only the split-info election."""
    layers = shape.num_layers - 1
    bps = network.bytes_per_second
    if plan.aggregation in ("all-reduce", "reduce-scatter",
                            "parameter-server"):
        if codec == "none":
            nbytes = horizontal_comm_bytes_per_tree(shape)
        else:
            nbytes = horizontal_comm_bytes_per_tree_encoded(
                shape, avg_nnz_per_instance, codec)
        return (nbytes / shape.num_workers / bps
                + layers * 2 * shape.num_workers * network.latency_s)
    if plan.aggregation == "local":
        return layers * 2 * network.latency_s
    nbytes = vertical_comm_bytes_per_tree(shape)
    return (nbytes / shape.num_workers / bps
            + layers * 2 * network.latency_s)


@dataclass(frozen=True)
class CalibratedConstants:
    """Cost-model constants fitted to an observed ledger.

    ``scan_rate`` replaces :data:`DEFAULT_SCAN_RATE` (entry accesses per
    second actually achieved); ``comm_scale`` multiplies the predicted
    communication seconds (observed / predicted — >1 means the wire ran
    slower than the model, e.g. retries or contention).  By construction
    the current plan's recalibrated per-tree cost reproduces the
    observed ledger means exactly.
    """

    scan_rate: float
    comm_scale: float
    trees_observed: int
    prior_scan_rate: float = DEFAULT_SCAN_RATE


@dataclass(frozen=True)
class PlanCost:
    """Per-tree cost of one registry plan under some constants."""

    plan_key: str
    comp_seconds: float
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.comp_seconds + self.comm_seconds


def calibrate_constants(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    plan: ExecutionPlan,
    reports: Sequence,
    network: NetworkModel,
    codec: str = "none",
    prior_scan_rate: float = DEFAULT_SCAN_RATE,
) -> CalibratedConstants:
    """Fit the per-phase constants to observed per-tree reports.

    ``reports`` are :class:`~repro.systems.base.TreeReport` records of
    trees trained under ``plan``.  Inverts the advisor's own formulas:
    the plan's predicted access count over the observed mean compute
    seconds gives the scan rate, and the observed over predicted
    communication seconds gives the wire scale.
    """
    if not reports:
        raise ValueError("calibration needs at least one observed tree")
    comp_obs = sum(r.comp_seconds for r in reports) / len(reports)
    comm_obs = sum(r.comm_seconds for r in reports) / len(reports)
    accesses = plan_access_counts(shape, avg_nnz_per_instance).get(
        plan.key)
    if accesses is None:
        accesses = _access_counts(
            shape, avg_nnz_per_instance)[_plan_comp_profile(plan)]
    scan_rate = accesses / comp_obs if comp_obs > 0 else prior_scan_rate
    comm_pred = plan_comm_seconds(shape, plan, network,
                                  avg_nnz_per_instance, codec)
    comm_scale = comm_obs / comm_pred if comm_pred > 0 else 1.0
    return CalibratedConstants(
        scan_rate=scan_rate, comm_scale=comm_scale,
        trees_observed=len(reports), prior_scan_rate=prior_scan_rate,
    )


def price_plans(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    network: NetworkModel,
    constants: Optional[CalibratedConstants] = None,
    codec: str = "none",
) -> Dict[str, PlanCost]:
    """Per-tree cost of every registry plan under the given constants
    (the prior cost model when ``constants`` is ``None``)."""
    scan_rate = constants.scan_rate if constants else DEFAULT_SCAN_RATE
    comm_scale = constants.comm_scale if constants else 1.0
    accesses = plan_access_counts(shape, avg_nnz_per_instance)
    out: Dict[str, PlanCost] = {}
    for key, plan in PLANS.items():
        out[key] = PlanCost(
            plan_key=key,
            comp_seconds=accesses[key] / scan_rate,
            comm_seconds=comm_scale * plan_comm_seconds(
                shape, plan, network, avg_nnz_per_instance, codec),
        )
    return out


@dataclass(frozen=True)
class AdaptDecision:
    """One adaptive re-planning verdict, with its full inputs.

    Recorded on :attr:`DistTrainResult.decisions` whether or not the
    session migrated, and (for migrations) broadcast to the workers as
    the ``migrate:decision`` ledger payload — so ``repro ledger`` can
    show why every plan change happened.
    """

    tree_index: int
    current_plan: str
    target_plan: str
    migrate: bool
    reason: str
    scan_rate: float
    comm_scale: float
    trees_observed: int
    trees_remaining: int
    current_cost_per_tree: float
    target_cost_per_tree: float
    projected_savings_seconds: float
    migration_seconds: float
    plan_costs: Dict[str, float] = field(default_factory=dict)

    def payload(self) -> dict:
        """JSON-ready decision inputs (the ``migrate:decision`` bytes)."""
        return {
            "tree": self.tree_index,
            "source": self.current_plan,
            "target": self.target_plan,
            "migrate": self.migrate,
            "reason": self.reason,
            "scan_rate": round(self.scan_rate, 3),
            "comm_scale": round(self.comm_scale, 6),
            "trees_observed": self.trees_observed,
            "trees_remaining": self.trees_remaining,
            "current_cost_per_tree": round(self.current_cost_per_tree, 9),
            "target_cost_per_tree": round(self.target_cost_per_tree, 9),
            "projected_savings_seconds": round(
                self.projected_savings_seconds, 9),
            "migration_seconds": round(self.migration_seconds, 9),
        }


class AdaptivePolicy:
    """Mid-run re-planning: recalibrate, re-price, switch when it pays.

    Every ``every`` trees the policy fits :class:`CalibratedConstants`
    to the trees observed since the last migration, re-prices all
    registry plans plus the migration bill, and tells the session to
    migrate when the projected savings over the remaining trees exceed
    that bill by ``margin``.  Attached to a
    :class:`~repro.systems.executor.TrainingSession` via its ``policy``
    argument (the ``--plan auto-adapt`` path).

    ``candidates`` restricts which registry plans the policy may migrate
    to (the current plan is always eligible to keep).  The default
    considers every plan; pass a whitelist to e.g. keep replicated
    plans — priced cheap on the wire but costing ``W`` full data copies
    the pricing does not see — off the table.
    """

    def __init__(
        self,
        shape: WorkloadShape,
        avg_nnz_per_instance: float,
        network: NetworkModel,
        every: int = 4,
        min_observed: int = 1,
        margin: float = 1.0,
        codec: str = "none",
        candidates: Optional[Sequence[str]] = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if margin <= 0:
            raise ValueError(f"margin must be > 0, got {margin}")
        self.shape = shape
        self.avg_nnz = avg_nnz_per_instance
        self.network = network
        self.every = every
        self.min_observed = max(min_observed, 1)
        self.margin = margin
        self.codec = codec
        if candidates is not None:
            unknown = sorted(set(candidates) - set(PLANS))
            if unknown:
                raise KeyError(f"unknown candidate plans: {unknown}")
            candidates = tuple(candidates)
        self.candidates = candidates
        #: report index where the current plan's observations begin
        self._observe_from = 0

    def consider(self, session) -> Optional[AdaptDecision]:
        """The session's tree-boundary hook; ``None`` means keep going."""
        t = session.state.tree_index
        if t % self.every != 0:
            return None
        plan = getattr(session.system, "plan", None)
        if plan is None:
            return None
        reports = session.result.tree_reports[self._observe_from:]
        if len(reports) < self.min_observed:
            return None
        constants = calibrate_constants(
            self.shape, self.avg_nnz, plan, reports, self.network,
            codec=self.codec)
        costs = price_plans(self.shape, self.avg_nnz, self.network,
                            constants, codec=self.codec)
        current = costs[plan.key]
        eligible = [
            cost for key, cost in costs.items()
            if key == plan.key or self.candidates is None
            or key in self.candidates
        ]
        best = min(eligible, key=lambda c: c.total_seconds)
        remaining = session.num_trees - t
        savings = (current.total_seconds - best.total_seconds) * remaining
        bill = migration_seconds(
            self.shape, self.avg_nnz,
            plan.partition, PLANS[best.plan_key].partition,
            self.network.bytes_per_second,
            latency_s=self.network.latency_s,
        )
        should = (best.plan_key != plan.key
                  and savings > bill * self.margin)
        if should:
            reason = (
                f"{best.plan_key} saves "
                f"{(current.total_seconds - best.total_seconds) * 1e3:.1f}"
                f" ms/tree x {remaining} trees > migration bill "
                f"{bill * 1e3:.1f} ms"
            )
            self._observe_from = len(session.result.tree_reports)
        elif best.plan_key == plan.key:
            reason = f"{plan.key} remains the cheapest plan"
        else:
            reason = (
                f"projected savings {savings * 1e3:.1f} ms do not cover "
                f"the {bill * 1e3:.1f} ms migration bill"
            )
        return AdaptDecision(
            tree_index=t,
            current_plan=plan.key,
            target_plan=best.plan_key,
            migrate=should,
            reason=reason,
            scan_rate=constants.scan_rate,
            comm_scale=constants.comm_scale,
            trees_observed=constants.trees_observed,
            trees_remaining=remaining,
            current_cost_per_tree=current.total_seconds,
            target_cost_per_tree=costs[best.plan_key].total_seconds,
            projected_savings_seconds=savings,
            migration_seconds=bill,
            plan_costs={k: c.total_seconds for k, c in costs.items()},
        )
