"""Data-management advisor — the paper's stated future work.

Section 6 closes with an open problem: *"How to determine an optimal
dataset management strategy given the size of dataset (e.g., number of
instances, feature dimensionality and number of classes) along with the
application environment (e.g., network bandwidth, number of machines,
number of cores) is remained unsolved."*

This module implements that decision procedure on top of the Section 3
cost model: it prices one tree under each quadrant — computation from the
access-count complexities of Section 3.2.4 against a calibratable scan
rate, communication from the byte formulas of Section 3.1.3 against the
network model — and recommends the cheapest, with per-quadrant breakdowns
so the choice is auditable.  The test suite validates the advisor's
ranking against the simulator on representative regimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..config import NetworkModel
from ..core.kernels import compute_factor
from .costmodel import (WorkloadShape, expected_recovery_seconds_per_tree,
                        horizontal_comm_bytes_per_tree,
                        horizontal_comm_bytes_per_tree_encoded,
                        sizehist_bytes, vertical_comm_bytes_per_tree)
from .plans import ExecutionPlan, get_plan

#: key-value pair accesses per second of one worker core; the default is
#: calibratable via :func:`calibrate_scan_rate`
DEFAULT_SCAN_RATE = 5e7

QUADRANTS = ("QD1", "QD2", "QD3", "QD4")

_DESCRIPTIONS = {
    "QD1": "horizontal + column-store (XGBoost style)",
    "QD2": "horizontal + row-store (LightGBM/DimBoost style)",
    "QD3": "vertical + column-store (Yggdrasil style)",
    "QD4": "vertical + row-store (Vero)",
}

#: quadrant label -> canonical plan registry key
PLAN_OF_QUADRANT = {
    "QD1": "qd1",
    "QD2": "qd2",
    "QD3": "qd3",
    "QD4": "vero",
}


@dataclass(frozen=True)
class QuadrantEstimate:
    """Per-tree cost prediction of one quadrant."""

    quadrant: str
    comp_seconds: float
    comm_seconds: float
    histogram_memory_bytes: float
    #: expected crash-recovery cost per tree (0 on a fault-free cluster)
    recovery_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.comp_seconds + self.comm_seconds \
            + self.recovery_seconds

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self.quadrant]

    @property
    def plan_key(self) -> str:
        """Registry key of the quadrant's canonical execution plan."""
        return PLAN_OF_QUADRANT[self.quadrant]

    @property
    def plan(self) -> ExecutionPlan:
        """The quadrant's canonical execution plan."""
        return get_plan(self.plan_key)


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict: ranked quadrants plus the reasoning.

    The verdict is directly executable:
    ``recommendation.plan.build(config, cluster).fit(binned)`` trains
    with the recommended strategy composition.
    """

    best: QuadrantEstimate
    ranking: List[QuadrantEstimate]
    reasons: List[str]
    #: projected histogram-aggregation byte reduction per codec name
    #: (dense bytes / encoded bytes; > 1 means the codec saves wire)
    codec_projections: Dict[str, float] = field(default_factory=dict)

    @property
    def plan_key(self) -> str:
        """Registry key of the recommended plan (``repro train --plan``)."""
        return self.best.plan_key

    @property
    def plan(self) -> ExecutionPlan:
        """The recommended, ready-to-build execution plan."""
        return self.best.plan


def _access_counts(shape: WorkloadShape, avg_nnz: float) -> Dict[str, float]:
    """Stored-entry accesses per tree for each quadrant's kernel plan
    (Section 3.2.4), including histogram-subtraction savings."""
    layers = shape.num_layers - 1
    nnz = shape.num_instances * avg_nnz
    # with subtraction, layers below the root scan about half the data
    subtracted = nnz + (layers - 1) * nnz / 2 if layers > 1 else nnz
    full = layers * nnz
    per_column = max(nnz / max(shape.num_features, 1), 2.0)
    search_penalty = math.log2(per_column)
    return {
        # column + instance-to-node: full scan, no subtraction
        "QD1": full / shape.num_workers,
        # row + node-to-instance: subtraction
        "QD2": subtracted / shape.num_workers,
        # column + hybrid index: subtraction, but search/filter overhead
        "QD3": subtracted * search_penalty / shape.num_workers,
        "QD4": subtracted / shape.num_workers,
    }


def estimate(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    network: NetworkModel = None,
    scan_rate: float = DEFAULT_SCAN_RATE,
    crash_rate: float = 0.0,
    codec: str = "none",
    backend: str = "",
) -> Dict[str, QuadrantEstimate]:
    """Per-tree cost estimates of all four quadrants.

    ``crash_rate`` (expected worker crashes per tree) adds each
    quadrant's expected recovery cost: horizontal quadrants pay a
    reshard of the crashed worker's rows, vertical quadrants a rollback
    of shared placement state, both plus half a tree of replayed
    aggregation traffic (DESIGN.md §9).

    ``codec`` prices the horizontal quadrants' aggregation traffic with
    the encoded-byte formula at the workload's expected histogram
    density (the vertical quadrants' bitmap traffic is already minimal;
    the adaptive placement codec can only improve on it).

    ``backend`` scales the effective scan rate by the kernel backend's
    relative histogram throughput (numpy 1.0, numba the bench-pinned
    speedup) — a faster backend shrinks every quadrant's compute term,
    so network-bound and compute-bound verdicts can flip with it.
    """
    if avg_nnz_per_instance <= 0:
        raise ValueError("avg_nnz_per_instance must be > 0")
    if scan_rate <= 0:
        raise ValueError("scan_rate must be > 0")
    if network is None:
        network = NetworkModel()
    scan_rate = scan_rate * compute_factor(backend)
    accesses = _access_counts(shape, avg_nnz_per_instance)
    if codec == "none":
        horizontal_bytes = horizontal_comm_bytes_per_tree(shape)
    else:
        horizontal_bytes = horizontal_comm_bytes_per_tree_encoded(
            shape, avg_nnz_per_instance, codec)
    vertical_bytes = vertical_comm_bytes_per_tree(shape)
    bps = network.bytes_per_second
    layers = shape.num_layers - 1
    horizontal_comm = (
        horizontal_bytes / shape.num_workers / bps
        + layers * 2 * shape.num_workers * network.latency_s
    )
    vertical_comm = (
        vertical_bytes / shape.num_workers / bps
        + layers * 2 * network.latency_s
    )
    hist_mem_h = float(sizehist_bytes(shape)) * 2 ** (shape.num_layers - 2)
    hist_mem_v = hist_mem_h / shape.num_workers
    out = {}
    for quadrant in QUADRANTS:
        horizontal = quadrant in ("QD1", "QD2")
        out[quadrant] = QuadrantEstimate(
            quadrant=quadrant,
            comp_seconds=accesses[quadrant] / scan_rate,
            comm_seconds=horizontal_comm if horizontal else vertical_comm,
            histogram_memory_bytes=hist_mem_h if horizontal else
            hist_mem_v,
            recovery_seconds=expected_recovery_seconds_per_tree(
                shape, avg_nnz_per_instance, bps, crash_rate,
                vertical=not horizontal,
            ),
        )
    return out


def codec_projections(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    codecs: tuple = ("sparse", "f32", "f16"),
) -> Dict[str, float]:
    """Projected histogram-aggregation byte reduction per codec.

    Each entry is ``dense bytes / encoded bytes`` for one tree of
    horizontal aggregation at the workload's expected density profile.
    """
    dense = horizontal_comm_bytes_per_tree(shape)
    out: Dict[str, float] = {}
    for codec in codecs:
        encoded = horizontal_comm_bytes_per_tree_encoded(
            shape, avg_nnz_per_instance, codec)
        out[codec] = dense / encoded if encoded else float("inf")
    return out


def recommend(
    shape: WorkloadShape,
    avg_nnz_per_instance: float,
    network: NetworkModel = None,
    memory_budget_bytes: float = None,
    scan_rate: float = DEFAULT_SCAN_RATE,
    crash_rate: float = 0.0,
    codec: str = "none",
    backend: str = "",
) -> Recommendation:
    """Pick the cheapest feasible quadrant for a workload.

    ``memory_budget_bytes`` (per worker, histograms only) disqualifies
    quadrants whose predicted histogram memory exceeds it — the paper's
    OOM scenario for horizontal partitioning on multi-class data.
    ``crash_rate`` folds an expected-recovery-cost term into the
    ranking, so an unreliable cluster can tip the verdict toward the
    quadrant with the cheaper recovery policy.  ``codec`` prices
    horizontal aggregation with the named codec's encoded bytes, so a
    sparse workload can tip the verdict back toward a horizontal
    quadrant; the returned :attr:`Recommendation.codec_projections`
    reports the projected byte reduction of every codec either way.
    """
    estimates = estimate(shape, avg_nnz_per_instance, network, scan_rate,
                         crash_rate=crash_rate, codec=codec,
                         backend=backend)
    reasons: List[str] = []
    feasible = []
    for est in estimates.values():
        if (memory_budget_bytes is not None
                and est.histogram_memory_bytes > memory_budget_bytes):
            reasons.append(
                f"{est.quadrant} excluded: predicted histogram memory "
                f"{est.histogram_memory_bytes / 2**30:.2f} GiB exceeds "
                f"the {memory_budget_bytes / 2**30:.2f} GiB budget"
            )
        else:
            feasible.append(est)
    if not feasible:
        raise ValueError(
            "no quadrant fits the memory budget; add workers or shrink "
            "the model (fewer layers/candidates)"
        )
    ranking = sorted(feasible, key=lambda e: e.total_seconds)
    best = ranking[0]
    reasons.append(
        f"{best.quadrant} ({best.description}) predicted cheapest: "
        f"{best.comp_seconds * 1e3:.1f} ms compute + "
        f"{best.comm_seconds * 1e3:.1f} ms network per tree"
    )
    if crash_rate > 0:
        reasons.append(
            f"expected recovery cost at {crash_rate:g} crashes/tree: "
            f"{best.recovery_seconds * 1e3:.1f} ms per tree "
            f"({best.quadrant} recovery policy)"
        )
    if len(ranking) > 1:
        runner = ranking[1]
        reasons.append(
            f"runner-up {runner.quadrant} at "
            f"{runner.total_seconds * 1e3:.1f} ms per tree"
        )
    projections = codec_projections(shape, avg_nnz_per_instance)
    best_codec = max(("sparse",), key=lambda c: projections[c])
    if projections[best_codec] > 1.05:
        reasons.append(
            f"lossless {best_codec} codec projects a "
            f"{projections[best_codec]:.1f}x histogram-aggregation byte "
            f"reduction at this density (train --codec {best_codec})"
        )
    if codec != "none":
        reasons.append(
            f"horizontal aggregation priced with the {codec!r} codec"
        )
    if backend and backend != "numpy":
        factor = compute_factor(backend)
        reasons.append(
            f"compute priced for the {backend!r} kernel backend "
            f"({factor:g}x the numpy scan rate)"
        )
    return Recommendation(best=best, ranking=ranking, reasons=reasons,
                          codec_projections=projections)


def calibrate_scan_rate(sample_seconds: float,
                        sample_accesses: float) -> float:
    """Scan rate from a measured probe (e.g. one tree of the oracle)."""
    if sample_seconds <= 0 or sample_accesses <= 0:
        raise ValueError("probe measurements must be > 0")
    return sample_accesses / sample_seconds
