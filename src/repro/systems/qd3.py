"""QD3 — vertical partitioning + column-store (Yggdrasil style).

Since the ExecutionPlan refactor this is a thin alias over two registry
entries, selected by ``index_mode``:

* ``"hybrid"`` (default, plan ``qd3``) — the paper's own QD3
  implementation (Section 5.2.2): per column, choose linear scan with
  instance-to-node lookups or binary search of the node's instances,
  whichever is cheaper.
* ``"columnwise"`` (plan ``qd3-pure``) — pure Yggdrasil: a column-wise
  node-to-instance index gives free per-node slices but costs an
  ``O(nnz)`` reorder of every column at each layer split (Appendix C
  compares the two).
"""

from __future__ import annotations

from ..config import ClusterConfig, TrainConfig
from .executor import PlanExecutor
from .plans import get_plan


class YggdrasilStyle(PlanExecutor):
    """Vertical + column-store."""

    def __init__(self, config: TrainConfig, cluster: ClusterConfig,
                 index_mode: str = "hybrid") -> None:
        if index_mode not in ("hybrid", "columnwise"):
            raise ValueError(f"unknown index_mode: {index_mode!r}")
        plan = get_plan("qd3" if index_mode == "hybrid" else "qd3-pure")
        super().__init__(config, cluster, plan)
        self.index_mode = index_mode
