"""Deprecated location of :class:`YggdrasilStyle` (now in ``plans``)."""

from .plans import YggdrasilStyle, _deprecated_alias_module

_deprecated_alias_module(__name__)

__all__ = ["YggdrasilStyle"]
