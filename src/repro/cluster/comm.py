"""Communication collectives with exact cost accounting.

Each helper physically performs the data movement (in process) and charges
the :class:`~repro.cluster.network.SimulatedNetwork` with the bytes and the
simulated wall time of the collective, using the standard cost
decompositions [36 in the paper]:

* **ring all-reduce** — every worker sends ``2 * (W-1)/W * size`` bytes;
  elapsed time is that amount over the per-link bandwidth.  Used by QD1
  (XGBoost-style histogram aggregation).
* **reduce-scatter** — every worker sends ``(W-1)/W * size`` bytes and ends
  up owning one shard of the reduction.  Used by QD2 (LightGBM-style).
* **parameter-server push** — every worker pushes its full payload, sharded
  across ``W`` servers in parallel; the per-server receive bottleneck is
  ``size / W * W = size`` bytes per round but spread over ``W`` links, so
  elapsed time is ``size / W`` over one link times the congestion factor 1.
  Used by the DimBoost flavour of QD2.
* **broadcast / gather** — flat-tree models for the small split metadata
  and the instance-placement bitmaps of the vertical quadrants.

All byte counts use the paper's conventions: 8-byte doubles for histogram
bins, bitmap placements at one bit per instance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.histogram import Histogram
from .network import SimulatedNetwork

#: serialized size of one SplitInfo (feature id, bin, default flag, gain)
SPLIT_INFO_BYTES = 4 + 4 + 1 + 8


class Collective:
    """Cost decomposition of one collective pattern [36].

    A pattern knows how many payload bytes each worker puts on the wire
    and how many latency rounds the collective takes; the simulated wall
    time follows from the network model.  The registered patterns back
    :func:`record_collective`, which the aggregation strategies of
    :mod:`repro.systems.strategies` use to charge a layer's histogram
    traffic in a single batched operation.
    """

    pattern: str = "abstract"

    def per_worker_bytes(self, payload_bytes: int,
                         num_workers: int) -> float:
        """Bytes each worker sends for ``payload_bytes`` of payload."""
        raise NotImplementedError

    def latency_rounds(self, num_workers: int) -> int:
        """Sequential message rounds (each paying one latency)."""
        raise NotImplementedError

    def seconds(self, payload_bytes: int, num_workers: int,
                model) -> float:
        return (
            self.per_worker_bytes(payload_bytes, num_workers)
            / model.bytes_per_second
            + self.latency_rounds(num_workers) * model.latency_s
        )


class RingAllReduce(Collective):
    """Ring all-reduce: each worker sends ``2 (W-1)/W`` of the payload
    and every worker ends up with the full reduction (QD1)."""

    pattern = "allreduce"

    def per_worker_bytes(self, payload_bytes, num_workers):
        return 2 * (num_workers - 1) / num_workers * payload_bytes

    def latency_rounds(self, num_workers):
        return 2 * (num_workers - 1)


class RingReduceScatter(Collective):
    """Ring reduce-scatter: the all-reduce's first half — ``(W-1)/W`` of
    the payload per worker, each owning one shard of the result (QD2)."""

    pattern = "reducescatter"

    def per_worker_bytes(self, payload_bytes, num_workers):
        return (num_workers - 1) / num_workers * payload_bytes

    def latency_rounds(self, num_workers):
        return num_workers - 1


class ParameterServerPush(Collective):
    """Parameter-server push: the full payload per worker, range-sharded
    over ``W`` servers in parallel (the DimBoost flavour of QD2)."""

    pattern = "ps"

    def per_worker_bytes(self, payload_bytes, num_workers):
        return payload_bytes

    def latency_rounds(self, num_workers):
        return num_workers


#: registered collective cost models, by pattern name
COLLECTIVES = {
    coll.pattern: coll
    for coll in (RingAllReduce(), RingReduceScatter(),
                 ParameterServerPush())
}


def record_collective(
    net: SimulatedNetwork,
    kind: str,
    payload_bytes: int,
    num_workers: int,
    pattern: str,
    encoded_worker_bytes: Optional[Sequence[int]] = None,
) -> float:
    """Charge one collective operation over ``payload_bytes`` of payload.

    Real systems batch all histograms of a tree layer into a single
    collective, so latency is paid once per layer, not once per node —
    callers accumulate a layer's payload and charge it here.  ``pattern``
    names a :data:`COLLECTIVES` cost model (``allreduce``,
    ``reducescatter`` or ``ps``).

    When a codec compressed the payload, ``encoded_worker_bytes`` gives
    each worker's encoded size for the same logical payload.  Worker
    ``w`` then puts ``per_worker_bytes(e_w, W)`` on the wire, elapsed
    time follows the *largest* encoded payload (a collective finishes
    with its slowest participant), and ``payload_bytes`` — the dense
    baseline — is accounted as the operation's raw size so the
    ``codec:`` ledger dimension can report the saving.  Without it the
    accounting is byte- and float-identical to the pre-codec ledger.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    collective = COLLECTIVES.get(pattern)
    if collective is None:
        raise ValueError(f"unknown collective pattern: {pattern!r}")
    if num_workers == 1 or payload_bytes == 0:
        return 0.0
    per_worker = collective.per_worker_bytes(payload_bytes, num_workers)
    if encoded_worker_bytes is None:
        seconds = collective.seconds(payload_bytes, num_workers,
                                     net.model)
        net.record(kind, int(per_worker * num_workers), seconds)
        return seconds
    if len(encoded_worker_bytes) != num_workers:
        raise ValueError(
            f"need one encoded size per worker: got "
            f"{len(encoded_worker_bytes)} for {num_workers} workers"
        )
    wire = int(sum(
        collective.per_worker_bytes(enc, num_workers)
        for enc in encoded_worker_bytes
    ))
    raw = int(per_worker * num_workers)
    seconds = collective.seconds(max(encoded_worker_bytes),
                                 num_workers, net.model)
    net.record(kind, wire, seconds, raw_nbytes=max(raw, wire))
    return seconds


def allreduce_histograms(
    hists: Sequence[Histogram], net: Optional[SimulatedNetwork],
    kind: str = "allreduce-hist",
) -> Histogram:
    """Element-wise sum of per-worker histograms, result on every worker.

    Pass ``net=None`` to perform only the data movement and charge the
    traffic separately (layer batching via :func:`record_collective`).
    """
    if not hists:
        raise ValueError("allreduce requires at least one histogram")
    result = hists[0].copy()
    for hist in hists[1:]:
        result.add_inplace(hist)
    if net is not None:
        record_collective(net, kind, result.nbytes, len(hists),
                          "allreduce")
    return result


def reduce_scatter_histograms(
    hists: Sequence[Histogram],
    feature_shards: Sequence[np.ndarray],
    net: Optional[SimulatedNetwork],
    kind: str = "reducescatter-hist",
) -> List[Histogram]:
    """Sum per-worker histograms; worker ``w`` receives the features in
    ``feature_shards[w]`` of the sum (renumbered from 0).

    Pass ``net=None`` to charge the traffic separately (layer batching).
    """
    if not hists:
        raise ValueError("reduce-scatter requires at least one histogram")
    total = hists[0].copy()
    for hist in hists[1:]:
        total.add_inplace(hist)
    if net is not None:
        record_collective(net, kind, total.nbytes, len(hists),
                          "reducescatter")
    grad_view = total.grad_view()
    hess_view = total.hess_view()
    shards: List[Histogram] = []
    for features in feature_shards:
        features = np.asarray(features, dtype=np.int64)
        piece = Histogram(max(features.size, 1), total.num_bins,
                          total.gradient_dim)
        if features.size:
            piece.grad[:] = grad_view[features].reshape(piece.grad.shape)
            piece.hess[:] = hess_view[features].reshape(piece.hess.shape)
        shards.append(piece)
    return shards


def ps_push_histograms(
    hists: Sequence[Histogram], net: Optional[SimulatedNetwork],
    kind: str = "ps-push-hist",
) -> Histogram:
    """Parameter-server aggregation (DimBoost flavour).

    Pass ``net=None`` to charge the traffic separately (layer batching).
    """
    if not hists:
        raise ValueError("ps push requires at least one histogram")
    result = hists[0].copy()
    for hist in hists[1:]:
        result.add_inplace(hist)
    if net is not None:
        record_collective(net, kind, result.nbytes, len(hists), "ps")
    return result


def broadcast_bytes(
    nbytes: int, num_workers: int, net: SimulatedNetwork,
    kind: str = "broadcast",
    raw_nbytes: Optional[int] = None,
) -> float:
    """Flat-tree broadcast from one owner to the other ``W - 1`` workers.

    ``raw_nbytes`` is the per-receiver dense baseline when ``nbytes``
    is an encoded payload (see ``SimulatedNetwork.record``).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    receivers = num_workers - 1
    if receivers == 0 or nbytes == 0:
        return 0.0
    seconds = (
        receivers * nbytes / net.model.bytes_per_second
        + net.model.latency_s
    )
    net.record(kind, receivers * nbytes, seconds,
               None if raw_nbytes is None else receivers * raw_nbytes)
    return seconds


def gather_bytes(
    nbytes_each: int, num_workers: int, net: SimulatedNetwork,
    kind: str = "gather",
) -> float:
    """Master gathers ``nbytes_each`` from every other worker."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    senders = num_workers - 1
    if senders == 0 or nbytes_each == 0:
        return 0.0
    seconds = (
        senders * nbytes_each / net.model.bytes_per_second
        + net.model.latency_s
    )
    net.record(kind, senders * nbytes_each, seconds)
    return seconds


def exchange_split_infos(
    num_candidates: int, num_workers: int, net: SimulatedNetwork,
    kind: str = "split-exchange",
) -> float:
    """Account the exchange of ``num_candidates`` local best splits."""
    nbytes = num_candidates * SPLIT_INFO_BYTES
    if num_workers <= 1 or nbytes == 0:
        return 0.0
    seconds = (
        nbytes * (num_workers - 1) / net.model.bytes_per_second
        + net.model.latency_s
    )
    net.record(kind, nbytes * (num_workers - 1), seconds)
    return seconds
