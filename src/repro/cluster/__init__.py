"""Distributed-cluster simulation: network, collectives, partitioning,
the horizontal-to-vertical transformation, blocks and bitmaps."""
