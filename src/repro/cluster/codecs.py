"""Wire-format codecs for every byte on the simulated network.

The simulator converts accounted bytes directly into simulated seconds,
so shrinking payloads is a first-class, measurable speedup — the
block-distributed GBDT argument (Vasiloudis et al., arXiv:1904.10522):
on sparse datasets most histogram bins are empty, and shipping
``(index, value)`` pairs instead of the dense buffer cuts aggregation
traffic by an order of magnitude.  DimBoost ships low-precision
histograms for a further 2-4x at bounded accuracy cost.

This module packages both ideas (plus varint/delta integer packing and
the packed-bitmap placements of :mod:`repro.cluster.bitmap`) behind one
:class:`CodecStack` that the aggregation strategies negotiate per payload
kind.  Encoding and decoding run as real numpy kernels and are measured
on the worker clock, so the compute-vs-comm trade-off the paper discusses
in Section 3 is actually paid, not assumed.

Lossless stacks (``none``, ``sparse``, ``delta``) preserve the repo's
bit-identical-model invariant: ``decode(encode(x))`` reproduces ``x``
exactly (same floats, same dtypes), so trained models match the dense
baseline bit for bit.  Lossy stacks (``f32``, ``f16``) quantize histogram
values and are opt-in only — convergence validation lives in the codec
test suite and the Figure 11 harness.

Density cutoff
--------------
A sparse histogram entry costs ``4 + 16 * C`` bytes (int32 slot index
plus one float64 grad and hess per class) against ``16 * C`` dense bytes
per slot, so sparse encoding wins exactly when the occupied-slot density
is below ``16 C / (4 + 16 C)`` (0.8 for binary, ~0.98 for wide
multiclass).  :class:`SparseHistogramCodec` measures the density of each
payload and falls back to the dense layout above the cutoff, so its
output is never larger than the dense baseline (plus one scheme byte).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.histogram import Histogram
from .bitmap import bitmap_nbytes, decode_placement, encode_placement

#: per-entry cost of the sparse histogram layout: int32 slot index plus
#: one float64 grad and one float64 hess per gradient dimension
SPARSE_INDEX_BYTES = 4
#: fixed header of an encoded histogram payload (shape + entry count)
HISTOGRAM_HEADER_BYTES = 16
#: one scheme byte disambiguates sparse vs dense placement payloads
PLACEMENT_SCHEME_BYTES = 1


def sparse_entry_bytes(gradient_dim: int) -> int:
    """Wire bytes of one occupied slot in the sparse layout."""
    return SPARSE_INDEX_BYTES + 2 * 8 * gradient_dim


def sparse_cutoff_density(gradient_dim: int) -> float:
    """Density above which the sparse layout stops paying for itself:
    ``16 C / (4 + 16 C)`` (the docstring's cutoff math)."""
    dense_slot = 2 * 8 * gradient_dim
    return dense_slot / sparse_entry_bytes(gradient_dim)


@dataclass(frozen=True)
class Encoded:
    """One encoded payload: wire size, dense baseline, decode inputs.

    ``payload`` is codec-private decode state (numpy arrays — the *real*
    encoded representation, not just a byte count); ``nbytes`` is what
    the simulated network charges and ``raw_nbytes`` what the dense
    baseline would have charged, so the ledger can account both.
    """

    codec: str
    nbytes: int
    raw_nbytes: int
    payload: tuple

    @property
    def saved_bytes(self) -> int:
        return self.raw_nbytes - self.nbytes


# ---------------------------------------------------------------------------
# varint / zigzag integer packing (real kernels, vectorized)
# ---------------------------------------------------------------------------

def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed to unsigned so small magnitudes stay small:
    ``0, -1, 1, -2 -> 0, 1, 2, 3``."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)
            ^ -(v & np.uint64(1)).astype(np.int64))


_VARINT_THRESHOLDS = (np.uint64(1)
                      << (np.uint64(7) * np.arange(1, 10, dtype=np.uint64)))


def varint_length(values: np.ndarray) -> np.ndarray:
    """LEB128 byte length of each value (1..10), exactly."""
    v = np.asarray(values, dtype=np.uint64)
    return 1 + (v[:, None] >= _VARINT_THRESHOLDS[None, :]).sum(axis=1)


def varint_encode(values: np.ndarray) -> bytes:
    """Vectorized LEB128: 7 payload bits per byte, msb = continuation."""
    v = np.asarray(values, dtype=np.uint64)
    if v.size == 0:
        return b""
    lengths = varint_length(v)
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    out = np.empty(int(lengths.sum()), dtype=np.uint8)
    for k in range(int(lengths.max())):
        mask = lengths > k
        chunk = (v[mask] >> np.uint64(7 * k)) & np.uint64(0x7F)
        cont = np.where(lengths[mask] > k + 1, 0x80, 0)
        out[offsets[mask] + k] = chunk.astype(np.uint8) | cont.astype(
            np.uint8)
    return out.tobytes()


def varint_decode(payload: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`varint_encode` for ``count`` values."""
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    raw = np.frombuffer(payload, dtype=np.uint8)
    ends = np.flatnonzero(raw < 0x80)
    if ends.size < count:
        raise ValueError(
            f"payload holds {ends.size} varints, {count} requested"
        )
    ends = ends[:count]
    starts = np.concatenate(([0], ends[:-1] + 1))
    lengths = ends - starts + 1
    values = np.zeros(count, dtype=np.uint64)
    for k in range(int(lengths.max())):
        mask = lengths > k
        chunk = raw[starts[mask] + k].astype(np.uint64) & np.uint64(0x7F)
        values[mask] |= chunk << np.uint64(7 * k)
    return values


# ---------------------------------------------------------------------------
# histogram codecs
# ---------------------------------------------------------------------------

class HistogramCodec:
    """Encode/decode one node's gradient histogram."""

    name: str = "abstract"
    #: whether ``decode(encode(h))`` is bit-identical to ``h``
    lossless: bool = True

    def encode(self, hist: Histogram) -> Encoded:
        raise NotImplementedError

    def decode(self, enc: Encoded) -> Histogram:
        raise NotImplementedError


class DenseHistogramCodec(HistogramCodec):
    """Identity codec: the float64 buffers ship as-is (today's wire
    format — QD1/QD2's dense all-reduce payloads)."""

    name = "dense"

    def encode(self, hist: Histogram) -> Encoded:
        return Encoded("dense", hist.nbytes, hist.nbytes, (hist,))

    def decode(self, enc: Encoded) -> Histogram:
        hist = enc.payload[0]
        out = Histogram(hist.num_features, hist.num_bins,
                        hist.gradient_dim)
        out.grad[:] = hist.grad
        out.hess[:] = hist.hess
        return out


class SparseHistogramCodec(HistogramCodec):
    """Zero-suppressed sparse layout with a density-cutoff dense fallback.

    Occupied slots (any nonzero grad or hess component) ship as
    ``(int32 index, float64 grad[C], float64 hess[C])``; payloads whose
    density exceeds :func:`sparse_cutoff_density` fall back to the dense
    layout, so the encoded size never exceeds dense + 1 scheme byte.
    Decoding scatters into a zeroed histogram — exact zeros restore as
    exact zeros, so the round trip is bit-identical.
    """

    name = "sparse"

    def encode(self, hist: Histogram) -> Encoded:
        raw = hist.nbytes
        occupied = np.flatnonzero(
            hist.grad.any(axis=1) | hist.hess.any(axis=1)
        )
        nnz = occupied.size
        sparse_nbytes = (HISTOGRAM_HEADER_BYTES
                         + nnz * sparse_entry_bytes(hist.gradient_dim))
        if sparse_nbytes >= raw:
            return Encoded("sparse/dense-fallback", raw, raw, (hist,))
        idx = occupied.astype(np.int32)
        return Encoded(
            "sparse", sparse_nbytes, raw,
            (idx, hist.grad[occupied].copy(), hist.hess[occupied].copy(),
             (hist.num_features, hist.num_bins, hist.gradient_dim)),
        )

    def decode(self, enc: Encoded) -> Histogram:
        if enc.codec == "sparse/dense-fallback":
            return DenseHistogramCodec().decode(enc)
        idx, grad, hess, shape = enc.payload
        out = Histogram(*shape)
        out.grad[idx] = grad
        out.hess[idx] = hess
        return out


class LowPrecisionHistogramCodec(HistogramCodec):
    """Lossy quantization to float32/float16 (the DimBoost idea).

    Values round to the narrow dtype on encode and widen back to float64
    on decode, so split decisions downstream see the quantization error —
    the convergence cost is real and measured, not modeled.
    """

    lossless = False

    def __init__(self, dtype, name: str) -> None:
        self.dtype = np.dtype(dtype)
        self.name = name

    def encode(self, hist: Histogram) -> Encoded:
        raw = hist.nbytes
        grad = hist.grad.astype(self.dtype)
        hess = hist.hess.astype(self.dtype)
        nbytes = (HISTOGRAM_HEADER_BYTES + grad.nbytes + hess.nbytes)
        return Encoded(
            self.name, nbytes, raw,
            (grad, hess,
             (hist.num_features, hist.num_bins, hist.gradient_dim)),
        )

    def decode(self, enc: Encoded) -> Histogram:
        grad, hess, shape = enc.payload
        out = Histogram(*shape)
        out.grad[:] = grad.astype(np.float64)
        out.hess[:] = hess.astype(np.float64)
        return out


# ---------------------------------------------------------------------------
# score codec (partial score vectors of sharded serving)
# ---------------------------------------------------------------------------

class ScoreCodec:
    """Encode one partial raw-score vector ``(rows, gradient_dim)``.

    Sharded serving (:mod:`repro.serve.sharded`) carries a running score
    accumulator between shard groups; this codec is what that carry
    ships as.  Lossy variants quantize the carried accumulator at every
    hop, so the precision cost of shipping narrow partials — the serving
    mirror of DimBoost's low-precision histograms — is real and
    measured, not modeled.
    """

    name: str = "abstract"
    lossless = True

    def encode(self, scores: np.ndarray) -> Encoded:
        raise NotImplementedError

    def decode(self, enc: Encoded) -> np.ndarray:
        raise NotImplementedError


class RawScoreCodec(ScoreCodec):
    """float64 pass-through — the exact (bit-identical) wire format."""

    name = "raw"

    def encode(self, scores: np.ndarray) -> Encoded:
        arr = np.ascontiguousarray(scores, dtype=np.float64)
        return Encoded(self.name, arr.nbytes, arr.nbytes, (arr,))

    def decode(self, enc: Encoded) -> np.ndarray:
        return enc.payload[0]


class LowPrecisionScoreCodec(ScoreCodec):
    """Lossy float32/float16 partial scores.

    Values round to the narrow dtype on encode and widen back on decode,
    so downstream consumers (and the served scores themselves) see the
    quantization error.
    """

    lossless = False

    def __init__(self, dtype, name: str) -> None:
        self.dtype = np.dtype(dtype)
        self.name = name

    def encode(self, scores: np.ndarray) -> Encoded:
        arr = np.ascontiguousarray(scores, dtype=np.float64)
        narrow = arr.astype(self.dtype)
        return Encoded(self.name, narrow.nbytes, arr.nbytes, (narrow,))

    def decode(self, enc: Encoded) -> np.ndarray:
        return enc.payload[0].astype(np.float64)


# ---------------------------------------------------------------------------
# placement codec (bitmap vs varint-packed minority indices)
# ---------------------------------------------------------------------------

class PlacementCodec:
    """Encode one node's ``go_left`` boolean placement array."""

    name: str = "abstract"
    lossless = True

    def encode(self, go_left: np.ndarray) -> Encoded:
        raise NotImplementedError

    def decode(self, enc: Encoded, count: int) -> np.ndarray:
        raise NotImplementedError


class BitmapPlacementCodec(PlacementCodec):
    """Pure packed bitmap (Section 4.2.2) — today's wire format."""

    name = "bitmap"

    def encode(self, go_left: np.ndarray) -> Encoded:
        nbytes = bitmap_nbytes(len(go_left))
        return Encoded("bitmap", nbytes, nbytes,
                       (encode_placement(go_left),))

    def decode(self, enc: Encoded, count: int) -> np.ndarray:
        return decode_placement(enc.payload[0], count)


class AdaptivePlacementCodec(PlacementCodec):
    """Bitmap or delta-varint minority indices, whichever is smaller.

    Splits are often skewed (a node sends most instances one way); then
    shipping the minority side's instance indices — delta-encoded, so
    consecutive indices varint to one byte — beats one bit per instance.
    The decoder tells the schemes apart by size: a sparse payload is only
    chosen when strictly smaller than the bitmap, so the encoded size
    never exceeds the Section 3.1.3 ``ceil(N/8)`` baseline.
    """

    name = "adaptive"

    def encode(self, go_left: np.ndarray) -> Encoded:
        go_left = np.asarray(go_left, dtype=bool)
        raw = bitmap_nbytes(go_left.size)
        left = int(go_left.sum())
        minority_left = left * 2 <= go_left.size
        minority = np.flatnonzero(go_left if minority_left else ~go_left)
        deltas = np.diff(minority, prepend=0)
        packed = varint_encode(deltas)
        sparse_nbytes = PLACEMENT_SCHEME_BYTES + len(packed)
        if sparse_nbytes < raw:
            return Encoded("placement-sparse", sparse_nbytes, raw,
                           (packed, minority.size, minority_left))
        return Encoded("bitmap", raw, raw, (encode_placement(go_left),))

    def decode(self, enc: Encoded, count: int) -> np.ndarray:
        if enc.codec == "bitmap":
            return decode_placement(enc.payload[0], count)
        packed, nnz, minority_left = enc.payload
        minority = np.cumsum(
            zigzag_decode(zigzag_encode(
                varint_decode(packed, nnz).astype(np.int64))))
        out = np.full(count, not minority_left, dtype=bool)
        out[minority] = minority_left
        return out


# ---------------------------------------------------------------------------
# integer index codec (checkpoint / node-to-instance payloads)
# ---------------------------------------------------------------------------

class IndexCodec:
    """Encode an integer array (e.g. ``node_of_instance`` state)."""

    name: str = "abstract"
    lossless = True

    def encode(self, values: np.ndarray) -> Encoded:
        raise NotImplementedError

    def decode(self, enc: Encoded) -> np.ndarray:
        raise NotImplementedError


class RawIndexCodec(IndexCodec):
    """Identity: the array's own bytes."""

    name = "raw"

    def encode(self, values: np.ndarray) -> Encoded:
        return Encoded("raw", values.nbytes, values.nbytes,
                       (values.copy(),))

    def decode(self, enc: Encoded) -> np.ndarray:
        return enc.payload[0].copy()


class DeltaIndexCodec(IndexCodec):
    """Zigzag-delta varint: spatially correlated ids (neighboring
    instances usually share a tree node) delta down to mostly-zero and
    varint to about one byte each, ~4x under the int32 baseline."""

    name = "delta"

    def encode(self, values: np.ndarray) -> Encoded:
        values = np.asarray(values)
        raw = values.nbytes
        deltas = np.diff(values.astype(np.int64), prepend=np.int64(0))
        packed = varint_encode(zigzag_encode(deltas))
        if len(packed) >= raw:
            return Encoded("raw", raw, raw, (values.copy(),))
        return Encoded("delta", len(packed), raw,
                       (packed, values.size, values.dtype))

    def decode(self, enc: Encoded) -> np.ndarray:
        if enc.codec == "raw":
            return enc.payload[0].copy()
        packed, count, dtype = enc.payload
        deltas = zigzag_decode(varint_decode(packed, count))
        return np.cumsum(deltas).astype(dtype)


# ---------------------------------------------------------------------------
# model-version delta codec (deploy:model rollouts)
# ---------------------------------------------------------------------------

def encode_model_delta(prev_payload: dict,
                       new_payload: dict) -> Optional[dict]:
    """Delta between two serialized-ensemble payload dicts.

    Boosted ensembles are append-mostly: successive versions usually
    share a tree prefix, so a rollout only needs the appended suffix plus
    the scalar metadata.  Returns ``None`` when the versions share no
    usable prefix (changed metadata or rewritten trees) — callers fall
    back to a full-payload deploy.  The delta is exact:
    :func:`apply_model_delta` reconstructs ``new_payload`` verbatim.
    """
    prev_trees = prev_payload.get("trees", [])
    new_trees = new_payload.get("trees", [])
    meta_keys = set(prev_payload) | set(new_payload)
    meta_keys.discard("trees")
    if any(prev_payload.get(k) != new_payload.get(k) for k in meta_keys):
        return None
    prefix = 0
    for old, new in zip(prev_trees, new_trees):
        if old != new:
            break
        prefix += 1
    if prefix == 0 and prev_trees:
        return None
    return {
        "delta_format": 1,
        "base_trees": prefix,
        "dropped_trees": len(prev_trees) - prefix,
        "trees": new_trees[prefix:],
    }


def apply_model_delta(prev_payload: dict, delta: dict) -> dict:
    """Inverse of :func:`encode_model_delta`: exact reconstruction."""
    if delta.get("delta_format") != 1:
        raise ValueError(f"unknown delta format: {delta!r}")
    base = delta["base_trees"]
    prev_trees = prev_payload.get("trees", [])
    if base > len(prev_trees):
        raise ValueError(
            f"delta needs {base} base trees, predecessor has "
            f"{len(prev_trees)}"
        )
    out = {k: v for k, v in prev_payload.items() if k != "trees"}
    out["trees"] = list(prev_trees[:base]) + list(delta["trees"])
    return out


# ---------------------------------------------------------------------------
# the codec stack: one codec per payload kind, negotiated by name
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CodecStack:
    """What each payload kind ships as, for one ``--codec`` choice.

    Aggregation strategies negotiate against this: histogram collectives
    use :attr:`histogram`, placement broadcasts :attr:`placement`,
    checkpoint/index payloads :attr:`index`.  ``is_identity`` marks the
    ``none`` stack, which must take the exact pre-codec code paths so the
    default wire accounting stays bit-identical to the seed.
    """

    name: str
    lossless: bool
    histogram: HistogramCodec
    placement: PlacementCodec
    index: IndexCodec
    #: partial score vectors of sharded serving ride the same ``--codec``
    #: choice: lossless stacks ship exact float64, lossy stacks quantize
    scores: ScoreCodec = field(default_factory=RawScoreCodec)

    @property
    def is_identity(self) -> bool:
        return self.name == "none"


def _build_stacks() -> Dict[str, CodecStack]:
    dense = DenseHistogramCodec()
    sparse = SparseHistogramCodec()
    bitmap = BitmapPlacementCodec()
    adaptive = AdaptivePlacementCodec()
    raw = RawIndexCodec()
    delta = DeltaIndexCodec()
    raw_scores = RawScoreCodec()
    return {
        "none": CodecStack("none", True, dense, bitmap, raw, raw_scores),
        "sparse": CodecStack("sparse", True, sparse, adaptive, delta,
                             raw_scores),
        "delta": CodecStack("delta", True, dense, adaptive, delta,
                            raw_scores),
        "f32": CodecStack(
            "f32", False,
            LowPrecisionHistogramCodec(np.float32, "f32"), adaptive,
            delta, LowPrecisionScoreCodec(np.float32, "f32")),
        "f16": CodecStack(
            "f16", False,
            LowPrecisionHistogramCodec(np.float16, "f16"), adaptive,
            delta, LowPrecisionScoreCodec(np.float16, "f16")),
    }


#: registered codec stacks, by ``--codec`` name
CODEC_STACKS: Dict[str, CodecStack] = _build_stacks()


def codec_names() -> Tuple[str, ...]:
    return tuple(CODEC_STACKS)


def get_codec_stack(name: str) -> CodecStack:
    """Resolve a ``--codec`` name (case-insensitive; '' means none)."""
    canonical = (name or "none").lower()
    try:
        return CODEC_STACKS[canonical]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; known: "
            f"{', '.join(sorted(CODEC_STACKS))}"
        ) from None
