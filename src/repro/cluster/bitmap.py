"""Instance-placement bitmaps (Section 4.2.2).

After a node split the owner worker knows, for each instance on the node,
whether it goes to the left or right child.  Encoding the boolean placement
as one bit per instance shrinks the broadcast by 32x compared to shipping
4-byte instance ids — the optimization that makes vertical partitioning's
``ceil(N/8) * W * L`` communication bound (Section 3.1.3) hold.
"""

from __future__ import annotations

import numpy as np


def encode_placement(go_left: np.ndarray) -> bytes:
    """Pack a boolean placement array into bytes (big-endian bit order)."""
    go_left = np.asarray(go_left, dtype=bool)
    return np.packbits(go_left).tobytes()


def decode_placement(payload: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_placement` for ``count`` instances."""
    if count < 0:
        raise ValueError("count must be >= 0")
    available = len(payload) * 8
    if count > available:
        raise ValueError(
            f"payload holds {available} bits, {count} requested"
        )
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8),
                         count=count)
    return bits.astype(bool)


def bitmap_nbytes(count: int) -> int:
    """``ceil(count / 8)`` — the size used in the Section 3.1.3 bound."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return (count + 7) // 8
