"""Blockified column groups and two-phase indexing (Section 4.2.3, Fig. 9).

During repartition, each source worker ships its slice of a column group as
one *block* — three parallel arrays (feature indexes, histogram bin
indexes, instance pointers) — instead of millions of tiny per-instance
objects, slashing (de)serialization overhead.  After repartition a worker's
column group is a list of blocks sorted by source file-split id; a
*two-phase index* (binary-search the block, then offset arithmetic inside
it) resolves any global instance id, and blocks are merged down so the
binary search stays negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..data.matrix import CSRMatrix


@dataclass
class Block:
    """One shipped fragment of a column group.

    Rows ``row_offset .. row_offset + num_rows - 1`` (global instance ids)
    are stored CSR-style: ``indptr`` of length ``num_rows + 1`` into the
    ``features`` / ``bins`` arrays.
    """

    row_offset: int
    indptr: np.ndarray
    features: np.ndarray
    bins: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.features = np.asarray(self.features, dtype=np.int32)
        self.bins = np.asarray(self.bins, dtype=np.int32)
        if self.indptr[0] != 0 or self.indptr[-1] != self.features.size:
            raise ValueError("block indptr inconsistent with entry arrays")
        if self.features.size != self.bins.size:
            raise ValueError("features and bins must align")

    @property
    def num_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def nnz(self) -> int:
        return self.features.size

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.features.nbytes + self.bins.nbytes


class BlockedColumnGroup:
    """A worker's column group assembled from repartitioned blocks."""

    def __init__(self, blocks: Sequence[Block], num_features: int) -> None:
        blocks = sorted(blocks, key=lambda b: b.row_offset)
        for prev, cur in zip(blocks, blocks[1:]):
            if prev.row_offset + prev.num_rows != cur.row_offset:
                raise ValueError("blocks must tile the instance axis")
        if blocks and blocks[0].row_offset != 0:
            raise ValueError("first block must start at instance 0")
        self.blocks: List[Block] = list(blocks)
        self.num_features = num_features
        self._offsets = np.array(
            [b.row_offset for b in self.blocks], dtype=np.int64
        )

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_rows(self) -> int:
        if not self.blocks:
            return 0
        last = self.blocks[-1]
        return last.row_offset + last.num_rows

    def lookup(self, instance_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Two-phase index: block binary search, then in-block offsets.

        Returns ``(features, bins)`` of one instance's row.
        """
        if not 0 <= instance_id < self.num_rows:
            raise IndexError(
                f"instance {instance_id} out of range [0, {self.num_rows})"
            )
        # Phase 1 — locate the block holding the instance.
        block_idx = int(
            np.searchsorted(self._offsets, instance_id, side="right") - 1
        )
        block = self.blocks[block_idx]
        # Phase 2 — offset arithmetic inside the block.
        local = instance_id - block.row_offset
        lo, hi = block.indptr[local], block.indptr[local + 1]
        return block.features[lo:hi], block.bins[lo:hi]

    def merge(self, max_blocks: int = 5) -> "BlockedColumnGroup":
        """Merge adjacent blocks until at most ``max_blocks`` remain.

        Mirrors the paper's block-merge optimization: a 100 GB dataset
        yields ~800 file splits, merged down so the two-phase lookup's
        binary search is effectively free.
        """
        if max_blocks < 1:
            raise ValueError("max_blocks must be >= 1")
        if self.num_blocks <= max_blocks:
            return self
        bounds = np.linspace(0, self.num_blocks, max_blocks + 1).astype(int)
        merged: List[Block] = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if lo == hi:
                continue
            chunk = self.blocks[lo:hi]
            indptrs = [chunk[0].indptr]
            for block in chunk[1:]:
                indptrs.append(block.indptr[1:] + indptrs[-1][-1])
            merged.append(
                Block(
                    row_offset=chunk[0].row_offset,
                    indptr=np.concatenate(indptrs),
                    features=np.concatenate([b.features for b in chunk]),
                    bins=np.concatenate([b.bins for b in chunk]),
                )
            )
        return BlockedColumnGroup(merged, self.num_features)

    def to_csr(self) -> CSRMatrix:
        """Materialize as a single CSR matrix (training representation)."""
        merged = self.merge(max_blocks=1)
        if not merged.blocks:
            return CSRMatrix(np.zeros(1, dtype=np.int64),
                             np.empty(0, dtype=np.int32),
                             np.empty(0, dtype=np.int32),
                             self.num_features)
        block = merged.blocks[0]
        return CSRMatrix(block.indptr, block.features, block.bins,
                         self.num_features)


def blockify_shard(
    shard: CSRMatrix, row_offset: int
) -> Block:
    """Package one worker's slice of a column group as a single block."""
    return Block(
        row_offset=row_offset,
        indptr=shard.indptr.copy(),
        features=shard.indices.copy(),
        bins=np.asarray(shard.values, dtype=np.int32).copy(),
    )
