"""Horizontal-to-vertical transformation (Section 4.2.1, Figure 8).

Training data arrives horizontally partitioned (each worker holds a row
range, as it would from HDFS file splits); Vero repartitions it vertically
in five steps:

1. **Build quantile sketches** — one mergeable sketch per feature per
   worker; local sketches of one feature travel to a single worker and are
   merged into a global sketch.
2. **Generate candidate splits** — evenly spaced quantiles of each merged
   sketch; the master collects and broadcasts them.
3. **Column grouping** — each worker regroups its shard by destination
   worker, re-encoding every key-value pair as
   ``(group-local feature id, histogram bin index)`` — the lossless
   compression of the paper (bin indexes leave histograms unchanged).
4. **Repartition column groups** — all-to-all shuffle; with the blockify
   optimization each fragment ships as one block of three arrays instead
   of per-instance objects.
5. **Broadcast instance labels** — so every worker can compute gradients.

Three repartition encodings are modelled, matching Appendix A / Table 5:
``naive`` (12-byte raw pairs), ``compressed`` (encoded pairs, still
per-instance objects) and ``blockified`` (encoded pairs in blocks — Vero).
Computation is measured; network and serialization time is simulated from
accounted bytes/objects.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig
from ..data.dataset import BinnedDataset, Dataset, apply_cuts
from ..data.matrix import CSRMatrix
from ..sketch.proposer import propose_candidates
from ..sketch.quantile import MergingSketch
from .blocks import BlockedColumnGroup, blockify_shard
from .network import SimulatedNetwork
from .partition import greedy_column_groups, horizontal_row_ranges

#: bytes of one raw key-value pair: 4-byte feature id + 8-byte double value
NAIVE_PAIR_BYTES = 12
#: simulated (de)serialization cost of one shipped object
SERIALIZATION_SECONDS_PER_OBJECT = 5e-7
#: simulated disk bandwidth for the "load data" step (bytes/second)
DISK_BYTES_PER_SECOND = 100e6
#: bytes per instance on disk per stored pair, libsvm-style text
DISK_BYTES_PER_PAIR = 13


def compressed_pair_bytes(group_size: int, num_bins: int) -> int:
    """Encoded size of one pair after step 3 (Section 4.2.1).

    Feature ids are renumbered inside the group (``ceil(log2 p)`` bits)
    and values become bin indexes (``ceil(log2 q)`` bits); both round up
    to whole bytes, minimum one each.
    """
    fid_bytes = max(math.ceil(math.log2(max(group_size, 2)) / 8), 1)
    bin_bytes = max(math.ceil(math.log2(max(num_bins, 2)) / 8), 1)
    return fid_bytes + bin_bytes


@dataclass
class TransformReport:
    """Per-step costs of one transformation run (Table 5 columns)."""

    load_data_seconds: float = 0.0
    get_splits_seconds: float = 0.0
    repartition_seconds: Dict[str, float] = field(default_factory=dict)
    repartition_bytes: Dict[str, int] = field(default_factory=dict)
    broadcast_label_seconds: float = 0.0
    broadcast_label_bytes: int = 0
    sketch_bytes: int = 0
    compression_ratio: float = 1.0

    def total_seconds(self, encoding: str = "blockified") -> float:
        return (
            self.load_data_seconds
            + self.get_splits_seconds
            + self.repartition_seconds.get(encoding, 0.0)
            + self.broadcast_label_seconds
        )


@dataclass
class TransformResult:
    """Vertically repartitioned dataset plus the cost report."""

    shards: List[BinnedDataset]
    groups: List[np.ndarray]
    blocked_groups: List[BlockedColumnGroup]
    cuts: List[np.ndarray]
    report: TransformReport
    global_binned: BinnedDataset


def horizontal_to_vertical(
    dataset: Dataset,
    cluster: ClusterConfig,
    num_candidates: int,
    net: Optional[SimulatedNetwork] = None,
    sketch_eps: float = 0.005,
) -> TransformResult:
    """Run the full five-step transformation on a raw dataset."""
    if net is None:
        net = SimulatedNetwork(cluster.network)
    num_workers = cluster.num_workers
    report = TransformReport()
    ranges = horizontal_row_ranges(dataset.num_instances, num_workers)
    raw_shards = [dataset.features.select_rows(rows) for rows in ranges]

    # Step 0 (context): loading horizontally partitioned data from the
    # distributed filesystem — simulated from a libsvm-style on-disk size.
    per_worker_disk = max(
        shard.nnz * DISK_BYTES_PER_PAIR + shard.num_rows * 2
        for shard in raw_shards
    )
    report.load_data_seconds = per_worker_disk / DISK_BYTES_PER_SECOND

    # Steps 1-2: sketches -> merged -> candidate splits (measured).
    start = time.perf_counter()
    cuts, sketch_bytes = _sketch_candidates(
        raw_shards, dataset.num_features, num_candidates, sketch_eps
    )
    report.get_splits_seconds = (
        time.perf_counter() - start
    ) / num_workers + net.model.transfer_time(sketch_bytes)
    report.sketch_bytes = sketch_bytes
    net.record("sketch-repartition", sketch_bytes,
               net.model.transfer_time(sketch_bytes))
    # master broadcasts the candidate splits
    split_bytes = sum(c.size for c in cuts) * 8 * (num_workers - 1)
    net.record("split-broadcast", split_bytes,
               net.model.transfer_time(split_bytes))

    # Step 3: bin each shard and regroup columns by destination worker.
    binned_shards = [apply_cuts(shard, cuts) for shard in raw_shards]
    pairs_per_feature = np.zeros(dataset.num_features, dtype=np.int64)
    for shard in binned_shards:
        counts = np.bincount(shard.indices,
                             minlength=dataset.num_features)
        pairs_per_feature += counts
    groups = greedy_column_groups(pairs_per_feature, num_workers)

    # Step 4: repartition — account all three encodings, materialize blocks.
    _account_repartition(
        report, net, binned_shards, groups, num_candidates, num_workers
    )
    blocked_groups: List[BlockedColumnGroup] = []
    for group in groups:
        blocks = [
            blockify_shard(
                binned_shards[w].select_cols(group), int(ranges[w][0])
            )
            for w in range(num_workers)
            if ranges[w].size
        ]
        blocked_groups.append(
            BlockedColumnGroup(blocks, group.size).merge(max_blocks=5)
        )

    # Step 5: broadcast labels.
    label_bytes = dataset.num_instances * 4 * (num_workers - 1)
    report.broadcast_label_bytes = label_bytes
    report.broadcast_label_seconds = net.model.transfer_time(label_bytes)
    net.record("label-broadcast", label_bytes,
               report.broadcast_label_seconds)

    # Materialize the per-worker vertical BinnedDatasets for training.
    global_binned = BinnedDataset(
        _concat_rows(binned_shards, dataset.num_features),
        list(cuts), dataset.labels, num_candidates, dataset.task,
        dataset.num_classes, name=dataset.name,
    )
    shards = [
        global_binned.select_features(group,
                                      name=f"{dataset.name}-g{w}")
        for w, group in enumerate(groups)
    ]
    return TransformResult(shards, groups, blocked_groups, list(cuts),
                           report, global_binned)


def _sketch_candidates(
    raw_shards: List[CSRMatrix],
    num_features: int,
    num_candidates: int,
    sketch_eps: float,
) -> Tuple[List[np.ndarray], int]:
    """Steps 1-2: per-worker sketches, merge, propose candidates."""
    merged: List[Optional[MergingSketch]] = [None] * num_features
    sketch_bytes = 0
    for shard in raw_shards:
        csc = shard.to_csc()
        for j in range(num_features):
            _, vals = csc.col(j)
            if vals.size == 0:
                continue
            local = MergingSketch(eps=sketch_eps)
            local.update(vals)
            sketch_bytes += local.serialized_nbytes
            if merged[j] is None:
                merged[j] = local
            else:
                merged[j] = merged[j].merge(local)
    cuts = [
        propose_candidates(sketch, num_candidates)
        if sketch is not None else np.empty(0, dtype=np.float64)
        for sketch in merged
    ]
    return cuts, sketch_bytes


def _account_repartition(
    report: TransformReport,
    net: SimulatedNetwork,
    binned_shards: List[CSRMatrix],
    groups: List[np.ndarray],
    num_candidates: int,
    num_workers: int,
) -> None:
    """Simulated cost of the all-to-all shuffle under each encoding."""
    total_pairs = sum(shard.nnz for shard in binned_shards)
    total_rows = sum(shard.num_rows for shard in binned_shards)
    # A fraction (W-1)/W of every worker's pairs leaves the machine.
    wire_fraction = (num_workers - 1) / num_workers if num_workers else 0.0
    mean_group = max(
        int(np.mean([g.size for g in groups])) if groups else 1, 1
    )
    pair_bytes_compressed = compressed_pair_bytes(mean_group,
                                                  num_candidates)
    encodings = {
        "naive": (NAIVE_PAIR_BYTES, total_rows * num_workers),
        "compressed": (pair_bytes_compressed, total_rows * num_workers),
        "blockified": (pair_bytes_compressed, num_workers * num_workers),
    }
    report.compression_ratio = NAIVE_PAIR_BYTES / pair_bytes_compressed
    for name, (pair_bytes, num_objects) in encodings.items():
        wire_bytes = int(total_pairs * pair_bytes * wire_fraction)
        transfer = wire_bytes / num_workers / net.model.bytes_per_second
        serialization = (
            num_objects / num_workers * SERIALIZATION_SECONDS_PER_OBJECT
        )
        report.repartition_bytes[name] = wire_bytes
        report.repartition_seconds[name] = transfer + serialization
    net.record("repartition", report.repartition_bytes["blockified"],
               report.repartition_seconds["blockified"])


def _concat_rows(shards: List[CSRMatrix], num_cols: int) -> CSRMatrix:
    """Stack horizontal shards back into one matrix (row order preserved)."""
    indptrs = [shards[0].indptr]
    for shard in shards[1:]:
        indptrs.append(shard.indptr[1:] + indptrs[-1][-1])
    return CSRMatrix(
        np.concatenate(indptrs),
        np.concatenate([s.indices for s in shards]),
        np.concatenate([s.values for s in shards]),
        num_cols,
    )
