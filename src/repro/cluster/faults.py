"""Deterministic fault injection for the simulated cluster.

The paper's experiments assume a fault-free cluster; production training
does not get that luxury.  This module adds the three failure classes a
distributed GBDT run must survive — **worker crashes** at tree/layer
boundaries, **transient message drops**, and **timeouts** — as seeded,
exactly replayable schedules:

* :class:`FaultPlan` is the declarative schedule description, parsed from
  the ``SEED:SPEC`` strings of ``TrainConfig.faults`` /
  ``repro train --faults`` (e.g. ``"42:crash=2,drop=0.05,timeout=0.01"``).
* :class:`FaultInjector` draws every injected event from one
  ``numpy`` RNG seeded with the plan's seed, in deterministic call order,
  so any failure run can be replayed bit-for-bit.

Transport faults (drops/timeouts) are consumed by
:meth:`repro.cluster.network.SimulatedNetwork.record`, which re-sends the
payload with exponential backoff and accounts every extra byte and second
under a dedicated ``retry:<kind>`` ledger entry.  Crash events are
consumed by :class:`repro.systems.executor.PlanExecutor`, which rolls the
tree back to its last :class:`~repro.systems.executor.TreeCheckpoint` and
charges the recovery traffic under ``recovery:*`` kinds.  Because the
fault-free operation sequence is deterministic, a faulty run's ledger is
exactly the fault-free ledger plus those dedicated kinds — the invariant
``tests/systems/test_chaos.py`` pins for every plan in the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

#: kinds carrying injected-fault traffic; never themselves subject to
#: injection (the retry/recovery channel is modelled as reliable)
RETRY_PREFIX = "retry:"
RECOVERY_PREFIX = "recovery:"
FAULT_PREFIXES = (RETRY_PREFIX, RECOVERY_PREFIX)


class UnrecoverableFaultError(RuntimeError):
    """A fault schedule exceeded what the recovery policy can absorb."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of a fault schedule.

    Attributes
    ----------
    seed:
        Seed of the injector's RNG; the same plan always injects the
        same events at the same points.
    crashes:
        Number of worker-crash events, each scheduled at a uniformly
        drawn (tree, layer, worker) boundary.
    drop_rate:
        Per-operation probability that a message is lost in transit and
        must be re-sent.
    timeout_rate:
        Per-operation probability that a message times out; a timed-out
        attempt additionally waits ``timeout_s`` before the re-send.
    backoff_s:
        Base of the exponential backoff: the ``i``-th consecutive retry
        of one operation waits ``backoff_s * 2**i`` seconds.
    timeout_s:
        Detection delay charged for each timeout event.
    max_retries:
        Consecutive re-sends after which an operation is declared
        undeliverable (:class:`UnrecoverableFaultError`).
    max_crashes_per_tree:
        Recovery-budget guard: more crash events landing inside one tree
        than this is declared unrecoverable.
    """

    seed: int
    crashes: int = 0
    drop_rate: float = 0.0
    timeout_rate: float = 0.0
    backoff_s: float = 0.01
    timeout_s: float = 0.5
    max_retries: int = 8
    max_crashes_per_tree: int = 4

    def __post_init__(self) -> None:
        if self.crashes < 0:
            raise ValueError(f"crashes must be >= 0, got {self.crashes}")
        for name in ("drop_rate", "timeout_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.drop_rate + self.timeout_rate >= 1.0:
            raise ValueError(
                "drop_rate + timeout_rate must be < 1 (an operation "
                "must eventually succeed)"
            )
        if self.backoff_s < 0 or self.timeout_s < 0:
            raise ValueError("backoff_s and timeout_s must be >= 0")
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.max_crashes_per_tree < 1:
            raise ValueError(
                "max_crashes_per_tree must be >= 1, got "
                f"{self.max_crashes_per_tree}"
            )

    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all."""
        return (self.crashes > 0 or self.drop_rate > 0.0
                or self.timeout_rate > 0.0)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``SEED:SPEC`` string (the ``--faults`` syntax).

        ``SPEC`` is a comma-separated list of ``key=value`` entries with
        keys ``crash``, ``drop``, ``timeout``, ``backoff``, ``timeout-s``
        and ``retries``, e.g. ``"42:crash=2,drop=0.05"``.
        """
        head, sep, tail = spec.partition(":")
        if not sep or not head.strip():
            raise ValueError(
                f"fault spec {spec!r} must look like 'SEED:key=value,...'"
            )
        try:
            seed = int(head)
        except ValueError:
            raise ValueError(
                f"fault spec {spec!r} has a non-integer seed {head!r}"
            ) from None
        fields: Dict[str, float] = {}
        keys = {
            "crash": "crashes",
            "drop": "drop_rate",
            "timeout": "timeout_rate",
            "backoff": "backoff_s",
            "timeout-s": "timeout_s",
            "retries": "max_retries",
        }
        for item in filter(None, (p.strip() for p in tail.split(","))):
            key, eq, value = item.partition("=")
            if not eq or key.strip() not in keys:
                raise ValueError(
                    f"fault spec entry {item!r} must be one of "
                    f"{', '.join(sorted(keys))} followed by '=value'"
                )
            try:
                fields[keys[key.strip()]] = float(value)
            except ValueError:
                raise ValueError(
                    f"fault spec entry {item!r} has a non-numeric value"
                ) from None
        if not fields:
            raise ValueError(
                f"fault spec {spec!r} names no fault (e.g. 'crash=1')"
            )
        for int_key in ("crashes", "max_retries"):
            if int_key in fields:
                fields[int_key] = int(fields[int_key])
        return cls(seed=seed, **fields)

    def describe(self) -> str:
        """One-line human summary (CLI output)."""
        parts = [f"seed={self.seed}"]
        if self.crashes:
            parts.append(f"crashes={self.crashes}")
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.timeout_rate:
            parts.append(f"timeout={self.timeout_rate:g}")
        return " ".join(parts)


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled worker crash, fired at a (tree, layer) boundary."""

    tree: int
    layer: int
    worker: int


@dataclass(frozen=True)
class TransportFault:
    """One injected drop or timeout of a transport operation."""

    kind: str           # "drop" | "timeout"
    penalty_s: float    # detection delay before the re-send


@dataclass
class FaultCounters:
    """What the injector actually fired (for exact-accounting tests)."""

    crashes: int = 0
    drops: int = 0
    timeouts: int = 0

    @property
    def transport_events(self) -> int:
        return self.drops + self.timeouts


class FaultInjector:
    """Runtime oracle of one seeded fault schedule.

    Crash events are pre-drawn at construction; transport faults are
    drawn per consulted operation, in deterministic call order.  The
    injector is single-run state: build a fresh one (same plan) to
    replay a run exactly.
    """

    def __init__(self, plan: FaultPlan, num_workers: int,
                 num_trees: int, num_layers: int) -> None:
        if num_workers < 1 or num_trees < 1 or num_layers < 2:
            raise ValueError("injector needs a valid cluster/schedule")
        self.plan = plan
        self.num_workers = num_workers
        self.counters = FaultCounters()
        self._rng = np.random.default_rng(plan.seed)
        self._crashes: Dict[Tuple[int, int], List[CrashEvent]] = {}
        per_tree: Dict[int, int] = {}
        for _ in range(plan.crashes):
            tree = int(self._rng.integers(num_trees))
            layer = int(self._rng.integers(num_layers - 1))
            worker = int(self._rng.integers(num_workers))
            event = CrashEvent(tree, layer, worker)
            self._crashes.setdefault((tree, layer), []).append(event)
            per_tree[tree] = per_tree.get(tree, 0) + 1
        overloaded = {t: n for t, n in per_tree.items()
                      if n > plan.max_crashes_per_tree}
        if overloaded:
            raise UnrecoverableFaultError(
                f"fault plan schedules {max(overloaded.values())} crashes "
                f"inside one tree, above the recovery budget of "
                f"{plan.max_crashes_per_tree}; pick another seed or "
                "raise max_crashes_per_tree"
            )

    # -- crash faults ----------------------------------------------------------

    def scheduled_crashes(self) -> List[CrashEvent]:
        """Every scheduled crash event, in (tree, layer) order."""
        return [event for key in sorted(self._crashes)
                for event in self._crashes[key]]

    def maybe_crash(self, tree: int, layer: int) -> "CrashEvent | None":
        """Pop the next crash scheduled at this boundary, if any.

        Each event fires exactly once, so the recovery replay of a layer
        does not re-trigger the crash that interrupted it.
        """
        pending = self._crashes.get((tree, layer))
        if not pending:
            return None
        self.counters.crashes += 1
        return pending.pop(0)

    # -- transport faults ------------------------------------------------------

    def transport_faults(self, kind: str) -> List[TransportFault]:
        """Injected drop/timeout events for one transport operation.

        One RNG draw per attempt: the operation retries while the draw
        lands inside the drop/timeout mass, up to ``max_retries``.
        Retry/recovery traffic itself is never faulted.
        """
        plan = self.plan
        if kind.startswith(FAULT_PREFIXES):
            return []
        if plan.drop_rate == 0.0 and plan.timeout_rate == 0.0:
            return []
        faults: List[TransportFault] = []
        while len(faults) < plan.max_retries:
            draw = float(self._rng.random())
            if draw < plan.drop_rate:
                faults.append(TransportFault("drop", 0.0))
                self.counters.drops += 1
            elif draw < plan.drop_rate + plan.timeout_rate:
                faults.append(TransportFault("timeout", plan.timeout_s))
                self.counters.timeouts += 1
            else:
                return faults
        raise UnrecoverableFaultError(
            f"operation {kind!r} failed {plan.max_retries} consecutive "
            "times; the schedule is unrecoverable under this retry budget"
        )

    def retry_seconds(self, attempt: int, base_seconds: float,
                      fault: TransportFault) -> float:
        """Simulated cost of re-sending after the ``attempt``-th failure:
        detection delay + exponential backoff + the re-send itself."""
        backoff = self.plan.backoff_s * (2.0 ** attempt)
        return fault.penalty_s + backoff + base_seconds
