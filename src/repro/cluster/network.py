"""Simulated network with exact byte and time accounting.

Every inter-worker transfer in the simulated cluster is recorded here.
Computation runs for real (numpy kernels, measured with a wall clock);
communication is *simulated*: each logical operation contributes
``latency + bytes / bandwidth`` seconds according to the collective's cost
decomposition in :mod:`repro.cluster.comm`.  The paper's communication
results (Figures 10, 12; Section 3.1.3) are functions of exactly these two
quantities — bytes on the wire and the bandwidth they cross — so the shape
of every result is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import NetworkModel


@dataclass
class CommRecord:
    """One recorded communication operation."""

    kind: str
    nbytes: int
    seconds: float


@dataclass
class CommStats:
    """Aggregate snapshot of traffic (totals since construction/reset)."""

    total_bytes: int = 0
    total_seconds: float = 0.0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    seconds_by_kind: Dict[str, float] = field(default_factory=dict)

    def minus(self, earlier: "CommStats") -> "CommStats":
        """Traffic between two snapshots."""
        delta = CommStats(
            total_bytes=self.total_bytes - earlier.total_bytes,
            total_seconds=self.total_seconds - earlier.total_seconds,
        )
        for key, val in self.bytes_by_kind.items():
            prev = earlier.bytes_by_kind.get(key, 0)
            if val - prev:
                delta.bytes_by_kind[key] = val - prev
        for key, val in self.seconds_by_kind.items():
            prev = earlier.seconds_by_kind.get(key, 0.0)
            if val - prev:
                delta.seconds_by_kind[key] = val - prev
        return delta


class SimulatedNetwork:
    """Byte/time ledger of the simulated cluster interconnect."""

    def __init__(self, model: NetworkModel) -> None:
        self.model = model
        self.records: List[CommRecord] = []
        self._stats = CommStats()

    def record(self, kind: str, nbytes: int, seconds: float) -> None:
        """Account one already-costed operation."""
        nbytes = int(nbytes)
        if nbytes < 0 or seconds < 0:
            raise ValueError("bytes and seconds must be >= 0")
        self.records.append(CommRecord(kind, nbytes, seconds))
        self._stats.total_bytes += nbytes
        self._stats.total_seconds += seconds
        self._stats.bytes_by_kind[kind] = (
            self._stats.bytes_by_kind.get(kind, 0) + nbytes
        )
        self._stats.seconds_by_kind[kind] = (
            self._stats.seconds_by_kind.get(kind, 0.0) + seconds
        )

    def transfer(self, kind: str, nbytes: int) -> float:
        """Account a point-to-point transfer; returns its simulated time."""
        seconds = self.model.transfer_time(nbytes)
        self.record(kind, nbytes, seconds)
        return seconds

    def snapshot(self) -> CommStats:
        """Copy of the running totals (cheap; safe to diff later)."""
        return CommStats(
            total_bytes=self._stats.total_bytes,
            total_seconds=self._stats.total_seconds,
            bytes_by_kind=dict(self._stats.bytes_by_kind),
            seconds_by_kind=dict(self._stats.seconds_by_kind),
        )

    @property
    def total_bytes(self) -> int:
        return self._stats.total_bytes

    @property
    def total_seconds(self) -> float:
        return self._stats.total_seconds
