"""Simulated network with exact byte and time accounting.

Every inter-worker transfer in the simulated cluster is recorded here.
Computation runs for real (numpy kernels, measured with a wall clock);
communication is *simulated*: each logical operation contributes
``latency + bytes / bandwidth`` seconds according to the collective's cost
decomposition in :mod:`repro.cluster.comm`.  The paper's communication
results (Figures 10, 12; Section 3.1.3) are functions of exactly these two
quantities — bytes on the wire and the bandwidth they cross — so the shape
of every result is preserved.

Fault semantics
---------------
With a :class:`~repro.cluster.faults.FaultInjector` attached, every
recorded operation may be transiently dropped or timed out: each injected
failure re-sends the payload after an exponential backoff, and the extra
bytes and seconds land under a dedicated ``retry:<kind>`` ledger entry.
Crash recovery uses :meth:`SimulatedNetwork.relabel_since` to reclassify a
rolled-back attempt's traffic under ``recovery:<kind>``.  The unprefixed
kinds therefore always total exactly what a fault-free run records — the
invariant the chaos suite pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..config import NetworkModel
from .faults import FAULT_PREFIXES

if TYPE_CHECKING:
    from .faults import FaultInjector


@dataclass
class CommRecord:
    """One recorded communication operation.

    ``nbytes`` is what actually crossed the (simulated) wire; when a
    codec shrank the payload, ``raw_nbytes`` holds the dense baseline
    size so the ledger can account the saving.  For un-encoded traffic
    the two are equal.
    """

    kind: str
    nbytes: int
    seconds: float
    raw_nbytes: int = -1

    def __post_init__(self) -> None:
        if self.raw_nbytes < 0:
            self.raw_nbytes = self.nbytes


@dataclass
class CommStats:
    """Aggregate snapshot of traffic (totals since construction/reset)."""

    total_bytes: int = 0
    total_seconds: float = 0.0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    seconds_by_kind: Dict[str, float] = field(default_factory=dict)
    raw_bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def codec_savings_by_kind(self) -> Dict[str, int]:
        """Bytes each codec saved, keyed ``codec:<kind>``.

        This is the reporting dimension for compression: entries exist
        only for kinds where a codec actually shrank the payload
        (``raw > wire``), so with the identity codec the dict is empty
        and the ledger is indistinguishable from the pre-codec one.
        """
        savings: Dict[str, int] = {}
        for kind, raw in self.raw_bytes_by_kind.items():
            wire = self.bytes_by_kind.get(kind, 0)
            if raw > wire:
                savings["codec:" + kind] = raw - wire
        return savings

    @property
    def total_raw_bytes(self) -> int:
        """Dense-baseline total: wire bytes plus every codec saving."""
        return self.total_bytes + sum(
            self.codec_savings_by_kind().values())

    def minus(self, earlier: "CommStats") -> "CommStats":
        """Traffic between two snapshots.

        Zero-delta kinds are omitted; a kind present only in ``earlier``
        (possible after :meth:`SimulatedNetwork.relabel_since` moved its
        traffic to a recovery kind) surfaces as a negative delta rather
        than vanishing silently.
        """
        delta = CommStats(
            total_bytes=self.total_bytes - earlier.total_bytes,
            total_seconds=self.total_seconds - earlier.total_seconds,
        )
        for key in self.bytes_by_kind.keys() | earlier.bytes_by_kind.keys():
            diff = self.bytes_by_kind.get(key, 0) \
                - earlier.bytes_by_kind.get(key, 0)
            if diff:
                delta.bytes_by_kind[key] = diff
        for key in (self.seconds_by_kind.keys()
                    | earlier.seconds_by_kind.keys()):
            diff = self.seconds_by_kind.get(key, 0.0) \
                - earlier.seconds_by_kind.get(key, 0.0)
            if diff:
                delta.seconds_by_kind[key] = diff
        for key in (self.raw_bytes_by_kind.keys()
                    | earlier.raw_bytes_by_kind.keys()):
            diff = self.raw_bytes_by_kind.get(key, 0) \
                - earlier.raw_bytes_by_kind.get(key, 0)
            if diff:
                delta.raw_bytes_by_kind[key] = diff
        return delta


class SimulatedNetwork:
    """Byte/time ledger of the simulated cluster interconnect."""

    def __init__(self, model: NetworkModel,
                 injector: "Optional[FaultInjector]" = None) -> None:
        self.model = model
        self.injector = injector
        self.records: List[CommRecord] = []
        self._stats = CommStats()

    def record(self, kind: str, nbytes: int, seconds: float,
               raw_nbytes: Optional[int] = None) -> None:
        """Account one already-costed operation.

        ``raw_nbytes`` (default: ``nbytes``) is the dense baseline size
        when a codec shrank the payload; the difference surfaces under
        the ``codec:<kind>`` reporting dimension of
        :meth:`CommStats.codec_savings_by_kind` without ever entering
        ``total_bytes`` — wire totals stay what actually crossed.

        With a fault injector attached, transient drops/timeouts of the
        operation are charged first (one ``retry:<kind>`` record per
        failed attempt: re-sent payload plus detection delay and
        exponential backoff), then the successful send.  Retries re-send
        the *encoded* payload, so they carry the same raw/wire pair.
        """
        if not math.isfinite(nbytes):
            raise ValueError(f"bytes must be finite, got {nbytes}")
        nbytes = int(nbytes)
        if not math.isfinite(seconds):
            raise ValueError(f"seconds must be finite, got {seconds}")
        if nbytes < 0 or seconds < 0:
            raise ValueError("bytes and seconds must be >= 0")
        raw_nbytes = nbytes if raw_nbytes is None else int(raw_nbytes)
        if raw_nbytes < nbytes:
            raise ValueError(
                f"raw bytes ({raw_nbytes}) below wire bytes ({nbytes})"
            )
        injector = self.injector
        if injector is not None and not kind.startswith(FAULT_PREFIXES):
            faults = injector.transport_faults(kind)
            for attempt, fault in enumerate(faults):
                self._commit(
                    "retry:" + kind, nbytes,
                    injector.retry_seconds(attempt, seconds, fault),
                    raw_nbytes,
                )
        self._commit(kind, nbytes, seconds, raw_nbytes)

    def _commit(self, kind: str, nbytes: int, seconds: float,
                raw_nbytes: int) -> None:
        self.records.append(CommRecord(kind, nbytes, seconds, raw_nbytes))
        self._stats.total_bytes += nbytes
        self._stats.total_seconds += seconds
        self._stats.bytes_by_kind[kind] = (
            self._stats.bytes_by_kind.get(kind, 0) + nbytes
        )
        self._stats.seconds_by_kind[kind] = (
            self._stats.seconds_by_kind.get(kind, 0.0) + seconds
        )
        self._stats.raw_bytes_by_kind[kind] = (
            self._stats.raw_bytes_by_kind.get(kind, 0) + raw_nbytes
        )

    def transfer(self, kind: str, nbytes: int,
                 raw_nbytes: Optional[int] = None) -> float:
        """Account a point-to-point transfer; returns its simulated time.

        ``raw_nbytes`` is the dense baseline when ``nbytes`` is an
        encoded payload (see :meth:`record`).
        """
        seconds = self.model.transfer_time(nbytes)
        self.record(kind, nbytes, seconds, raw_nbytes)
        return seconds

    def mark(self) -> int:
        """Position in the ledger, for a later :meth:`relabel_since`."""
        return len(self.records)

    def relabel_since(self, mark: int, prefix: str) -> None:
        """Reclassify every record from ``mark`` on under ``prefix``.

        Crash recovery rolls a tree back and replays it; the aborted
        attempt's traffic was real but produced no model state, so it is
        moved under ``prefix + kind`` (e.g. ``recovery:hist-aggregation``)
        and the per-kind totals are rebuilt from the ledger.  Totals stay
        unchanged; only the classification moves.
        """
        if not 0 <= mark <= len(self.records):
            raise ValueError(
                f"mark {mark} outside the ledger (0..{len(self.records)})"
            )
        changed = False
        for rec in self.records[mark:]:
            if not rec.kind.startswith(FAULT_PREFIXES):
                rec.kind = prefix + rec.kind
                changed = True
        if changed:
            self._rebuild_stats()

    def _rebuild_stats(self) -> None:
        """Recompute per-kind totals by one in-order pass over the ledger
        (same summation order as incremental recording, so the floats of
        unaffected kinds are bit-identical)."""
        stats = CommStats()
        for rec in self.records:
            stats.total_bytes += rec.nbytes
            stats.total_seconds += rec.seconds
            stats.bytes_by_kind[rec.kind] = (
                stats.bytes_by_kind.get(rec.kind, 0) + rec.nbytes
            )
            stats.seconds_by_kind[rec.kind] = (
                stats.seconds_by_kind.get(rec.kind, 0.0) + rec.seconds
            )
            stats.raw_bytes_by_kind[rec.kind] = (
                stats.raw_bytes_by_kind.get(rec.kind, 0) + rec.raw_nbytes
            )
        self._stats = stats

    def snapshot(self) -> CommStats:
        """Copy of the running totals (cheap; safe to diff later)."""
        return CommStats(
            total_bytes=self._stats.total_bytes,
            total_seconds=self._stats.total_seconds,
            bytes_by_kind=dict(self._stats.bytes_by_kind),
            seconds_by_kind=dict(self._stats.seconds_by_kind),
            raw_bytes_by_kind=dict(self._stats.raw_bytes_by_kind),
        )

    @property
    def total_bytes(self) -> int:
        return self._stats.total_bytes

    @property
    def total_seconds(self) -> float:
        return self._stats.total_seconds
