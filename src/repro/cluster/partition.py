"""Data partitioning: horizontal row sharding and vertical column grouping.

Horizontal partitioning slices the instance axis into ``W`` contiguous row
ranges; vertical partitioning assigns each feature to one of ``W`` column
groups.  Column grouping uses the paper's greedy load balancer
(Section 4.2.3): features are assigned, heaviest first, to the group with
the fewest key-value pairs so far — the classic LPT heuristic for the
NP-hard balanced-assignment problem.  Round-robin and hash strategies are
provided for the ablation bench.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..data.dataset import BinnedDataset


def horizontal_row_ranges(num_instances: int,
                          num_workers: int) -> List[np.ndarray]:
    """Contiguous, near-equal row id ranges, one per worker."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    bounds = np.linspace(0, num_instances, num_workers + 1).astype(np.int64)
    return [
        np.arange(bounds[w], bounds[w + 1], dtype=np.int64)
        for w in range(num_workers)
    ]


def horizontal_shards(
    binned: BinnedDataset, num_workers: int
) -> Tuple[List[BinnedDataset], List[np.ndarray]]:
    """Row shards plus each shard's global row ids."""
    ranges = horizontal_row_ranges(binned.num_instances, num_workers)
    shards = [
        binned.select_instances(rows, name=f"{binned.name}-w{w}")
        for w, rows in enumerate(ranges)
    ]
    return shards, ranges


def greedy_column_groups(
    pairs_per_feature: np.ndarray, num_workers: int
) -> List[np.ndarray]:
    """Greedy balanced feature assignment (Section 4.2.3).

    ``pairs_per_feature[f]`` is the number of key-value pairs of feature
    ``f`` (its occurrence count from the global quantile sketches).
    Features are taken heaviest-first and placed on the currently lightest
    group.  Returns one sorted global-feature-id array per worker.
    """
    pairs_per_feature = np.asarray(pairs_per_feature, dtype=np.int64)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    order = np.argsort(-pairs_per_feature, kind="stable")
    heap: List[Tuple[int, int]] = [(0, w) for w in range(num_workers)]
    heapq.heapify(heap)
    groups: List[List[int]] = [[] for _ in range(num_workers)]
    for fid in order:
        load, worker = heapq.heappop(heap)
        groups[worker].append(int(fid))
        heapq.heappush(heap, (load + int(pairs_per_feature[fid]), worker))
    return [np.array(sorted(g), dtype=np.int64) for g in groups]


def round_robin_column_groups(
    num_features: int, num_workers: int
) -> List[np.ndarray]:
    """Feature ``f`` goes to worker ``f % W`` (ablation baseline)."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    return [
        np.arange(w, num_features, num_workers, dtype=np.int64)
        for w in range(num_workers)
    ]


def hash_column_groups(
    num_features: int, num_workers: int, seed: int = 0
) -> List[np.ndarray]:
    """Pseudo-random feature assignment (ablation baseline)."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_workers, size=num_features)
    return [
        np.flatnonzero(assignment == w).astype(np.int64)
        for w in range(num_workers)
    ]


def group_imbalance(
    groups: List[np.ndarray], pairs_per_feature: np.ndarray
) -> float:
    """Max group load over mean group load (1.0 = perfectly balanced)."""
    loads = np.array(
        [pairs_per_feature[g].sum() for g in groups], dtype=np.float64
    )
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def vertical_shards(
    binned: BinnedDataset,
    num_workers: int,
    strategy: str = "greedy",
    seed: int = 0,
) -> Tuple[List[BinnedDataset], List[np.ndarray]]:
    """Column-group shards plus each shard's global feature ids.

    Every shard keeps all ``N`` instances (labels were broadcast in step 5
    of the transformation) with its group's features renumbered from 0.
    """
    pairs = np.zeros(binned.num_features, dtype=np.int64)
    counts = np.bincount(binned.binned.indices,
                         minlength=binned.num_features)
    pairs[: counts.size] = counts
    if strategy == "greedy":
        groups = greedy_column_groups(pairs, num_workers)
    elif strategy == "round-robin":
        groups = round_robin_column_groups(binned.num_features, num_workers)
    elif strategy == "hash":
        groups = hash_column_groups(binned.num_features, num_workers, seed)
    else:
        raise ValueError(f"unknown grouping strategy: {strategy!r}")
    shards = [
        binned.select_features(group, name=f"{binned.name}-g{w}")
        for w, group in enumerate(groups)
    ]
    return shards, groups
