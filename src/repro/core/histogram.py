"""Gradient histograms and their construction kernels (Section 2.1.2).

A gradient histogram summarizes, for every feature and candidate-split bin,
the sum of first- and second-order gradients of the instances whose feature
value falls in that bin.  Its size — ``Sizehist = 2 * D * q * C * 8`` bytes
per tree node (Section 3.1.1) — drives the memory and communication analysis
of the whole paper.

This module provides the :class:`Histogram` container (with the subtraction
technique of Section 2.1.2) and the construction kernels for each storage
pattern and index combination analyzed in Section 3.2:

* :func:`build_rowstore` — row-store + node-to-instance index
  (QD2 / QD4): gather the rows of one node, one pass over their entries.
* :func:`build_colstore_layer` — column-store + instance-to-node index
  (QD1 / XGBoost): one pass over *all* entries per tree layer, scattering
  into the histograms of every active node; no subtraction possible.
* :func:`build_colstore_hybrid` — column-store + the hybrid index of
  Section 5.2.2 (our QD3): per column, either linear-scan the column and
  filter by instance-to-node lookups, or binary-search the node's instance
  list inside the column — whichever is predicted cheaper.
* :func:`build_colstore_columnwise` — column-store + column-wise
  node-to-instance index (pure Yggdrasil mode, Appendix C): direct slices,
  but the index itself costs ``O(nnz)`` per layer to maintain.

All kernels are numpy-vectorized and instrumented: they return the number of
stored entries touched so tests can verify the complexity claims of
Section 3.2.4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.matrix import CSCMatrix, CSRMatrix

BYTES_PER_DOUBLE = 8


def histogram_size_bytes(num_features: int, num_bins: int,
                         gradient_dim: int) -> int:
    """``Sizehist`` of Section 3.1.1 for one tree node."""
    return 2 * num_features * num_bins * gradient_dim * BYTES_PER_DOUBLE


class Histogram:
    """First- and second-order gradient histograms of one tree node.

    ``grad`` and ``hess`` are ``(num_features * num_bins, gradient_dim)``
    arrays stored flat so construction kernels can scatter with a single
    ``bincount`` per gradient dimension.
    """

    __slots__ = ("grad", "hess", "num_features", "num_bins", "gradient_dim")

    def __init__(self, num_features: int, num_bins: int,
                 gradient_dim: int) -> None:
        if num_features < 1 or num_bins < 1 or gradient_dim < 1:
            raise ValueError(
                "num_features, num_bins and gradient_dim must be >= 1"
            )
        self.num_features = num_features
        self.num_bins = num_bins
        self.gradient_dim = gradient_dim
        shape = (num_features * num_bins, gradient_dim)
        self.grad = np.zeros(shape, dtype=np.float64)
        self.hess = np.zeros(shape, dtype=np.float64)

    # -- views ---------------------------------------------------------------

    def grad_view(self) -> np.ndarray:
        """``(num_features, num_bins, gradient_dim)`` view of ``grad``."""
        return self.grad.reshape(
            self.num_features, self.num_bins, self.gradient_dim
        )

    def hess_view(self) -> np.ndarray:
        return self.hess.reshape(
            self.num_features, self.num_bins, self.gradient_dim
        )

    @property
    def nbytes(self) -> int:
        """Actual bytes held — equals ``Sizehist`` for this feature count."""
        return self.grad.nbytes + self.hess.nbytes

    # -- algebra (the subtraction technique) ----------------------------------

    def add_inplace(self, other: "Histogram") -> "Histogram":
        self._check_compatible(other)
        self.grad += other.grad
        self.hess += other.hess
        return self

    def subtract(self, other: "Histogram") -> "Histogram":
        """``self - other`` as a new histogram.

        With ``self`` the parent and ``other`` one child, the result is the
        sibling child (Section 2.1.2): children partition the parent's
        instances, and histogram bins are plain sums of gradients.
        """
        self._check_compatible(other)
        result = Histogram(self.num_features, self.num_bins,
                           self.gradient_dim)
        np.subtract(self.grad, other.grad, out=result.grad)
        np.subtract(self.hess, other.hess, out=result.hess)
        return result

    def copy(self) -> "Histogram":
        result = Histogram(self.num_features, self.num_bins,
                           self.gradient_dim)
        result.grad[:] = self.grad
        result.hess[:] = self.hess
        return result

    def _check_compatible(self, other: "Histogram") -> None:
        if (self.num_features, self.num_bins, self.gradient_dim) != (
            other.num_features, other.num_bins, other.gradient_dim
        ):
            raise ValueError("histogram shapes do not match")

    def allclose(self, other: "Histogram", rtol: float = 1e-9,
                 atol: float = 1e-12) -> bool:
        return (
            np.allclose(self.grad, other.grad, rtol=rtol, atol=atol)
            and np.allclose(self.hess, other.hess, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(features={self.num_features}, bins={self.num_bins}, "
            f"classes={self.gradient_dim})"
        )


def node_totals(rows: np.ndarray, grad: np.ndarray,
                hess: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Total gradient/hessian vectors of the instances on one node."""
    return grad[rows].sum(axis=0), hess[rows].sum(axis=0)


# ---------------------------------------------------------------------------
# Row-store kernel (QD2 horizontal+row, QD4 vertical+row)
# ---------------------------------------------------------------------------

def build_rowstore(
    shard: CSRMatrix,
    rows: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[Histogram, int]:
    """Histogram of one node from a binned row-store shard.

    ``shard`` holds bin indexes as values; ``rows`` are the shard-local row
    ids of the instances on the node (from the node-to-instance index);
    ``grad``/``hess`` are ``(num_local_rows, C)`` gradient matrices.

    Returns the histogram and the number of stored entries touched.
    """
    rows = np.asarray(rows, dtype=np.int64)
    gradient_dim = grad.shape[1]
    hist = Histogram(shard.num_cols, num_bins, gradient_dim)
    lengths = np.diff(shard.indptr)[rows]
    total = int(lengths.sum())
    if total == 0:
        return hist, 0
    starts = shard.indptr[rows]
    offsets = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(lengths)))[:-1], lengths
    )
    entry_pos = np.repeat(starts, lengths) + offsets
    entry_rows = np.repeat(rows, lengths)
    keys = (
        shard.indices[entry_pos].astype(np.int64) * num_bins
        + shard.values[entry_pos]
    )
    size = shard.num_cols * num_bins
    for c in range(gradient_dim):
        hist.grad[:, c] = np.bincount(
            keys, weights=grad[entry_rows, c], minlength=size
        )
        hist.hess[:, c] = np.bincount(
            keys, weights=hess[entry_rows, c], minlength=size
        )
    return hist, total


# ---------------------------------------------------------------------------
# Column-store + instance-to-node kernel (QD1, XGBoost-style)
# ---------------------------------------------------------------------------

def build_colstore_layer(
    shard: CSCMatrix,
    slot_of_instance: np.ndarray,
    num_slots: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[List[Histogram], int]:
    """Histograms of every active node of one layer, one pass over the shard.

    ``slot_of_instance`` maps each shard-local row to a dense slot id in
    ``[0, num_slots)`` — the position of its node within the active layer —
    or ``-1`` for rows no longer on any active node.  This is the
    instance-to-node index of Section 3.2.3: the whole shard is scanned and
    histogram subtraction cannot skip any entries.
    """
    gradient_dim = grad.shape[1]
    hists = [
        Histogram(shard.num_cols, num_bins, gradient_dim)
        for _ in range(num_slots)
    ]
    if shard.nnz == 0 or num_slots == 0:
        return hists, 0
    col_of = np.repeat(
        np.arange(shard.num_cols, dtype=np.int64), np.diff(shard.indptr)
    )
    entry_rows = shard.indices.astype(np.int64)
    slots = slot_of_instance[entry_rows].astype(np.int64)
    active = slots >= 0
    col_of = col_of[active]
    rows = entry_rows[active]
    slots = slots[active]
    bins = shard.values[active].astype(np.int64)
    size = shard.num_cols * num_bins
    keys = slots * size + col_of * num_bins + bins
    for c in range(gradient_dim):
        grad_flat = np.bincount(
            keys, weights=grad[rows, c], minlength=num_slots * size
        )
        hess_flat = np.bincount(
            keys, weights=hess[rows, c], minlength=num_slots * size
        )
        for s in range(num_slots):
            hists[s].grad[:, c] = grad_flat[s * size:(s + 1) * size]
            hists[s].hess[:, c] = hess_flat[s * size:(s + 1) * size]
    return hists, int(shard.nnz)


# ---------------------------------------------------------------------------
# Column-store + hybrid index kernel (QD3, Section 5.2.2 "index plan")
# ---------------------------------------------------------------------------

def build_colstore_hybrid(
    shard: CSCMatrix,
    node_rows: np.ndarray,
    node_of_instance: np.ndarray,
    node_id: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[Histogram, int, int]:
    """Histogram of one node from a binned column-store shard.

    Per column the kernel picks the cheaper of two strategies
    (Section 5.2.2):

    * *linear scan* — read every entry of the column and keep those whose
      instance currently sits on ``node_id`` (instance-to-node index);
      cost ``nnz(column)``.
    * *binary search* — locate each of the node's instances inside the
      column's sorted row-index array (node-to-instance index); cost
      ``|node| * log(nnz(column))``.

    Returns ``(histogram, entries_scanned, searches_performed)``.
    """
    node_rows = np.asarray(node_rows, dtype=np.int64)
    gradient_dim = grad.shape[1]
    hist = Histogram(shard.num_cols, num_bins, gradient_dim)
    scanned = 0
    searched = 0
    grad_v = hist.grad_view()
    hess_v = hist.hess_view()
    node_size = node_rows.size
    for j in range(shard.num_cols):
        col_rows, col_bins = shard.col(j)
        nnz = col_rows.size
        if nnz == 0:
            continue
        log_cost = node_size * max(int(np.log2(nnz)), 1)
        if nnz <= log_cost:
            # linear scan, filter via the instance-to-node index
            scanned += nnz
            keep = node_of_instance[col_rows] == node_id
            rows = col_rows[keep].astype(np.int64)
            bins = col_bins[keep].astype(np.int64)
        else:
            # binary search each node instance inside the column
            searched += node_size
            pos = np.searchsorted(col_rows, node_rows)
            pos = np.minimum(pos, nnz - 1)
            keep = col_rows[pos] == node_rows
            rows = node_rows[keep]
            bins = col_bins[pos[keep]].astype(np.int64)
        if rows.size == 0:
            continue
        for c in range(gradient_dim):
            grad_v[j, :, c] += np.bincount(
                bins, weights=grad[rows, c], minlength=num_bins
            )
            hess_v[j, :, c] += np.bincount(
                bins, weights=hess[rows, c], minlength=num_bins
            )
    return hist, scanned, searched


# ---------------------------------------------------------------------------
# Column-store + column-wise node-to-instance index (pure Yggdrasil mode)
# ---------------------------------------------------------------------------

class ColumnwiseIndex:
    """Column-wise node-to-instance index (Section 3.2.3, Figure 6).

    Every column's entries are kept grouped by tree node, so the entries of
    one node on one column are a contiguous slice — histogram construction
    needs no search at all.  The price is paid at node splitting: every
    column must be reordered, an ``O(nnz)`` pass per layer (``D`` times the
    bookkeeping of the other indexes, Section 3.2.4).
    """

    def __init__(self, shard: CSCMatrix) -> None:
        self.shard = shard
        # per-column permuted entry order, grouped by node
        self.order = [
            np.arange(int(n), dtype=np.int64) for n in shard.col_lengths()
        ]
        # per-column {node_id: (start, end)} slices into ``order``
        self.slices: List[Dict[int, Tuple[int, int]]] = [
            {0: (0, int(n))} for n in shard.col_lengths()
        ]

    def node_entries(self, col: int,
                     node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, bins)`` of one node's entries on one column."""
        lo_hi = self.slices[col].get(node_id)
        if lo_hi is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        lo, hi = lo_hi
        col_rows, col_bins = self.shard.col(col)
        sel = self.order[col][lo:hi]
        return col_rows[sel].astype(np.int64), col_bins[sel].astype(np.int64)

    def update_after_split(self, node_of_instance: np.ndarray,
                           active_nodes: Sequence[int]) -> int:
        """Regroup every column after a layer split; returns entries moved."""
        moved = 0
        active = set(int(n) for n in active_nodes)
        for col in range(self.shard.num_cols):
            col_rows, _ = self.shard.col(col)
            if col_rows.size == 0:
                self.slices[col] = {}
                continue
            nodes = node_of_instance[col_rows.astype(np.int64)]
            order = np.argsort(nodes, kind="stable")
            self.order[col] = order.astype(np.int64)
            moved += order.size
            sorted_nodes = nodes[order]
            bounds = np.flatnonzero(
                np.concatenate(
                    ([True], sorted_nodes[1:] != sorted_nodes[:-1])
                )
            )
            ends = np.concatenate((bounds[1:], [sorted_nodes.size]))
            self.slices[col] = {
                int(sorted_nodes[lo]): (int(lo), int(hi))
                for lo, hi in zip(bounds, ends)
                if int(sorted_nodes[lo]) in active
            }
        return moved


def build_colstore_columnwise(
    index: ColumnwiseIndex,
    node_id: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[Histogram, int]:
    """Histogram of one node using the column-wise index: direct slices."""
    shard = index.shard
    gradient_dim = grad.shape[1]
    hist = Histogram(shard.num_cols, num_bins, gradient_dim)
    grad_v = hist.grad_view()
    hess_v = hist.hess_view()
    touched = 0
    for j in range(shard.num_cols):
        rows, bins = index.node_entries(j, node_id)
        if rows.size == 0:
            continue
        touched += rows.size
        for c in range(gradient_dim):
            grad_v[j, :, c] += np.bincount(
                bins, weights=grad[rows, c], minlength=num_bins
            )
            hess_v[j, :, c] += np.bincount(
                bins, weights=hess[rows, c], minlength=num_bins
            )
    return hist, touched
