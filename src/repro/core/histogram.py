"""Gradient histograms and their construction kernels (Section 2.1.2).

A gradient histogram summarizes, for every feature and candidate-split bin,
the sum of first- and second-order gradients of the instances whose feature
value falls in that bin.  Its size — ``Sizehist = 2 * D * q * C * 8`` bytes
per tree node (Section 3.1.1) — drives the memory and communication analysis
of the whole paper.

This module provides the :class:`Histogram` container (with the subtraction
technique of Section 2.1.2) and the construction kernels for each storage
pattern and index combination analyzed in Section 3.2:

* :func:`build_rowstore` — row-store + node-to-instance index
  (QD2 / QD4): gather the rows of one node, one pass over their entries.
* :func:`build_colstore_layer` — column-store + instance-to-node index
  (QD1 / XGBoost): one pass over *all* entries per tree layer, scattering
  into the histograms of every active node; no subtraction possible.
* :func:`build_colstore_hybrid` — column-store + the hybrid index of
  Section 5.2.2 (our QD3): per column, either linear-scan the column and
  filter by instance-to-node lookups, or binary-search the node's instance
  list inside the column — whichever is predicted cheaper.
* :func:`build_colstore_columnwise` — column-store + column-wise
  node-to-instance index (pure Yggdrasil mode, Appendix C): direct slices,
  but the index itself costs ``O(nnz)`` per layer to maintain.

Histogram construction dominates GBDT computation (Section 3.2.4), so the
kernels run on a reusable-workspace engine:

* :class:`HistogramPool` recycles retired :class:`Histogram` buffers
  (zero-fill instead of fresh allocation) with a ``reset``/``release``
  lifecycle;
* :class:`HistogramBuilder` owns a pool plus grow-only scratch arrays and
  implements all four kernels allocation-free on the hot path, with a
  dedicated **root fast path** (a node holding every shard row keys
  directly off the shard's cached entry keys);
* the innermost scatter-add dispatches to a pluggable
  :class:`~repro.core.kernels.KernelBackend` — the numpy default's
  **fused scatter** collapses the 2·C per-class ``bincount`` calls into C
  single passes over stacked gradient/hessian weights, while the
  optional numba backend compiles unrolled per-entry loops with a
  no-hessian fast path for constant-hessian objectives.

The module-level kernel functions are thin wrappers over a shared default
builder, so existing callers keep working unchanged.  All kernels remain
instrumented: they return the number of stored entries touched so tests can
verify the complexity claims of Section 3.2.4 — the counters are computed
from the same quantities as before and are bit-for-bit unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.matrix import CSCMatrix, CSRMatrix

BYTES_PER_DOUBLE = 8


def histogram_size_bytes(num_features: int, num_bins: int,
                         gradient_dim: int) -> int:
    """``Sizehist`` of Section 3.1.1 for one tree node."""
    return 2 * num_features * num_bins * gradient_dim * BYTES_PER_DOUBLE


class Histogram:
    """First- and second-order gradient histograms of one tree node.

    ``grad`` and ``hess`` are ``(num_features * num_bins, gradient_dim)``
    arrays stored flat so construction kernels can scatter with a single
    ``bincount`` per gradient dimension.  The accumulator ``dtype``
    defaults to float64 (the lossless path every bit-identity contract
    is stated against); backends may request float32 accumulators for
    ablations, and the pool keys buffers by dtype so the two can never
    alias.
    """

    __slots__ = ("grad", "hess", "num_features", "num_bins",
                 "gradient_dim", "dtype")

    def __init__(self, num_features: int, num_bins: int,
                 gradient_dim: int, dtype=np.float64) -> None:
        if num_features < 1 or num_bins < 1 or gradient_dim < 1:
            raise ValueError(
                "num_features, num_bins and gradient_dim must be >= 1"
            )
        self.num_features = num_features
        self.num_bins = num_bins
        self.gradient_dim = gradient_dim
        self.dtype = np.dtype(dtype)
        shape = (num_features * num_bins, gradient_dim)
        self.grad = np.zeros(shape, dtype=self.dtype)
        self.hess = np.zeros(shape, dtype=self.dtype)

    # -- views ---------------------------------------------------------------

    def grad_view(self) -> np.ndarray:
        """``(num_features, num_bins, gradient_dim)`` view of ``grad``."""
        return self.grad.reshape(
            self.num_features, self.num_bins, self.gradient_dim
        )

    def hess_view(self) -> np.ndarray:
        return self.hess.reshape(
            self.num_features, self.num_bins, self.gradient_dim
        )

    @property
    def nbytes(self) -> int:
        """Actual bytes held — equals ``Sizehist`` for this feature count."""
        return self.grad.nbytes + self.hess.nbytes

    # -- algebra (the subtraction technique) ----------------------------------

    def reset(self) -> "Histogram":
        """Zero both buffers in place (pool recycling)."""
        self.grad.fill(0.0)
        self.hess.fill(0.0)
        return self

    def add_inplace(self, other: "Histogram") -> "Histogram":
        self._check_compatible(other)
        self.grad += other.grad
        self.hess += other.hess
        return self

    def subtract(self, other: "Histogram") -> "Histogram":
        """``self - other`` as a new histogram.

        With ``self`` the parent and ``other`` one child, the result is the
        sibling child (Section 2.1.2): children partition the parent's
        instances, and histogram bins are plain sums of gradients.
        """
        self._check_compatible(other)
        result = Histogram(self.num_features, self.num_bins,
                           self.gradient_dim, dtype=self.dtype)
        np.subtract(self.grad, other.grad, out=result.grad)
        np.subtract(self.hess, other.hess, out=result.hess)
        return result

    def copy(self) -> "Histogram":
        result = Histogram(self.num_features, self.num_bins,
                           self.gradient_dim, dtype=self.dtype)
        result.grad[:] = self.grad
        result.hess[:] = self.hess
        return result

    def _check_compatible(self, other: "Histogram") -> None:
        if (self.num_features, self.num_bins, self.gradient_dim,
                self.dtype) != (other.num_features, other.num_bins,
                                other.gradient_dim, other.dtype):
            raise ValueError("histogram shapes do not match")

    def allclose(self, other: "Histogram", rtol: float = 1e-9,
                 atol: float = 1e-12) -> bool:
        return (
            np.allclose(self.grad, other.grad, rtol=rtol, atol=atol)
            and np.allclose(self.hess, other.hess, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(features={self.num_features}, bins={self.num_bins}, "
            f"classes={self.gradient_dim})"
        )


def node_totals(rows: np.ndarray, grad: np.ndarray,
                hess: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Total gradient/hessian vectors of the instances on one node."""
    return grad[rows].sum(axis=0), hess[rows].sum(axis=0)


# ---------------------------------------------------------------------------
# Histogram pool: reset/release lifecycle for retired buffers
# ---------------------------------------------------------------------------

class HistogramPool:
    """Recycler of retired :class:`Histogram` buffers.

    Trainers allocate one histogram per tree node per layer; without reuse
    that is thousands of short-lived ``2·D·q·C`` buffers per tree.  The pool
    keeps released buffers keyed by shape **and accumulator dtype** and
    hands them back zeroed, so the steady-state hot path performs no
    histogram allocation at all.  The dtype key matters once backends can
    request float32 accumulators: without it, a float32 acquire could be
    handed a float64 buffer released by another node's build (same shape,
    wrong precision) and silently accumulate at the wrong width.

    Contract: a caller must not ``release`` a histogram it (or anything
    else) still references — the buffer will be recycled and overwritten.
    Double releases of the same object are detected and ignored.
    """

    def __init__(self, max_retained: int = 256) -> None:
        if max_retained < 0:
            raise ValueError("max_retained must be >= 0")
        self.max_retained = max_retained
        self._free: Dict[Tuple[int, int, int, np.dtype],
                         List[Histogram]] = {}
        self._free_ids: set = set()
        self.hits = 0
        self.misses = 0

    @property
    def retained(self) -> int:
        """Number of buffers currently parked in the pool."""
        return len(self._free_ids)

    def acquire(self, num_features: int, num_bins: int, gradient_dim: int,
                zero: bool = True, dtype=np.float64) -> Histogram:
        """A histogram of the given shape and dtype, recycled when possible.

        ``zero=False`` skips the zero-fill for callers that overwrite every
        bin (the kernels' full-scatter paths).
        """
        key = (num_features, num_bins, gradient_dim, np.dtype(dtype))
        free = self._free.get(key)
        if free:
            hist = free.pop()
            self._free_ids.discard(id(hist))
            self.hits += 1
            if zero:
                hist.reset()
            return hist
        self.misses += 1
        return Histogram(num_features, num_bins, gradient_dim, dtype=dtype)

    def release(self, hist: Optional[Histogram]) -> None:
        """Return a retired histogram for reuse (``None`` is a no-op)."""
        if hist is None or id(hist) in self._free_ids:
            return
        if len(self._free_ids) >= self.max_retained:
            return
        key = (hist.num_features, hist.num_bins, hist.gradient_dim,
               hist.dtype)
        self._free.setdefault(key, []).append(hist)
        self._free_ids.add(id(hist))

    def reset(self) -> int:
        """Drop every parked buffer; returns how many were dropped.

        Plan migration calls this at the tree boundary: the new plan's
        shard shapes produce differently-shaped histograms, so buffers
        pooled under the old plan's keys would never be handed out again
        and would pin memory for the rest of the run.  Hit/miss counters
        are preserved (they describe the whole session).
        """
        dropped = len(self._free_ids)
        self._free.clear()
        self._free_ids.clear()
        return dropped

    def stats(self) -> Dict[str, int]:
        """Pool effectiveness counters: retained buffers, hits, misses."""
        return {
            "retained": self.retained,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self.reset()


# ---------------------------------------------------------------------------
# Histogram builder: reusable workspaces + the four kernels
# ---------------------------------------------------------------------------

class HistogramBuilder:
    """Workspace-owning engine behind the four construction kernels.

    One builder serves one trainer (the in-process simulator shares it
    across simulated workers).  It holds a :class:`HistogramPool` plus
    grow-only scratch arrays for scatter keys and stacked weights, so
    repeated kernel calls on same-scale workloads allocate nothing.

    The innermost scatter-add runs on a pluggable
    :class:`~repro.core.kernels.KernelBackend` (``backend`` accepts a
    registry name, an instance, or ``None`` for the portable numpy
    default); the builder keeps the gather/key-composition machinery and
    hands the backend precomposed keys plus pooled output buffers.
    Trainers with a constant-hessian objective set ``constant_hessian``
    so loop backends can take the no-hessian fast path (bin count times
    the constant — taken only when bit-identical, i.e. at 1.0).
    """

    def __init__(self, pool: Optional[HistogramPool] = None,
                 backend=None) -> None:
        from .kernels import make_backend

        self.pool = pool if pool is not None else HistogramPool()
        self.backend = make_backend(backend)
        #: per-instance hessian value when the objective's hessian is
        #: constant (e.g. 1.0 for square loss); ``None`` otherwise
        self.constant_hessian: Optional[float] = None
        self._scratch: Dict[str, np.ndarray] = {}

    # -- workspaces -----------------------------------------------------------

    def _buf(self, name: str, size: int, dtype) -> np.ndarray:
        """Grow-only scratch array; contents are undefined on entry."""
        buf = self._scratch.get(name)
        if buf is None or buf.size < size:
            capacity = max(size, 1024)
            if buf is not None:
                capacity = max(capacity, 2 * buf.size)
            buf = np.empty(capacity, dtype=dtype)
            self._scratch[name] = buf
        return buf[:size]

    def _iota(self, size: int) -> np.ndarray:
        """``arange(size)`` served from a cached buffer."""
        buf = self._scratch.get("iota")
        if buf is None or buf.size < size:
            capacity = max(size, 1024)
            if buf is not None:
                capacity = max(capacity, 2 * buf.size)
            buf = np.arange(capacity, dtype=np.int64)
            self._scratch["iota"] = buf
        return buf[:size]

    def release(self, hist: Optional[Histogram]) -> None:
        self.pool.release(hist)

    def subtract(self, parent: Histogram, child: Histogram) -> Histogram:
        """``parent - child`` into a pooled buffer (sibling derivation)."""
        parent._check_compatible(child)
        out = self.pool.acquire(parent.num_features, parent.num_bins,
                                parent.gradient_dim, zero=False,
                                dtype=parent.dtype)
        np.subtract(parent.grad, child.grad, out=out.grad)
        np.subtract(parent.hess, child.hess, out=out.hess)
        return out

    # -- the scatter dispatch -------------------------------------------------

    #: kept as an alias of the numpy backend's fusion threshold — tests
    #: and perf notes reference it here
    FUSE_THRESHOLD = 1 << 16

    def _scatter(self, hist: Histogram, keys: np.ndarray,
                 entry_rows: np.ndarray, grad: np.ndarray,
                 hess: np.ndarray, size: int) -> None:
        """Scatter-add gradients and hessians of ``entry_rows`` at ``keys``.

        Dispatches to the builder's kernel backend (see
        :meth:`repro.core.kernels.KernelBackend.scatter` — the numpy
        default fuses the grad/hess passes into one ``bincount`` over
        stacked weights for small nodes).  Every bin of ``hist`` is
        assigned, so callers may acquire the buffer un-zeroed.
        """
        self.backend.scatter(hist, keys, entry_rows, grad, hess, size,
                             hess_const=self.constant_hessian)

    # -- row-store kernel (QD2 / QD4) -----------------------------------------

    def build_rowstore(
        self,
        shard: CSRMatrix,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        num_bins: int,
    ) -> Tuple[Histogram, int]:
        """Histogram of one node from a binned row-store shard.

        ``rows`` are node memberships and therefore assumed distinct.
        Returns the histogram and the number of stored entries touched.
        A node holding every shard row (each tree's root) takes the fast
        path: scatter keys and entry-row ids come straight from the shard's
        cached invariants, skipping the gather machinery entirely.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == shard.num_rows and rows.size:
            return self._rowstore_root(shard, grad, hess, num_bins)
        return self._rowstore_gather(shard, rows, grad, hess, num_bins)

    def _rowstore_root(self, shard: CSRMatrix, grad: np.ndarray,
                       hess: np.ndarray,
                       num_bins: int) -> Tuple[Histogram, int]:
        """Root fast path: the node's entries are the whole shard."""
        gradient_dim = grad.shape[1]
        total = int(shard.nnz)
        if total == 0:
            return self.pool.acquire(shard.num_cols, num_bins,
                                     gradient_dim), 0
        hist = self.pool.acquire(shard.num_cols, num_bins, gradient_dim,
                                 zero=False)
        self._scatter(hist, shard.hist_keys(num_bins),
                      shard.row_of_entries(), grad, hess,
                      shard.num_cols * num_bins)
        return hist, total

    def _rowstore_gather(self, shard: CSRMatrix, rows: np.ndarray,
                         grad: np.ndarray, hess: np.ndarray,
                         num_bins: int) -> Tuple[Histogram, int]:
        """Generic path: gather the node's entries, then scatter."""
        gradient_dim = grad.shape[1]
        lengths = shard.row_lengths()[rows]
        total = int(lengths.sum())
        if total == 0:
            return self.pool.acquire(shard.num_cols, num_bins,
                                     gradient_dim), 0
        hist = self.pool.acquire(shard.num_cols, num_bins, gradient_dim,
                                 zero=False)
        starts = shard.indptr[rows]
        # position of each selected entry: repeat each row's start shifted
        # by the entries already emitted, then add a flat ramp
        entry_pos = np.repeat(starts - np.cumsum(lengths) + lengths,
                              lengths)
        entry_pos += self._iota(total)
        entry_rows = np.repeat(rows, lengths)
        # gather precomposed scatter keys from the shard cache: one take
        # instead of re-deriving feature*num_bins + bin per entry
        keys = self._buf("gather_keys", total, np.int64)
        np.take(shard.hist_keys(num_bins), entry_pos, out=keys)
        self._scatter(hist, keys, entry_rows, grad, hess,
                      shard.num_cols * num_bins)
        return hist, total

    # -- column-store + instance-to-node kernel (QD1) -------------------------

    def build_colstore_layer(
        self,
        shard: CSCMatrix,
        slot_of_instance: np.ndarray,
        num_slots: int,
        grad: np.ndarray,
        hess: np.ndarray,
        num_bins: int,
    ) -> Tuple[List[Histogram], int]:
        """Histograms of every active node of one layer, one shard pass.

        ``slot_of_instance`` maps each shard-local row to a dense slot id
        in ``[0, num_slots)`` — the position of its node within the active
        layer — or ``-1`` for rows no longer on any active node.  This is
        the instance-to-node index of Section 3.2.3: the whole shard is
        scanned and histogram subtraction cannot skip any entries.
        """
        gradient_dim = grad.shape[1]
        if shard.nnz == 0 or num_slots == 0:
            return [
                self.pool.acquire(shard.num_cols, num_bins, gradient_dim)
                for _ in range(num_slots)
            ], 0
        slot_arr = np.asarray(slot_of_instance)
        if slot_arr.dtype != np.int64:
            slot_arr = slot_arr.astype(np.int64)
        nnz = int(shard.nnz)
        size = shard.num_cols * num_bins
        slots = self._buf("layer_slots", nnz, np.int64)
        np.take(slot_arr, shard.indices, out=slots)
        base_keys = shard.hist_keys(num_bins)
        active = self._buf("layer_active", nnz, np.bool_)
        np.greater_equal(slots, 0, out=active)
        if active.all():
            keys = self._buf("layer_keys", nnz, np.int64)
            np.multiply(slots, size, out=keys)
            keys += base_keys
            entry_rows: np.ndarray = shard.indices
        else:
            keys = slots[active]
            keys *= size
            keys += base_keys[active]
            entry_rows = shard.indices[active]
        hists = [
            self.pool.acquire(shard.num_cols, num_bins, gradient_dim,
                              zero=False)
            for _ in range(num_slots)
        ]
        self._scatter_slotted(hists, keys, entry_rows, grad, hess, size,
                              num_slots)
        return hists, nnz

    def _scatter_slotted(self, hists: List[Histogram], keys: np.ndarray,
                         entry_rows: np.ndarray, grad: np.ndarray,
                         hess: np.ndarray, size: int,
                         num_slots: int) -> None:
        """Scatter across a whole layer of slot-prefixed keys (backend
        dispatch; the numpy default fuses all slots into one bincount)."""
        self.backend.scatter_slotted(hists, keys, entry_rows, grad, hess,
                                     size, num_slots,
                                     hess_const=self.constant_hessian)

    # -- column-store + hybrid index kernel (QD3) -----------------------------

    def build_colstore_hybrid(
        self,
        shard: CSCMatrix,
        node_rows: np.ndarray,
        node_of_instance: np.ndarray,
        node_id: int,
        grad: np.ndarray,
        hess: np.ndarray,
        num_bins: int,
    ) -> Tuple[Histogram, int, int]:
        """Histogram of one node from a binned column-store shard.

        Per column the kernel picks the cheaper of two strategies
        (Section 5.2.2):

        * *linear scan* — read every entry of the column and keep those
          whose instance currently sits on ``node_id`` (instance-to-node
          index); cost ``nnz(column)``.
        * *binary search* — locate each of the node's instances inside the
          column's sorted row-index array (node-to-instance index); cost
          ``|node| * log(nnz(column))``.

        The selected entries of all columns are batched into one fused
        scatter instead of 2·C ``bincount`` calls per column.

        Returns ``(histogram, entries_scanned, searches_performed)``.
        """
        node_rows = np.asarray(node_rows, dtype=np.int64)
        gradient_dim = grad.shape[1]
        hist = self.pool.acquire(shard.num_cols, num_bins, gradient_dim)
        scanned = 0
        searched = 0
        node_size = node_rows.size
        col_lengths = shard.col_lengths()
        rows_parts: List[np.ndarray] = []
        keys_parts: List[np.ndarray] = []
        for j in range(shard.num_cols):
            nnz = int(col_lengths[j])
            if nnz == 0:
                continue
            col_rows, col_bins = shard.col(j)
            log_cost = node_size * max(int(np.log2(nnz)), 1)
            if nnz <= log_cost:
                # linear scan, filter via the instance-to-node index
                scanned += nnz
                keep = node_of_instance[col_rows] == node_id
                rows = col_rows[keep]
                bins = col_bins[keep]
            else:
                # binary search each node instance inside the column
                searched += node_size
                pos = np.searchsorted(col_rows, node_rows)
                pos = np.minimum(pos, nnz - 1)
                keep = col_rows[pos] == node_rows
                rows = node_rows[keep]
                bins = col_bins[pos[keep]]
            if rows.size == 0:
                continue
            rows_parts.append(rows)
            keys_parts.append(bins.astype(np.int64) + j * num_bins)
        if keys_parts:
            self._scatter(hist, np.concatenate(keys_parts),
                          np.concatenate(rows_parts), grad, hess,
                          shard.num_cols * num_bins)
        return hist, scanned, searched

    # -- column-store + column-wise index kernel (Yggdrasil mode) -------------

    def build_colstore_columnwise(
        self,
        index: "ColumnwiseIndex",
        node_id: int,
        grad: np.ndarray,
        hess: np.ndarray,
        num_bins: int,
    ) -> Tuple[Histogram, int]:
        """Histogram of one node using the column-wise index: direct
        slices, batched into one fused scatter."""
        shard = index.shard
        gradient_dim = grad.shape[1]
        hist = self.pool.acquire(shard.num_cols, num_bins, gradient_dim)
        touched = 0
        rows_parts: List[np.ndarray] = []
        keys_parts: List[np.ndarray] = []
        for j in range(shard.num_cols):
            rows, bins = index.node_entries(j, node_id)
            if rows.size == 0:
                continue
            touched += rows.size
            rows_parts.append(rows)
            keys_parts.append(bins + j * num_bins)
        if keys_parts:
            self._scatter(hist, np.concatenate(keys_parts),
                          np.concatenate(rows_parts), grad, hess,
                          shard.num_cols * num_bins)
        return hist, touched


#: shared builder behind the module-level kernel functions
_DEFAULT_BUILDER = HistogramBuilder()


def default_builder() -> HistogramBuilder:
    """The process-wide builder used when callers pass no explicit one."""
    return _DEFAULT_BUILDER


# ---------------------------------------------------------------------------
# Row-store kernel (QD2 horizontal+row, QD4 vertical+row)
# ---------------------------------------------------------------------------

def build_rowstore(
    shard: CSRMatrix,
    rows: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
    builder: Optional[HistogramBuilder] = None,
) -> Tuple[Histogram, int]:
    """Histogram of one node from a binned row-store shard.

    ``shard`` holds bin indexes as values; ``rows`` are the shard-local row
    ids of the instances on the node (from the node-to-instance index);
    ``grad``/``hess`` are ``(num_local_rows, C)`` gradient matrices.

    Returns the histogram and the number of stored entries touched.
    """
    return (builder or _DEFAULT_BUILDER).build_rowstore(
        shard, rows, grad, hess, num_bins
    )


# ---------------------------------------------------------------------------
# Column-store + instance-to-node kernel (QD1, XGBoost-style)
# ---------------------------------------------------------------------------

def build_colstore_layer(
    shard: CSCMatrix,
    slot_of_instance: np.ndarray,
    num_slots: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
    builder: Optional[HistogramBuilder] = None,
) -> Tuple[List[Histogram], int]:
    """Histograms of every active node of one layer, one pass over the
    shard (see :meth:`HistogramBuilder.build_colstore_layer`)."""
    return (builder or _DEFAULT_BUILDER).build_colstore_layer(
        shard, slot_of_instance, num_slots, grad, hess, num_bins
    )


# ---------------------------------------------------------------------------
# Column-store + hybrid index kernel (QD3, Section 5.2.2 "index plan")
# ---------------------------------------------------------------------------

def build_colstore_hybrid(
    shard: CSCMatrix,
    node_rows: np.ndarray,
    node_of_instance: np.ndarray,
    node_id: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
    builder: Optional[HistogramBuilder] = None,
) -> Tuple[Histogram, int, int]:
    """Histogram of one node from a binned column-store shard (see
    :meth:`HistogramBuilder.build_colstore_hybrid`)."""
    return (builder or _DEFAULT_BUILDER).build_colstore_hybrid(
        shard, node_rows, node_of_instance, node_id, grad, hess, num_bins
    )


# ---------------------------------------------------------------------------
# Column-store + column-wise node-to-instance index (pure Yggdrasil mode)
# ---------------------------------------------------------------------------

class ColumnwiseIndex:
    """Column-wise node-to-instance index (Section 3.2.3, Figure 6).

    Every column's entries are kept grouped by tree node, so the entries of
    one node on one column are a contiguous slice — histogram construction
    needs no search at all.  The price is paid at node splitting: every
    column must be reordered, an ``O(nnz)`` pass per layer (``D`` times the
    bookkeeping of the other indexes, Section 3.2.4).

    The per-column row/bin arrays are cached as ``int64`` once at
    construction, so neither histogram reads nor index updates re-fetch
    column views or re-cast dtypes.
    """

    def __init__(self, shard: CSCMatrix) -> None:
        self.shard = shard
        lengths = shard.col_lengths()
        # per-column row ids and bin values, cast once (read-only caches)
        self._col_rows: List[np.ndarray] = []
        self._col_bins: List[np.ndarray] = []
        for j in range(shard.num_cols):
            rows, bins = shard.col(j)
            self._col_rows.append(rows.astype(np.int64))
            self._col_bins.append(bins.astype(np.int64))
        # per-column permuted entry order, grouped by node
        self.order = [
            np.arange(int(n), dtype=np.int64) for n in lengths
        ]
        # per-column {node_id: (start, end)} slices into ``order``
        self.slices: List[Dict[int, Tuple[int, int]]] = [
            {0: (0, int(n))} for n in lengths
        ]

    def node_entries(self, col: int,
                     node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, bins)`` of one node's entries on one column."""
        lo_hi = self.slices[col].get(node_id)
        if lo_hi is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        lo, hi = lo_hi
        sel = self.order[col][lo:hi]
        return self._col_rows[col][sel], self._col_bins[col][sel]

    def update_after_split(self, node_of_instance: np.ndarray,
                           active_nodes: Sequence[int]) -> int:
        """Regroup every column after a layer split; returns entries moved."""
        moved = 0
        active = set(int(n) for n in active_nodes)
        for col in range(self.shard.num_cols):
            col_rows = self._col_rows[col]
            if col_rows.size == 0:
                self.slices[col] = {}
                continue
            nodes = node_of_instance[col_rows]
            order = np.argsort(nodes, kind="stable")
            self.order[col] = order
            moved += order.size
            sorted_nodes = nodes[order]
            bounds = np.flatnonzero(
                np.concatenate(
                    ([True], sorted_nodes[1:] != sorted_nodes[:-1])
                )
            )
            ends = np.concatenate((bounds[1:], [sorted_nodes.size]))
            self.slices[col] = {
                int(sorted_nodes[lo]): (int(lo), int(hi))
                for lo, hi in zip(bounds, ends)
                if int(sorted_nodes[lo]) in active
            }
        return moved


def build_colstore_columnwise(
    index: ColumnwiseIndex,
    node_id: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
    builder: Optional[HistogramBuilder] = None,
) -> Tuple[Histogram, int]:
    """Histogram of one node using the column-wise index: direct slices."""
    return (builder or _DEFAULT_BUILDER).build_colstore_columnwise(
        index, node_id, grad, hess, num_bins
    )
