"""Loss functions: predictions, first- and second-order gradients.

GBDT (Section 2.1.1) minimizes a second-order Taylor approximation of the
objective, so each loss exposes the per-instance gradient ``g`` and diagonal
Hessian ``h`` evaluated at the current raw scores.  For multi-class problems
the gradient is a ``C``-dimensional vector per instance (Section 3.1.1),
which is what makes multi-class histograms ``C`` times larger.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_CLIP = 500.0  # avoid overflow in exp


def sigmoid(scores: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(scores, -_CLIP, _CLIP)))


def softmax(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax of an ``(N, C)`` score matrix."""
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class Loss:
    """Interface shared by all objectives.

    ``scores`` are raw additive tree outputs with shape ``(N, C)`` where
    ``C = 1`` for binary and regression objectives.
    """

    #: gradient dimension per instance
    num_outputs: int = 1

    #: the per-instance hessian value when it is the same for every
    #: instance and iteration (``None`` otherwise).  Trainers forward it
    #: to the histogram builder so loop backends can take the no-hessian
    #: fast path: the hessian histogram is just the bin count times this
    #: constant.
    constant_hessian: "float | None" = None

    def init_scores(self, num_instances: int) -> np.ndarray:
        """Initial raw scores before any tree is trained (all zeros)."""
        return np.zeros((num_instances, self.num_outputs), dtype=np.float64)

    def gradients(
        self, labels: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-instance ``(grad, hess)``, both shaped ``(N, C)``."""
        raise NotImplementedError

    def loss(self, labels: np.ndarray, scores: np.ndarray) -> float:
        """Mean loss over the dataset."""
        raise NotImplementedError

    def predict(self, scores: np.ndarray) -> np.ndarray:
        """Transform raw scores into the natural prediction space."""
        raise NotImplementedError


class LogisticLoss(Loss):
    """Binary cross-entropy on labels in ``{0, 1}``."""

    num_outputs = 1

    def gradients(
        self, labels: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
        prob = sigmoid(scores)
        grad = prob - labels
        hess = np.maximum(prob * (1.0 - prob), 1e-16)
        return grad, hess

    def loss(self, labels: np.ndarray, scores: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
        prob = np.clip(sigmoid(scores), 1e-15, 1.0 - 1e-15)
        return float(
            -np.mean(labels * np.log(prob) + (1 - labels) * np.log(1 - prob))
        )

    def predict(self, scores: np.ndarray) -> np.ndarray:
        return sigmoid(scores).ravel()


class SoftmaxLoss(Loss):
    """Multi-class cross-entropy on integer labels ``0..C-1``."""

    def __init__(self, num_classes: int) -> None:
        if num_classes < 3:
            raise ValueError(
                f"SoftmaxLoss requires num_classes >= 3, got {num_classes}"
            )
        self.num_classes = num_classes
        self.num_outputs = num_classes

    def gradients(
        self, labels: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.asarray(labels, dtype=np.int64)
        prob = softmax(scores)
        grad = prob.copy()
        grad[np.arange(labels.size), labels] -= 1.0
        hess = np.maximum(prob * (1.0 - prob), 1e-16)
        return grad, hess

    def loss(self, labels: np.ndarray, scores: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.int64)
        prob = np.clip(softmax(scores), 1e-15, 1.0)
        return float(-np.mean(np.log(prob[np.arange(labels.size), labels])))

    def predict(self, scores: np.ndarray) -> np.ndarray:
        return softmax(scores)


class SquareLoss(Loss):
    """Mean squared error for regression."""

    num_outputs = 1
    constant_hessian = 1.0

    def gradients(
        self, labels: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
        grad = scores - labels
        hess = np.ones_like(scores)
        return grad, hess

    def loss(self, labels: np.ndarray, scores: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
        return float(np.mean((scores - labels) ** 2))

    def predict(self, scores: np.ndarray) -> np.ndarray:
        return scores.ravel()


def make_loss(objective: str, num_classes: int = 2) -> Loss:
    """Factory keyed by :attr:`repro.config.TrainConfig.objective`."""
    if objective == "binary":
        return LogisticLoss()
    if objective == "multiclass":
        return SoftmaxLoss(num_classes)
    if objective == "regression":
        return SquareLoss()
    raise ValueError(f"unknown objective: {objective!r}")
