"""Single-process reference GBDT trainer.

This is the oracle every distributed quadrant is validated against: it
grows trees layer-wise with the histogram-based algorithm of Section 2.1.2
(including histogram subtraction) using the row-store + node-to-instance
kernel.  The distributed systems in :mod:`repro.systems` must produce
identical trees on the same binned dataset — only their communication and
data-management behaviour differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..config import TrainConfig
from ..data.dataset import BinnedDataset, Dataset, bin_dataset
from .histogram import (
    Histogram,
    HistogramBuilder,
    default_builder,
    node_totals,
)
from .indexing import NodeToInstanceIndex
from .loss import Loss, make_loss
from .metrics import auc, multiclass_accuracy, rmse
from .placement import layer_placements_rowstore
from .split import SplitInfo, find_best_split, leaf_weight
from .tree import Tree, TreeEnsemble, layer_nodes


@dataclass
class EvalRecord:
    """Validation metrics after one boosting round."""

    tree_index: int
    metric_name: str
    metric_value: float
    train_loss: float


@dataclass
class TrainResult:
    """Everything ``fit`` produces: the model plus its learning curve.

    ``best_iteration`` is set when early stopping triggers: the tree
    index with the best validation metric.
    """

    ensemble: TreeEnsemble
    evals: List[EvalRecord] = field(default_factory=list)
    best_iteration: Optional[int] = None


#: metrics where larger is better; others are minimized
_MAXIMIZE_METRICS = frozenset({"auc", "accuracy"})


def metric_improved(name: str, candidate: float, incumbent: float) -> bool:
    """Whether ``candidate`` beats ``incumbent`` for metric ``name``."""
    if name in _MAXIMIZE_METRICS:
        return candidate > incumbent
    return candidate < incumbent


class GBDT:
    """Reference (single-process) gradient boosted decision trees."""

    def __init__(self, config: TrainConfig,
                 builder: Optional[HistogramBuilder] = None) -> None:
        self.config = config
        # one workspace-owning kernel engine per trainer; its histogram
        # pool recycles every per-node buffer across layers and trees,
        # and config.backend selects the scatter kernel implementation
        self.builder = (
            builder if builder is not None
            else HistogramBuilder(backend=config.backend or None)
        )
        self.builder.constant_hessian = make_loss(
            config.objective, config.num_classes).constant_hessian

    # -- public API ----------------------------------------------------------

    def fit(
        self,
        train: Dataset,
        valid: Optional[Dataset] = None,
        binned: Optional[BinnedDataset] = None,
        early_stopping_rounds: Optional[int] = None,
    ) -> TrainResult:
        """Train ``config.num_trees`` trees.

        ``binned`` may be supplied to reuse a pre-quantized dataset (the
        distributed systems and the oracle must share one binning for
        their trees to be comparable).  With ``early_stopping_rounds``
        (requires ``valid``), training stops after that many rounds
        without validation improvement and ``best_iteration`` is set.
        """
        cfg = self.config
        if early_stopping_rounds is not None:
            if valid is None:
                raise ValueError(
                    "early stopping requires a validation dataset"
                )
            if early_stopping_rounds < 1:
                raise ValueError("early_stopping_rounds must be >= 1")
        if binned is None:
            binned = bin_dataset(train, cfg.num_candidates)
        loss = make_loss(cfg.objective, cfg.num_classes)
        ensemble = TreeEnsemble(loss.num_outputs, cfg.learning_rate,
                                objective=cfg.objective,
                                num_classes=cfg.num_classes)
        result = TrainResult(ensemble)
        scores = loss.init_scores(train.num_instances)
        valid_scores = (
            loss.init_scores(valid.num_instances) if valid is not None
            else None
        )
        best_metric: Optional[float] = None
        rng = np.random.default_rng(cfg.seed)
        for t in range(cfg.num_trees):
            grad, hess = loss.gradients(train.labels, scores)
            sample_rows, feature_mask = _draw_samples(cfg, binned, rng)
            tree, leaf_of_instance = grow_tree(
                cfg, binned, grad, hess,
                sample_rows=sample_rows, feature_mask=feature_mask,
                builder=self.builder,
            )
            ensemble.append(tree)
            if sample_rows is None:
                scores += cfg.learning_rate * leaf_matrix(
                    tree, leaf_of_instance)
            else:
                # out-of-sample rows must be routed through the tree
                scores += cfg.learning_rate * tree.predict(train.csc())
            if valid is not None:
                valid_scores += cfg.learning_rate * tree.predict(valid.csc())
                record = evaluate(
                    loss, valid, valid_scores, t,
                    train_loss=loss.loss(train.labels, scores),
                )
                result.evals.append(record)
                if best_metric is None or metric_improved(
                    record.metric_name, record.metric_value, best_metric
                ):
                    best_metric = record.metric_value
                    result.best_iteration = t
                elif (
                    early_stopping_rounds is not None
                    and t - result.best_iteration >= early_stopping_rounds
                ):
                    break
        return result

    def predict(self, ensemble: TreeEnsemble, dataset: Dataset) -> np.ndarray:
        """Predictions in the objective's natural space."""
        loss = make_loss(self.config.objective, self.config.num_classes)
        return loss.predict(ensemble.raw_scores(dataset.csc()))


def _draw_samples(cfg: TrainConfig, binned: BinnedDataset,
                  rng: np.random.Generator):
    """Per-tree row sample and feature mask (None when sampling is off)."""
    sample_rows = None
    feature_mask = None
    if cfg.subsample < 1.0:
        count = max(int(round(cfg.subsample * binned.num_instances)), 2)
        sample_rows = np.sort(
            rng.choice(binned.num_instances, size=count, replace=False)
        )
    if cfg.colsample < 1.0:
        count = max(int(round(cfg.colsample * binned.num_features)), 1)
        chosen = rng.choice(binned.num_features, size=count,
                            replace=False)
        feature_mask = np.zeros(binned.num_features, dtype=bool)
        feature_mask[chosen] = True
    return sample_rows, feature_mask


def evaluate(
    loss: Loss,
    valid: Dataset,
    valid_scores: np.ndarray,
    tree_index: int,
    train_loss: float,
) -> EvalRecord:
    """Validation metric matching the paper's figures: AUC for binary
    tasks, accuracy for multi-class, RMSE for regression."""
    preds = loss.predict(valid_scores)
    if valid.task == "binary":
        name, value = "auc", auc(valid.labels, preds)
    elif valid.task == "multiclass":
        name, value = "accuracy", multiclass_accuracy(valid.labels, preds)
    else:
        name, value = "rmse", rmse(valid.labels, preds)
    return EvalRecord(tree_index, name, value, train_loss)


def leaf_matrix(tree: Tree, leaf_of_instance: np.ndarray) -> np.ndarray:
    """Per-instance leaf weights from the training-time leaf assignment.

    A lookup table indexed by leaf id replaces the per-leaf boolean masks
    (O(leaves·N)) with one gather.  Rows outside the tree's sample carry
    leaf id ``-1``, which lands on the table's trailing all-zero row.
    """
    max_node = max(tree.nodes) if tree.nodes else 0
    lut = np.zeros((max_node + 2, tree.gradient_dim))
    for node_id, node in tree.nodes.items():
        if node.is_leaf:
            lut[node_id] = node.weight
    return lut[leaf_of_instance]


def grow_tree(
    cfg: TrainConfig,
    binned: BinnedDataset,
    grad: np.ndarray,
    hess: np.ndarray,
    sample_rows: Optional[np.ndarray] = None,
    feature_mask: Optional[np.ndarray] = None,
    builder: Optional[HistogramBuilder] = None,
) -> Tuple[Tree, np.ndarray]:
    """Grow one tree on the full binned dataset (oracle path).

    Dispatches on ``cfg.growth``: layer-wise (the paper's strategy) or
    leaf-wise best-first.  ``sample_rows`` / ``feature_mask`` implement
    per-tree stochastic GBDT (rows outside the sample get leaf id -1;
    masked-out features are never split on).  ``builder`` supplies the
    kernel engine (the process-wide default when omitted).  Returns the
    tree and each instance's final leaf id.
    """
    if builder is None:
        builder = default_builder()
    if cfg.growth == "leafwise":
        if sample_rows is not None or feature_mask is not None:
            raise ValueError(
                "sampling is only implemented for layer-wise growth"
            )
        return grow_tree_leafwise(cfg, binned, grad, hess, builder=builder)
    num_instances = binned.num_instances
    tree = Tree(cfg.num_layers, grad.shape[1])
    index = NodeToInstanceIndex(num_instances, rows=sample_rows)
    stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {
        0: node_totals(index.rows_of(0), grad, hess)
    }
    hist_store: Dict[int, Histogram] = {}
    active: Set[int] = {0}

    for layer in range(cfg.num_layers - 1):
        nodes = [n for n in layer_nodes(layer) if n in active]
        if not nodes:
            break
        build_histograms_with_subtraction(
            binned, index, nodes, grad, hess, hist_store, builder=builder
        )
        splits: Dict[int, SplitInfo] = {}
        for node in nodes:
            split = decide_split(cfg, binned, index, hist_store[node],
                                 stats[node], node,
                                 feature_mask=feature_mask)
            if split is None:
                tree.set_leaf(node, leaf_weight(*stats[node],
                                                cfg.reg_lambda))
                active.discard(node)
                index.retire_node(node)
                builder.release(hist_store.pop(node, None))
            else:
                splits[node] = split
        placements = layer_placements_rowstore(
            binned.binned, index, splits,
            search_keys=binned.search_keys(),
        )
        for node, split in splits.items():
            tree.set_split(node, split,
                           binned.threshold_of(split.feature, split.bin))
            left, right = 2 * node + 1, 2 * node + 2
            index.split_node(node, placements[node], left, right)
            stats[left] = node_totals(index.rows_of(left), grad, hess)
            stats[right] = node_totals(index.rows_of(right), grad, hess)
            active.discard(node)
            active.update((left, right))
    # Whatever is still active at the bottom becomes a leaf.
    for node in sorted(active):
        tree.set_leaf(node, leaf_weight(*stats[node], cfg.reg_lambda))
        index.retire_node(node)
    for hist in hist_store.values():
        builder.release(hist)
    hist_store.clear()
    return tree, index.node_of_instance.copy()


def grow_tree_leafwise(
    cfg: TrainConfig,
    binned: BinnedDataset,
    grad: np.ndarray,
    hess: np.ndarray,
    builder: Optional[HistogramBuilder] = None,
) -> Tuple[Tree, np.ndarray]:
    """Best-first growth: always split the leaf with the highest gain.

    LightGBM's strategy; bounded by both ``cfg.num_layers`` (depth) and
    ``cfg.effective_max_leaves``.  Histogram subtraction still applies:
    after a split, the smaller child is built and the sibling derived
    from the retained parent histogram.
    """
    import heapq

    if builder is None:
        builder = default_builder()
    num_instances = binned.num_instances
    tree = Tree(cfg.num_layers, grad.shape[1])
    index = NodeToInstanceIndex(num_instances)
    stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {
        0: node_totals(index.rows_of(0), grad, hess)
    }
    hist_store: Dict[int, Histogram] = {}

    def candidate(node: int):
        """(neg-gain-ordered heap entry) or None if the node can't split."""
        max_layer_node = 2 ** (cfg.num_layers - 1) - 2
        if node > max_layer_node:  # already at the deepest split layer
            return None
        split = decide_split(cfg, binned, index, hist_store[node],
                             stats[node], node)
        if split is None:
            return None
        return (-split.gain, node, split)

    hist, _ = builder.build_rowstore(binned.binned, index.rows_of(0),
                                     grad, hess, binned.num_bins)
    hist_store[0] = hist
    heap = []
    entry = candidate(0)
    if entry is not None:
        heapq.heappush(heap, entry)
    num_leaves = 1
    while heap and num_leaves < cfg.effective_max_leaves:
        _, node, split = heapq.heappop(heap)
        placements = layer_placements_rowstore(
            binned.binned, index, {node: split},
            search_keys=binned.search_keys(),
        )
        tree.set_split(node, split,
                       binned.threshold_of(split.feature, split.bin))
        left, right = 2 * node + 1, 2 * node + 2
        index.split_node(node, placements[node], left, right)
        num_leaves += 1
        stats[left] = node_totals(index.rows_of(left), grad, hess)
        stats[right] = node_totals(index.rows_of(right), grad, hess)
        small = index.smaller_child(left, right)
        large = right if small == left else left
        child_hist, _ = builder.build_rowstore(
            binned.binned, index.rows_of(small), grad, hess,
            binned.num_bins,
        )
        hist_store[small] = child_hist
        hist_store[large] = builder.subtract(hist_store[node], child_hist)
        builder.release(hist_store.pop(node))
        for child in (left, right):
            entry = candidate(child)
            if entry is not None:
                heapq.heappush(heap, entry)
    # everything not split becomes a leaf
    for node in index.active_nodes():
        tree.set_leaf(node, leaf_weight(*stats[node], cfg.reg_lambda))
        index.retire_node(node)
        builder.release(hist_store.pop(node, None))
    return tree, index.node_of_instance.copy()


def build_histograms_with_subtraction(
    binned: BinnedDataset,
    index: NodeToInstanceIndex,
    nodes: List[int],
    grad: np.ndarray,
    hess: np.ndarray,
    hist_store: Dict[int, Histogram],
    builder: Optional[HistogramBuilder] = None,
) -> int:
    """Fill ``hist_store`` for ``nodes`` using the subtraction technique.

    Sibling pairs: build only the child with fewer instances, derive the
    other from the retained parent histogram (Section 2.1.2).  Returns the
    number of stored entries scanned.
    """
    if builder is None:
        builder = default_builder()
    scanned = 0
    done: Set[int] = set()
    for node in nodes:
        if node in done:
            continue
        parent = (node - 1) // 2 if node > 0 else -1
        sibling = (node + 1 if node % 2 == 1 else node - 1) if node else -1
        if (
            node > 0 and sibling in nodes
            and parent in hist_store
        ):
            small = index.smaller_child(min(node, sibling),
                                        max(node, sibling))
            large = sibling if small == node else node
            hist, touched = builder.build_rowstore(
                binned.binned, index.rows_of(small), grad, hess,
                binned.num_bins,
            )
            scanned += touched
            hist_store[small] = hist
            hist_store[large] = builder.subtract(hist_store[parent], hist)
            builder.release(hist_store.pop(parent))
            done.update((small, large))
        else:
            hist, touched = builder.build_rowstore(
                binned.binned, index.rows_of(node), grad, hess,
                binned.num_bins,
            )
            scanned += touched
            hist_store[node] = hist
            done.add(node)
    return scanned


def decide_split(
    cfg: TrainConfig,
    binned: BinnedDataset,
    index: NodeToInstanceIndex,
    hist: Histogram,
    node_stats: Tuple[np.ndarray, np.ndarray],
    node: int,
    feature_mask: Optional[np.ndarray] = None,
) -> Optional[SplitInfo]:
    """Best split of a node, or ``None`` when it should become a leaf.

    ``feature_mask`` (boolean per feature) restricts the search to the
    tree's column sample: masked-out features report a single bin, which
    admits no split.
    """
    if index.count_of(node) < max(2, 2 * cfg.min_node_instances):
        return None
    bins = binned.bins_per_feature
    if feature_mask is not None:
        bins = np.where(feature_mask, bins, 1)
    split = find_best_split(
        hist, node_stats[0], node_stats[1], cfg.reg_lambda, cfg.reg_gamma,
        bins,
    )
    if split is not None and split.gain < cfg.min_split_gain:
        return None
    return split
