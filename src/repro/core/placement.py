"""Instance placement after node splitting (Section 2.2.1 / 4.2.2).

Once a layer's best splits are known, every instance on a split node moves
to the left or right child.  This module computes, for each split node, a
boolean ``go_left`` array aligned with the node's row list — in one
vectorized pass over the shard per layer, so node splitting stays ``O(rows
+ entries touched)`` per layer as Section 3.2.4 requires.

Row-store and column-store variants are provided; the vertical quadrants
encode the result as bitmaps (:mod:`repro.cluster.bitmap`) before
broadcasting it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..data.matrix import CSCMatrix, CSRMatrix
from .indexing import NodeToInstanceIndex
from .split import SplitInfo


def rowstore_search_keys(shard: CSRMatrix) -> np.ndarray:
    """Sorted composite keys ``row * (D + 1) + column`` of a CSR shard.

    Rows ascend across the array and columns ascend within each row, so
    the composite is globally sorted — a single ``searchsorted`` then
    locates the entry of any ``(row, feature)`` pair in ``O(log nnz)``.
    Systems precompute this once per shard so node splitting costs
    ``O(rows_on_split_nodes * log nnz)`` per layer (the Section 3.2.4
    bound), instead of a full ``O(nnz)`` scan.
    """
    row_of = np.repeat(
        np.arange(shard.num_rows, dtype=np.int64), np.diff(shard.indptr)
    )
    return row_of * (shard.num_cols + 1) + shard.indices


def layer_placements_rowstore(
    shard: CSRMatrix,
    index: NodeToInstanceIndex,
    splits: Dict[int, SplitInfo],
    feature_offset: int = 0,
    search_keys: np.ndarray = None,
) -> Dict[int, np.ndarray]:
    """``go_left`` per split node from a binned row-store shard.

    ``splits`` maps node id to its chosen split with *global* feature ids;
    ``feature_offset`` is the global id of the shard's first column (zero
    for horizontal shards, the group offset for vertical ones).  Nodes
    whose split feature lies outside the shard are skipped — in vertical
    partitioning only the owner worker can compute a node's placement.

    ``search_keys`` is the precomputed :func:`rowstore_search_keys` array
    (built on the fly when omitted).
    """
    local_splits = {
        node: split for node, split in splits.items()
        if 0 <= split.feature - feature_offset < shard.num_cols
    }
    if not local_splits:
        return {}
    if search_keys is None:
        search_keys = rowstore_search_keys(shard)
    width = shard.num_cols + 1
    nnz = search_keys.size
    placements: Dict[int, np.ndarray] = {}
    for node, split in local_splits.items():
        node_rows = index.rows_of(node)
        go_left = np.full(node_rows.size, split.default_left, dtype=bool)
        if node_rows.size:
            keys = node_rows * width + (split.feature - feature_offset)
            pos = np.searchsorted(search_keys, keys)
            pos = np.minimum(pos, max(nnz - 1, 0))
            present = (search_keys[pos] == keys) if nnz else \
                np.zeros(node_rows.size, dtype=bool)
            go_left[present] = shard.values[pos[present]] <= split.bin
        placements[node] = go_left
    return placements


def layer_placements_colstore(
    shard: CSCMatrix,
    index: NodeToInstanceIndex,
    splits: Dict[int, SplitInfo],
    feature_offset: int = 0,
) -> Dict[int, np.ndarray]:
    """Column-store variant: slice the split feature's column directly."""
    placements: Dict[int, np.ndarray] = {}
    for node, split in splits.items():
        local_fid = split.feature - feature_offset
        if not 0 <= local_fid < shard.num_cols:
            continue
        node_rows = index.rows_of(node)
        go_left = np.full(node_rows.size, split.default_left, dtype=bool)
        col_rows, col_bins = shard.col(local_fid)
        pos = np.searchsorted(node_rows, col_rows)
        pos = np.minimum(pos, max(node_rows.size - 1, 0))
        if node_rows.size:
            present = node_rows[pos] == col_rows
            go_left[pos[present]] = col_bins[present] <= split.bin
        placements[node] = go_left
    return placements
