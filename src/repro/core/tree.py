"""Decision-tree structure shared by every trainer.

Trees are grown layer-wise to at most ``L`` layers (the paper's ``L``) and
stored in heap order: node ``i`` has children ``2i + 1`` and ``2i + 2``.
A :class:`Tree` is a passive record — trainers decide splits; the tree only
stores them and evaluates predictions on raw feature matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..data.matrix import CSCMatrix
from .split import SplitInfo


@dataclass
class TreeNode:
    """One node: either an internal split or a leaf with a weight vector."""

    node_id: int
    split: Optional[SplitInfo] = None
    threshold: float = 0.0   # raw-value cut corresponding to split.bin
    weight: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def left_child(self) -> int:
        return 2 * self.node_id + 1

    @property
    def right_child(self) -> int:
        return 2 * self.node_id + 2


def layer_of(node_id: int) -> int:
    """0-based layer of a heap-ordered node id."""
    return int(np.log2(node_id + 1))


def layer_nodes(layer: int) -> range:
    """Node ids of one 0-based layer."""
    return range(2 ** layer - 1, 2 ** (layer + 1) - 1)


class Tree:
    """A heap-ordered decision tree with vector-valued leaves."""

    def __init__(self, num_layers: int, gradient_dim: int) -> None:
        if num_layers < 2:
            raise ValueError(f"num_layers must be >= 2, got {num_layers}")
        self.num_layers = num_layers
        self.gradient_dim = gradient_dim
        self.nodes: Dict[int, TreeNode] = {}

    # -- construction --------------------------------------------------------

    def set_split(self, node_id: int, split: SplitInfo,
                  threshold: float) -> None:
        if node_id in self.nodes and not self.nodes[node_id].is_leaf:
            raise ValueError(f"node {node_id} already split")
        self.nodes[node_id] = TreeNode(node_id, split=split,
                                       threshold=float(threshold))

    def set_leaf(self, node_id: int, weight: np.ndarray) -> None:
        weight = np.asarray(weight, dtype=np.float64).reshape(-1)
        if weight.size != self.gradient_dim:
            raise ValueError(
                f"leaf weight dim {weight.size} != {self.gradient_dim}"
            )
        self.nodes[node_id] = TreeNode(node_id, weight=weight)

    def node(self, node_id: int) -> TreeNode:
        return self.nodes[node_id]

    @property
    def num_leaves(self) -> int:
        return sum(1 for n in self.nodes.values() if n.is_leaf)

    @property
    def num_splits(self) -> int:
        return sum(1 for n in self.nodes.values() if not n.is_leaf)

    def internal_nodes(self) -> List[TreeNode]:
        return [n for n in self.nodes.values() if not n.is_leaf]

    # -- prediction ------------------------------------------------------------

    def predict(self, features: CSCMatrix) -> np.ndarray:
        """Leaf weights of every instance, shape ``(N, gradient_dim)``.

        ``features`` holds *raw* values (not bin indexes); internal nodes
        route ``value <= threshold`` left, missing values follow the
        split's default direction.
        """
        leaves = self.assign_leaves(features)
        out = np.zeros((features.num_rows, self.gradient_dim),
                       dtype=np.float64)
        for node_id, node in self.nodes.items():
            if node.is_leaf:
                mask = leaves == node_id
                if mask.any():
                    out[mask] = node.weight
        return out

    def assign_leaves(self, features: CSCMatrix) -> np.ndarray:
        """Leaf node id of every instance."""
        num = features.num_rows
        position = np.zeros(num, dtype=np.int64)
        for layer in range(self.num_layers - 1):
            moved = False
            for node_id in layer_nodes(layer):
                node = self.nodes.get(node_id)
                if node is None or node.is_leaf:
                    continue
                moved = True
                on_node = position == node_id
                split = node.split
                go_left = np.full(num, split.default_left)
                col_rows, col_vals = features.col(split.feature)
                present_left = col_vals <= node.threshold
                go_left[col_rows] = present_left
                left = on_node & go_left
                right = on_node & ~go_left
                position[left] = node.left_child
                position[right] = node.right_child
            if not moved:
                break
        return position

    def predict_row(self, cols: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Leaf weight of a single sparse row (used by examples)."""
        lookup = dict(zip(cols.tolist(), vals.tolist()))
        node_id = 0
        while True:
            node = self.nodes[node_id]
            if node.is_leaf:
                return node.weight
            value = lookup.get(node.split.feature)
            if value is None:
                go_left = node.split.default_left
            else:
                go_left = value <= node.threshold
            node_id = node.left_child if go_left else node.right_child


class TreeEnsemble:
    """The boosted model: a list of trees plus the learning rate.

    ``objective`` and ``num_classes`` are optional serving metadata (the
    same fields :func:`repro.core.serialize.ensemble_to_dict` writes);
    trainers that know the objective set them so a saved model carries
    enough information to pick the right prediction transform without
    the caller re-stating it.  ``None`` means "unknown" — consumers fall
    back on ``gradient_dim``.
    """

    def __init__(self, gradient_dim: int, learning_rate: float,
                 objective: Optional[str] = None,
                 num_classes: Optional[int] = None) -> None:
        self.gradient_dim = gradient_dim
        self.learning_rate = learning_rate
        self.objective = objective
        self.num_classes = num_classes
        self.trees: List[Tree] = []

    def append(self, tree: Tree) -> None:
        if tree.gradient_dim != self.gradient_dim:
            raise ValueError("tree gradient_dim does not match ensemble")
        self.trees.append(tree)

    def __len__(self) -> int:
        return len(self.trees)

    def raw_scores(self, features: CSCMatrix,
                   num_trees: Optional[int] = None) -> np.ndarray:
        """Summed (shrunken) raw scores of the first ``num_trees`` trees."""
        use = self.trees if num_trees is None else self.trees[:num_trees]
        scores = np.zeros((features.num_rows, self.gradient_dim),
                          dtype=np.float64)
        for tree in use:
            scores += self.learning_rate * tree.predict(features)
        return scores
