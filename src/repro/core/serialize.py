"""Model serialization: tree ensembles to and from JSON.

The format is versioned, self-contained (objective, learning rate, tree
structures with raw-value thresholds) and stable across releases, so
models trained by any of the quadrant systems can be shipped to a serving
process that only needs :mod:`repro.core.tree`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .split import SplitInfo
from .tree import Tree, TreeEnsemble

FORMAT_VERSION = 1


def ensemble_to_dict(ensemble: TreeEnsemble,
                     objective: Optional[str] = None,
                     num_classes: Optional[int] = None) -> dict:
    """JSON-ready dict of an ensemble.

    ``objective``/``num_classes`` default to the ensemble's own metadata
    (falling back to ``"binary"``/2 when the ensemble carries none), so
    models trained with metadata attached serialize it without the
    caller re-stating it.
    """
    if objective is None:
        objective = ensemble.objective or "binary"
    if num_classes is None:
        num_classes = ensemble.num_classes or 2
    return {
        "format_version": FORMAT_VERSION,
        "objective": objective,
        "num_classes": num_classes,
        "gradient_dim": ensemble.gradient_dim,
        "learning_rate": ensemble.learning_rate,
        "trees": [_tree_to_dict(tree) for tree in ensemble.trees],
    }


def ensemble_from_dict(payload: dict) -> TreeEnsemble:
    """Inverse of :func:`ensemble_to_dict` (validates the format).

    The returned ensemble carries the payload's ``objective`` and
    ``num_classes`` metadata, so consumers (``repro predict``, the model
    registry) can pick the prediction transform from the model alone.
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version: {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    ensemble = TreeEnsemble(
        gradient_dim=int(payload["gradient_dim"]),
        learning_rate=float(payload["learning_rate"]),
        objective=str(payload.get("objective", "binary")),
        num_classes=int(payload.get("num_classes", 2)),
    )
    for tree_payload in payload["trees"]:
        ensemble.append(_tree_from_dict(tree_payload,
                                        ensemble.gradient_dim))
    return ensemble


def canonical_payload_bytes(payload: dict) -> bytes:
    """Canonical wire encoding of a model payload.

    Sorted keys and minimal separators make the encoding independent of
    dict insertion order, so it is the stable input for checksums and
    the byte size a served model costs to ship.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def payload_checksum(payload: dict) -> str:
    """SHA-256 hex digest of the canonical payload encoding."""
    return hashlib.sha256(canonical_payload_bytes(payload)).hexdigest()


def save_ensemble(ensemble: TreeEnsemble, path: Union[str, Path],
                  objective: Optional[str] = None,
                  num_classes: Optional[int] = None) -> None:
    """Write an ensemble to a JSON file."""
    path = Path(path)
    payload = ensemble_to_dict(ensemble, objective, num_classes)
    path.write_text(json.dumps(payload, indent=1))


def load_ensemble(path: Union[str, Path]) -> TreeEnsemble:
    """Read an ensemble from a JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not a valid model file") from exc
    return ensemble_from_dict(payload)


def _tree_to_dict(tree: Tree) -> dict:
    nodes = {}
    for node_id, node in sorted(tree.nodes.items()):
        if node.is_leaf:
            nodes[str(node_id)] = {"weight": node.weight.tolist()}
        else:
            nodes[str(node_id)] = {
                "feature": node.split.feature,
                "bin": node.split.bin,
                "default_left": node.split.default_left,
                "gain": node.split.gain,
                "threshold": node.threshold,
            }
    return {"num_layers": tree.num_layers, "nodes": nodes}


def _tree_from_dict(payload: dict, gradient_dim: int) -> Tree:
    tree = Tree(int(payload["num_layers"]), gradient_dim)
    for node_key, node_payload in payload["nodes"].items():
        node_id = int(node_key)
        if "weight" in node_payload:
            tree.set_leaf(node_id, np.asarray(node_payload["weight"]))
        else:
            split = SplitInfo(
                feature=int(node_payload["feature"]),
                bin=int(node_payload["bin"]),
                default_left=bool(node_payload["default_left"]),
                gain=float(node_payload["gain"]),
            )
            tree.set_split(node_id, split,
                           float(node_payload["threshold"]))
    return tree
