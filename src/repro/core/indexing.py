"""Indexes between tree nodes and training instances (Section 3.2.1).

The paper identifies three index structures:

* **node-to-instance** (:class:`NodeToInstanceIndex`) — tree node to the
  rows currently on it.  Used by the row-store quadrants (QD2/QD4); enables
  histogram subtraction because a node's rows are directly available.
* **instance-to-node** — row to tree node.  :class:`NodeToInstanceIndex`
  maintains both directions (the forward array *is* the instance-to-node
  index), so QD1's column kernel reads ``node_of_instance`` straight from
  the same object.
* **column-wise node-to-instance** — one index per feature column; lives in
  :class:`repro.core.histogram.ColumnwiseIndex` next to its kernel.

Updates are counting-sort based, ``O(rows)`` per layer, matching the node
splitting complexity of Section 3.2.4.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class NodeToInstanceIndex:
    """Bidirectional node/instance index over one worker's rows.

    ``node_of_instance[i]`` is the tree-node id of local row ``i`` (the
    instance-to-node direction); ``rows_of(node)`` returns the rows of a
    node (the node-to-instance direction), kept as cached contiguous
    arrays.  Row ids here are *local* to the shard.
    """

    def __init__(self, num_instances: int, root: int = 0,
                 rows: np.ndarray = None) -> None:
        """``rows`` restricts the root to a subset (row subsampling);
        excluded rows carry node id ``-1`` and are never tracked."""
        if num_instances < 0:
            raise ValueError("num_instances must be >= 0")
        self.num_instances = num_instances
        if rows is None:
            self.node_of_instance = np.full(num_instances, root,
                                            dtype=np.int32)
            root_rows = np.arange(num_instances, dtype=np.int64)
        else:
            root_rows = np.unique(np.asarray(rows, dtype=np.int64))
            if root_rows.size and (root_rows[0] < 0
                                   or root_rows[-1] >= num_instances):
                raise ValueError("sample rows out of range")
            self.node_of_instance = np.full(num_instances, -1,
                                            dtype=np.int32)
            self.node_of_instance[root_rows] = root
        self._rows: Dict[int, np.ndarray] = {root: root_rows}
        self.updates = 0  # instances moved, for cost assertions

    @classmethod
    def from_assignment(cls,
                        node_of_instance: np.ndarray
                        ) -> "NodeToInstanceIndex":
        """Rebuild an index from a saved instance-to-node assignment.

        This is the checkpoint-restore path: a crashed worker's index is
        reconstructed from the ``node_of_instance`` array captured in a
        :class:`~repro.systems.executor.TreeCheckpoint`.  Rows carrying
        ``-1`` (untracked) stay untracked.
        """
        assignment = np.asarray(node_of_instance, dtype=np.int32)
        index = cls(assignment.size)
        index.node_of_instance = assignment.copy()
        order = np.argsort(assignment, kind="stable")
        nodes, starts = np.unique(assignment[order], return_index=True)
        bounds = np.append(starts, assignment.size)
        index._rows = {
            int(node): order[bounds[i]:bounds[i + 1]].astype(np.int64)
            for i, node in enumerate(nodes) if node >= 0
        }
        return index

    # -- queries -------------------------------------------------------------

    def rows_of(self, node: int) -> np.ndarray:
        """Local rows currently on ``node`` (empty if none)."""
        rows = self._rows.get(node)
        if rows is None:
            return np.empty(0, dtype=np.int64)
        return rows

    def count_of(self, node: int) -> int:
        return int(self.rows_of(node).size)

    def active_nodes(self) -> List[int]:
        return sorted(self._rows)

    def slot_of_instance(self, active_nodes: Sequence[int]) -> np.ndarray:
        """Dense slot id per row for the layer-wise column kernel (QD1).

        Rows on nodes outside ``active_nodes`` get slot ``-1``.
        """
        if len(active_nodes) == 0:
            return np.full(self.num_instances, -1, dtype=np.int64)
        max_node = max(int(n) for n in active_nodes)
        slot_map = np.full(max_node + 2, -1, dtype=np.int64)
        for slot, node in enumerate(active_nodes):
            slot_map[node] = slot
        clipped = np.minimum(self.node_of_instance, max_node + 1)
        return slot_map[clipped]

    # -- updates -------------------------------------------------------------

    def split_node(
        self,
        node: int,
        go_left: np.ndarray,
        left_child: int,
        right_child: int,
    ) -> None:
        """Move the rows of ``node`` to its children.

        ``go_left`` is a boolean array aligned with ``rows_of(node)`` — in
        the vertical quadrants it is exactly the decoded placement bitmap
        broadcast by the split owner (Section 4.2.2).
        """
        rows = self.rows_of(node)
        go_left = np.asarray(go_left, dtype=bool)
        if go_left.size != rows.size:
            raise ValueError(
                f"placement length {go_left.size} != node size {rows.size}"
            )
        left_rows = rows[go_left]
        right_rows = rows[~go_left]
        self.node_of_instance[left_rows] = left_child
        self.node_of_instance[right_rows] = right_child
        del self._rows[node]
        self._rows[left_child] = left_rows
        self._rows[right_child] = right_rows
        self.updates += rows.size

    def retire_node(self, node: int) -> None:
        """Drop a node that became a leaf (its rows need no more tracking
        for histogram purposes, but ``node_of_instance`` keeps the leaf id
        so predictions can be read off the index)."""
        self._rows.pop(node, None)

    def smaller_child(self, left_child: int, right_child: int) -> int:
        """Child with fewer instances — the one to build histograms for
        before obtaining its sibling by subtraction (Section 2.1.2)."""
        if self.count_of(left_child) <= self.count_of(right_child):
            return left_child
        return right_child
