"""Model validation utilities: k-fold cross-validation over the oracle
trainer, reporting per-fold and aggregate metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..config import TrainConfig
from ..data.dataset import Dataset
from .gbdt import GBDT


@dataclass
class FoldResult:
    """Metrics of one cross-validation fold."""

    fold: int
    metric_name: str
    metric_value: float
    num_trees: int


@dataclass
class CrossValidationResult:
    """Per-fold results plus the aggregate."""

    folds: List[FoldResult] = field(default_factory=list)

    @property
    def metric_name(self) -> str:
        return self.folds[0].metric_name if self.folds else ""

    @property
    def mean(self) -> float:
        return float(np.mean([f.metric_value for f in self.folds]))

    @property
    def std(self) -> float:
        return float(np.std([f.metric_value for f in self.folds]))

    def summary(self) -> str:
        return (
            f"{self.metric_name}: {self.mean:.4f} +/- {self.std:.4f} "
            f"over {len(self.folds)} folds"
        )


def cross_validate(
    config: TrainConfig,
    dataset: Dataset,
    num_folds: int = 5,
    seed: int = 0,
    early_stopping_rounds: int = None,
) -> CrossValidationResult:
    """Shuffled k-fold cross-validation with the reference trainer.

    Each fold trains on the other ``k - 1`` folds and reports the final
    validation metric (AUC / accuracy / RMSE by task).
    """
    if num_folds < 2:
        raise ValueError(f"num_folds must be >= 2, got {num_folds}")
    if num_folds > dataset.num_instances:
        raise ValueError("more folds than instances")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.num_instances)
    bounds = np.linspace(0, dataset.num_instances,
                         num_folds + 1).astype(np.int64)
    result = CrossValidationResult()
    for fold in range(num_folds):
        valid_ids = np.sort(order[bounds[fold]:bounds[fold + 1]])
        train_mask = np.ones(dataset.num_instances, dtype=bool)
        train_mask[valid_ids] = False
        train_ids = np.flatnonzero(train_mask)
        train = Dataset(
            dataset.features.select_rows(train_ids),
            dataset.labels[train_ids], dataset.task,
            dataset.num_classes, f"{dataset.name}-fold{fold}-train",
        )
        valid = Dataset(
            dataset.features.select_rows(valid_ids),
            dataset.labels[valid_ids], dataset.task,
            dataset.num_classes, f"{dataset.name}-fold{fold}-valid",
        )
        run = GBDT(config).fit(
            train, valid, early_stopping_rounds=early_stopping_rounds,
        )
        last = run.evals[-1]
        best = (run.best_iteration if run.best_iteration is not None
                else len(run.ensemble) - 1)
        value = run.evals[best].metric_value
        result.folds.append(
            FoldResult(fold, last.metric_name, value,
                       len(run.ensemble))
        )
    return result
