"""Exact greedy split finding and tree growth.

The histogram algorithm (Section 2.1.2) considers only ``q`` candidate
splits per feature; the classic *exact greedy* algorithm (XGBoost's
``tree_method=exact``) enumerates every distinct feature value.  It is
the accuracy ceiling the histogram approximation is judged against — the
``q``-sweep ablation bench quantifies the gap that motivates the paper's
``q = 20`` default.

The implementation presorts each feature column by value once per
dataset, then evaluates all split boundaries of a node with vectorized
prefix sums, handling missing values with the same default-direction
enumeration as :func:`repro.core.split.find_best_split`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..config import TrainConfig
from ..data.dataset import Dataset
from ..data.matrix import CSCMatrix
from .histogram import node_totals
from .indexing import NodeToInstanceIndex
from .split import SplitInfo, leaf_weight
from .tree import Tree, layer_nodes


class PresortedColumns:
    """Per-feature ``(rows, values)`` arrays sorted by value.

    Built once per dataset; node-level split search filters each sorted
    column by the instance-to-node index, preserving value order.
    """

    def __init__(self, csc: CSCMatrix) -> None:
        self.num_features = csc.num_cols
        self.rows: List[np.ndarray] = []
        self.values: List[np.ndarray] = []
        for j in range(csc.num_cols):
            col_rows, col_vals = csc.col(j)
            order = np.argsort(col_vals, kind="stable")
            self.rows.append(col_rows[order].astype(np.int64))
            self.values.append(np.ascontiguousarray(col_vals[order]))

    def column(self, feature: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.rows[feature], self.values[feature]


def _score(grad: np.ndarray, hess: np.ndarray, lam: float) -> np.ndarray:
    return (grad * grad / (hess + lam)).sum(axis=-1)


def exact_best_split(
    presorted: PresortedColumns,
    node_of_instance: np.ndarray,
    node: int,
    grad: np.ndarray,
    hess: np.ndarray,
    grad_total: np.ndarray,
    hess_total: np.ndarray,
    reg_lambda: float,
    reg_gamma: float,
) -> Tuple[Optional[SplitInfo], float]:
    """Best exact split of one node over all features.

    Returns ``(split, threshold)``; ``split.bin`` is unused (set to the
    boundary index) — the raw ``threshold`` carries the cut.  ``None``
    when no boundary has positive gain.
    """
    best: Optional[SplitInfo] = None
    best_threshold = 0.0
    parent = _score(np.asarray(grad_total), np.asarray(hess_total),
                    reg_lambda)
    for feature in range(presorted.num_features):
        col_rows, col_vals = presorted.column(feature)
        if col_rows.size == 0:
            continue
        keep = node_of_instance[col_rows] == node
        rows = col_rows[keep]
        if rows.size < 1:
            continue
        vals = col_vals[keep]
        g_prefix = np.cumsum(grad[rows], axis=0)
        h_prefix = np.cumsum(hess[rows], axis=0)
        # split boundaries sit between distinct consecutive values
        boundaries = np.flatnonzero(vals[1:] > vals[:-1])
        if boundaries.size == 0:
            continue
        gl_present = g_prefix[boundaries]
        hl_present = h_prefix[boundaries]
        missing_g = grad_total - g_prefix[-1]
        missing_h = hess_total - h_prefix[-1]
        for default_left, (gl, hl) in (
            (False, (gl_present, hl_present)),
            (True, (gl_present + missing_g, hl_present + missing_h)),
        ):
            gr = grad_total - gl
            hr = hess_total - hl
            gains = 0.5 * (
                _score(gl, hl, reg_lambda) + _score(gr, hr, reg_lambda)
                - parent
            ) - reg_gamma
            hl_sum = hl.sum(axis=-1)
            hr_sum = hr.sum(axis=-1)
            gains[(hl_sum <= 0.0) | (hr_sum <= 0.0)] = -np.inf
            idx = int(np.argmax(gains))
            gain = float(gains[idx])
            if not np.isfinite(gain) or gain <= 0.0:
                continue
            candidate = SplitInfo(
                feature=feature, bin=int(boundaries[idx]),
                default_left=default_left, gain=gain,
            )
            if candidate.better_than(best):
                best = candidate
                best_threshold = float(vals[boundaries[idx]])
    return best, best_threshold


def grow_tree_exact(
    cfg: TrainConfig,
    dataset: Dataset,
    presorted: PresortedColumns,
    grad: np.ndarray,
    hess: np.ndarray,
) -> Tuple[Tree, np.ndarray]:
    """Layer-wise growth with exact greedy split finding."""
    num_instances = dataset.num_instances
    tree = Tree(cfg.num_layers, grad.shape[1])
    index = NodeToInstanceIndex(num_instances)
    stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {
        0: node_totals(index.rows_of(0), grad, hess)
    }
    active: Set[int] = {0}
    csc = dataset.csc()

    for layer in range(cfg.num_layers - 1):
        nodes = [n for n in layer_nodes(layer) if n in active]
        if not nodes:
            break
        for node in nodes:
            split = None
            threshold = 0.0
            if index.count_of(node) >= max(2, 2 * cfg.min_node_instances):
                split, threshold = exact_best_split(
                    presorted, index.node_of_instance, node, grad, hess,
                    stats[node][0], stats[node][1], cfg.reg_lambda,
                    cfg.reg_gamma,
                )
                if split is not None and split.gain < cfg.min_split_gain:
                    split = None
            if split is None:
                tree.set_leaf(node, leaf_weight(*stats[node],
                                                cfg.reg_lambda))
                active.discard(node)
                index.retire_node(node)
                continue
            tree.set_split(node, split, threshold)
            node_rows = index.rows_of(node)
            go_left = np.full(node_rows.size, split.default_left,
                              dtype=bool)
            col_rows, col_vals = csc.col(split.feature)
            pos = np.searchsorted(node_rows, col_rows)
            pos = np.minimum(pos, max(node_rows.size - 1, 0))
            present = node_rows[pos] == col_rows
            go_left[pos[present]] = col_vals[present] <= threshold
            left, right = 2 * node + 1, 2 * node + 2
            index.split_node(node, go_left, left, right)
            stats[left] = node_totals(index.rows_of(left), grad, hess)
            stats[right] = node_totals(index.rows_of(right), grad, hess)
            active.discard(node)
            active.update((left, right))
    for node in sorted(active):
        tree.set_leaf(node, leaf_weight(*stats[node], cfg.reg_lambda))
        index.retire_node(node)
    return tree, index.node_of_instance.copy()


class ExactGBDT:
    """Single-process GBDT with exact greedy split finding.

    The accuracy ceiling against which the histogram trainers (oracle
    and distributed quadrants) are compared; no binning, no ``q``.
    """

    def __init__(self, config: TrainConfig) -> None:
        self.config = config

    def fit(self, train: Dataset, valid: Optional[Dataset] = None):
        from .gbdt import TrainResult, evaluate
        from .loss import make_loss
        from .tree import TreeEnsemble

        cfg = self.config
        loss = make_loss(cfg.objective, cfg.num_classes)
        presorted = PresortedColumns(train.csc())
        ensemble = TreeEnsemble(loss.num_outputs, cfg.learning_rate,
                                objective=cfg.objective,
                                num_classes=cfg.num_classes)
        result = TrainResult(ensemble)
        scores = loss.init_scores(train.num_instances)
        valid_scores = (
            loss.init_scores(valid.num_instances) if valid is not None
            else None
        )
        for t in range(cfg.num_trees):
            grad, hess = loss.gradients(train.labels, scores)
            tree, leaf_of_instance = grow_tree_exact(
                cfg, train, presorted, grad, hess,
            )
            ensemble.append(tree)
            from .gbdt import leaf_matrix

            scores += cfg.learning_rate * leaf_matrix(tree,
                                                      leaf_of_instance)
            if valid is not None:
                valid_scores += cfg.learning_rate * tree.predict(
                    valid.csc())
                result.evals.append(
                    evaluate(loss, valid, valid_scores, t,
                             train_loss=loss.loss(train.labels, scores))
                )
        return result

    def predict(self, ensemble, dataset: Dataset) -> np.ndarray:
        from .loss import make_loss

        loss = make_loss(self.config.objective, self.config.num_classes)
        return loss.predict(ensemble.raw_scores(dataset.csc()))
