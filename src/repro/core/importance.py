"""Feature importance and model introspection utilities.

Two standard importance measures over a trained ensemble:

* ``"split"`` — how many times each feature is chosen as a split;
* ``"gain"`` — the total split gain (Equation 2) each feature
  contributes.

Plus a plain-text tree dump for debugging and model review.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .tree import Tree, TreeEnsemble


def feature_importance(
    ensemble: TreeEnsemble,
    num_features: int,
    kind: str = "gain",
) -> np.ndarray:
    """Per-feature importance array of length ``num_features``."""
    if kind not in ("gain", "split"):
        raise ValueError(f"unknown importance kind: {kind!r}")
    importance = np.zeros(num_features, dtype=np.float64)
    for tree in ensemble.trees:
        for node in tree.internal_nodes():
            feature = node.split.feature
            if not 0 <= feature < num_features:
                raise ValueError(
                    f"model splits on feature {feature}, outside "
                    f"[0, {num_features})"
                )
            if kind == "gain":
                importance[feature] += max(node.split.gain, 0.0)
            else:
                importance[feature] += 1.0
    return importance


def top_features(
    ensemble: TreeEnsemble,
    num_features: int,
    k: int = 10,
    kind: str = "gain",
) -> List[int]:
    """Feature ids of the ``k`` most important features, best first."""
    importance = feature_importance(ensemble, num_features, kind)
    order = np.argsort(-importance, kind="stable")
    used = order[importance[order] > 0]
    return [int(f) for f in used[:k]]


def dump_tree(tree: Tree, feature_names: Dict[int, str] = None) -> str:
    """Readable indented dump of one tree."""
    lines: List[str] = []

    def name(fid: int) -> str:
        if feature_names and fid in feature_names:
            return feature_names[fid]
        return f"f{fid}"

    def visit(node_id: int, depth: int) -> None:
        node = tree.nodes.get(node_id)
        if node is None:
            return
        pad = "  " * depth
        if node.is_leaf:
            weight = ", ".join(f"{w:+.4f}" for w in node.weight)
            lines.append(f"{pad}leaf {node_id}: [{weight}]")
        else:
            split = node.split
            default = "left" if split.default_left else "right"
            lines.append(
                f"{pad}node {node_id}: {name(split.feature)} <= "
                f"{node.threshold:.6g} (gain {split.gain:.4f}, "
                f"missing -> {default})"
            )
            visit(node.left_child, depth + 1)
            visit(node.right_child, depth + 1)

    visit(0, 0)
    return "\n".join(lines)


def dump_ensemble(ensemble: TreeEnsemble,
                  feature_names: Dict[int, str] = None) -> str:
    """Dump of all trees, separated by headers."""
    parts = []
    for i, tree in enumerate(ensemble.trees):
        parts.append(f"=== tree {i} ===")
        parts.append(dump_tree(tree, feature_names))
    return "\n".join(parts)
