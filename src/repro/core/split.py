"""Split finding on gradient histograms (Equations 1 and 2).

Given a node's histograms and its total gradient/hessian, the best split is
the (feature, bin, default-direction) triple maximizing the gain of
Equation 2.  Instances whose feature value is missing (absent in the sparse
shard) follow a *default direction* chosen per split — both directions are
enumerated, following the treatment of [17] the paper adopts.

Determinism contract: all quadrants must pick identical splits, so ties are
broken by a total order — higher gain, then default-right before
default-left, then lower global feature id, then lower bin.  Worker-local
argmax and the master's cross-worker comparison both honour this order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .histogram import Histogram


@dataclass(frozen=True)
class SplitInfo:
    """The best split of one node.

    ``feature`` is a *global* feature id; ``bin`` means "values in bins
    ``<= bin`` go to the left child"; ``default_left`` tells where instances
    with a missing value go.
    """

    feature: int
    bin: int
    default_left: bool
    gain: float

    def sort_key(self) -> Tuple[float, int, int, int]:
        """Key implementing the determinism contract (smaller is better)."""
        return (-self.gain, int(self.default_left), self.feature, self.bin)

    def better_than(self, other: Optional["SplitInfo"]) -> bool:
        if other is None:
            return True
        return self.sort_key() < other.sort_key()


def leaf_weight(grad_total: np.ndarray, hess_total: np.ndarray,
                reg_lambda: float) -> np.ndarray:
    """Optimal leaf weight vector ``-G / (H + lambda)`` (Equation 1)."""
    return -np.asarray(grad_total) / (np.asarray(hess_total) + reg_lambda)


def _score(grad: np.ndarray, hess: np.ndarray,
           reg_lambda: float) -> np.ndarray:
    """``G^2 / (H + lambda)`` summed over gradient dimensions."""
    return (grad * grad / (hess + reg_lambda)).sum(axis=-1)


def find_best_split(
    hist: Histogram,
    grad_total: np.ndarray,
    hess_total: np.ndarray,
    reg_lambda: float,
    reg_gamma: float,
    bins_per_feature: np.ndarray,
    feature_offset: int = 0,
) -> Optional[SplitInfo]:
    """Best split over every feature summarized in ``hist``.

    ``grad_total`` / ``hess_total`` are the node's full gradient sums (shape
    ``(C,)``), which may exceed the histogram's column sums when values are
    missing — the surplus is the "missing bucket" routed by the default
    direction.  ``bins_per_feature`` gives the number of *valid* bins of each
    feature (features may have fewer than ``q`` distinct quantiles);
    ``feature_offset`` converts local column ids into global feature ids for
    vertically partitioned shards.

    Returns ``None`` when no split has positive gain.
    """
    grad_total = np.asarray(grad_total, dtype=np.float64)
    hess_total = np.asarray(hess_total, dtype=np.float64)
    bins_per_feature = np.asarray(bins_per_feature)
    if bins_per_feature.size != hist.num_features:
        raise ValueError(
            "bins_per_feature length must equal the histogram feature count"
        )

    grad = hist.grad_view()          # (D, q, C)
    hess = hist.hess_view()
    grad_prefix = np.cumsum(grad, axis=1)
    hess_prefix = np.cumsum(hess, axis=1)
    present_grad = grad_prefix[:, -1:, :]   # (D, 1, C)
    present_hess = hess_prefix[:, -1:, :]
    missing_grad = grad_total - present_grad
    missing_hess = hess_total - present_hess

    parent_score = _score(grad_total, hess_total, reg_lambda)

    # Option 0 — missing goes right: left = prefix.
    gl_right = grad_prefix
    hl_right = hess_prefix
    # Option 1 — missing goes left: left = prefix + missing bucket.
    gl_left = grad_prefix + missing_grad
    hl_left = hess_prefix + missing_hess

    gains = np.empty((2, hist.num_features, hist.num_bins), dtype=np.float64)
    for option, (gl, hl) in enumerate(
        ((gl_right, hl_right), (gl_left, hl_left))
    ):
        gr = grad_total - gl
        hr = hess_total - hl
        gains[option] = 0.5 * (
            _score(gl, hl, reg_lambda) + _score(gr, hr, reg_lambda)
            - parent_score
        ) - reg_gamma
        # Children must both receive some hessian mass; empty children give
        # a spurious "gain" equal to -gamma and are never useful.
        hl_sum = hl.sum(axis=-1)
        hr_sum = hr.sum(axis=-1)
        gains[option][(hl_sum <= 0.0) | (hr_sum <= 0.0)] = -np.inf

    # Mask invalid bins: a split at bin b needs b <= bins(f) - 2.
    bin_ids = np.arange(hist.num_bins)
    invalid = bin_ids[None, :] >= (bins_per_feature[:, None] - 1)
    gains[:, invalid] = -np.inf

    flat = int(np.argmax(gains))
    best_gain = float(gains.reshape(-1)[flat])
    if not np.isfinite(best_gain) or best_gain <= 0.0:
        return None
    option, rest = divmod(flat, hist.num_features * hist.num_bins)
    feature, bin_id = divmod(rest, hist.num_bins)
    return SplitInfo(
        feature=feature + feature_offset,
        bin=bin_id,
        default_left=bool(option == 1),
        gain=best_gain,
    )


def split_gain_of(
    hist: Histogram,
    grad_total: np.ndarray,
    hess_total: np.ndarray,
    reg_lambda: float,
    reg_gamma: float,
    feature: int,
    bin_id: int,
    default_left: bool,
) -> float:
    """Gain of one specific split — used by tests against the brute force."""
    grad = hist.grad_view()[feature]
    hess = hist.hess_view()[feature]
    gl = grad[: bin_id + 1].sum(axis=0)
    hl = hess[: bin_id + 1].sum(axis=0)
    if default_left:
        gl = gl + (np.asarray(grad_total) - grad.sum(axis=0))
        hl = hl + (np.asarray(hess_total) - hess.sum(axis=0))
    gr = np.asarray(grad_total) - gl
    hr = np.asarray(hess_total) - hl
    parent = _score(np.asarray(grad_total), np.asarray(hess_total),
                    reg_lambda)
    return float(
        0.5 * (_score(gl, hl, reg_lambda) + _score(gr, hr, reg_lambda)
               - parent) - reg_gamma
    )
