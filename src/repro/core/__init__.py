"""Core GBDT algorithm: histograms, split finding, trees, losses."""
