"""Pluggable compiled-kernel backends for the histogram and predict hot paths.

The paper's quadrant analysis assumes histogram construction and batch
prediction run at hardware speed; interpreter-side scatter loops would
bottleneck every distributed-plan comparison on the wrong thing.  This
module makes the two hot paths *pluggable*: a :class:`KernelBackend`
owns the innermost kernels —

* the **histogram scatter** behind every
  :class:`~repro.core.histogram.HistogramBuilder` construction kernel
  (scatter-add gradients/hessians of binned entries into per-node bins);
* the **level-synchronous predictor** behind
  :class:`~repro.serve.compiler.CompiledEnsemble` (advance every row of
  a batch one tree layer per step) and its uint8 bin-quantized variant.

Three backends are registered:

* ``numpy`` — the always-available portable default: fused ``bincount``
  scatters and vectorized layer-at-a-time traversal (the engine the
  repo's perf history was measured on).
* ``numba`` — optional, auto-detected.  JIT-compiles the module-level
  loop kernels below following the sklearn ``_hist_gradient_boosting``
  idioms: per-entry scatter loops unrolled by 4 so LLVM can
  auto-vectorize, a no-hessian fast path for constant-hessian
  objectives (hessian histogram = bin count x the constant), and
  in-place writes into pooled output buffers so the hot loop allocates
  nothing.  ``fastmath`` stays **off**: additions run in storage order,
  keeping every backend bit-identical to the numpy baseline.
* ``pyloop`` — the *same* loop kernels interpreted instead of
  JIT-compiled.  Hopeless for speed, invaluable for correctness: it
  proves the numba algorithm bit-identical on machines without numba
  (CI's numpy-only job, this repo's test suite) and serves as the
  reference when debugging a miscompiling numba install.

Backend choice is wired through ``TrainConfig.backend``,
``repro train --backend``, ``repro serve-bench --backend`` and the
advisor's plan pricing; ``repro doctor`` reports what is detected and
self-checks bit-identity.  Set ``REPRO_DISABLE_BACKENDS=numba`` (comma
list) to make detection treat an installed backend as absent — the CI
degradation job uses this to prove the numpy fallback.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

import numpy as np

#: packed predictor slot metadata (shared with :mod:`repro.serve.compiler`):
#: | left slot (43 bits) | missing-goes-right (1) | feature id (20) |
FEATURE_BITS = 20
FEATURE_MASK = (1 << FEATURE_BITS) - 1
MISS_BIT = 1 << FEATURE_BITS
CHILD_SHIFT = FEATURE_BITS + 1

#: reserved uint8 bin value marking a missing entry in quantized batches
MISSING_BIN = 255

#: environment variable listing backend names detection must treat as
#: unavailable (comma-separated) — the CI numpy-only job's switch
DISABLE_ENV = "REPRO_DISABLE_BACKENDS"


def _disabled() -> set:
    raw = os.environ.get(DISABLE_ENV, "")
    names = {name.strip() for name in raw.split(",") if name.strip()}
    # the numpy baseline is the registry's availability floor: masking
    # it would leave ``auto`` (and the default) with nothing to resolve
    names.discard("numpy")
    return names


# ---------------------------------------------------------------------------
# The loop kernels (numba-compilable; pyloop runs them interpreted)
# ---------------------------------------------------------------------------
# Every function below is written in the numba-compatible subset: plain
# loops over contiguous arrays, no numpy fancy indexing, module-level
# int constants only.  The ``numba`` backend compiles these exact
# functions with ``njit(fastmath=False)``; the ``pyloop`` backend calls
# them as-is.  Scatter loops are unrolled by 4 (the sklearn
# hist-GBDT hint that lets LLVM auto-vectorize the gather+add), which
# preserves bit-identity: per bin, additions still land in entry order.

def _k_scatter(grad_out, hess_out, keys, entry_rows, grad, hess):
    """Scatter-add grad/hess of each entry at its key (both passes)."""
    n = keys.shape[0]
    for c in range(grad.shape[1]):
        unrolled = 4 * (n // 4)
        for i in range(0, unrolled, 4):
            grad_out[keys[i], c] += grad[entry_rows[i], c]
            grad_out[keys[i + 1], c] += grad[entry_rows[i + 1], c]
            grad_out[keys[i + 2], c] += grad[entry_rows[i + 2], c]
            grad_out[keys[i + 3], c] += grad[entry_rows[i + 3], c]
        for i in range(unrolled, n):
            grad_out[keys[i], c] += grad[entry_rows[i], c]
        unrolled = 4 * (n // 4)
        for i in range(0, unrolled, 4):
            hess_out[keys[i], c] += hess[entry_rows[i], c]
            hess_out[keys[i + 1], c] += hess[entry_rows[i + 1], c]
            hess_out[keys[i + 2], c] += hess[entry_rows[i + 2], c]
            hess_out[keys[i + 3], c] += hess[entry_rows[i + 3], c]
        for i in range(unrolled, n):
            hess_out[keys[i], c] += hess[entry_rows[i], c]


def _k_scatter_no_hess(grad_out, hess_out, keys, entry_rows, grad,
                       hess_const):
    """No-hessian fast path: one gradient pass plus a bin-count pass.

    With a constant per-instance hessian ``h`` the hessian histogram is
    ``count * h`` per bin.  Exactly equal to the scattered sum when
    ``h == 1.0`` (integer-valued sums below 2**53), which is the only
    value trainers hand us (square loss); callers gate on that.
    """
    n = keys.shape[0]
    for c in range(grad.shape[1]):
        unrolled = 4 * (n // 4)
        for i in range(0, unrolled, 4):
            grad_out[keys[i], c] += grad[entry_rows[i], c]
            grad_out[keys[i + 1], c] += grad[entry_rows[i + 1], c]
            grad_out[keys[i + 2], c] += grad[entry_rows[i + 2], c]
            grad_out[keys[i + 3], c] += grad[entry_rows[i + 3], c]
        for i in range(unrolled, n):
            grad_out[keys[i], c] += grad[entry_rows[i], c]
    unrolled = 4 * (n // 4)
    for i in range(0, unrolled, 4):
        hess_out[keys[i], 0] += 1.0
        hess_out[keys[i + 1], 0] += 1.0
        hess_out[keys[i + 2], 0] += 1.0
        hess_out[keys[i + 3], 0] += 1.0
    for i in range(unrolled, n):
        hess_out[keys[i], 0] += 1.0
    if hess_const != 1.0:
        for j in range(hess_out.shape[0]):
            hess_out[j, 0] *= hess_const
    for c in range(1, hess_out.shape[1]):
        for j in range(hess_out.shape[0]):
            hess_out[j, c] = hess_out[j, 0]


def _k_predict(packed, threshold, scaled, tree_root, tree_depth, flat,
               num, has_nan, use, out):
    """Walk every row through trees ``0..use``, accumulating scores.

    ``flat`` is the feature-major batch flattened: row ``i``'s value of
    feature ``f`` lives at ``f * num + i``.  Per row, scores accumulate
    in tree order — the same float additions, in the same order, as the
    numpy layer-synchronous path.
    """
    dim = out.shape[1]
    for t in range(use):
        root = tree_root[t]
        depth = tree_depth[t]
        for i in range(num):
            pos = root
            for _ in range(depth):
                meta = packed[pos]
                value = flat[(meta & FEATURE_MASK) * num + i]
                go_right = value > threshold[pos]
                if has_nan and value != value and (meta & MISS_BIT) != 0:
                    go_right = True
                pos = meta >> CHILD_SHIFT
                if go_right:
                    pos += 1
            for c in range(dim):
                out[i, c] += scaled[pos, c]


def _k_predict_quantized(packed, threshold_bin, scaled, tree_root,
                         tree_depth, flat_bins, num, has_missing, use,
                         out):
    """Quantized traversal: uint8 bin values against int16 bin cuts.

    Bin 255 marks a missing value and follows the packed default
    direction; leaf slots carry threshold 255 so every bin value parks
    (``value > 255`` is false even for the missing sentinel).
    """
    dim = out.shape[1]
    for t in range(use):
        root = tree_root[t]
        depth = tree_depth[t]
        for i in range(num):
            pos = root
            for _ in range(depth):
                meta = packed[pos]
                value = flat_bins[(meta & FEATURE_MASK) * num + i]
                if has_missing and value == MISSING_BIN:
                    go_right = (meta & MISS_BIT) != 0 \
                        and threshold_bin[pos] != MISSING_BIN
                else:
                    go_right = value > threshold_bin[pos]
                pos = meta >> CHILD_SHIFT
                if go_right:
                    pos += 1
            for c in range(dim):
                out[i, c] += scaled[pos, c]


#: kernel name -> interpreted implementation (what numba compiles)
LOOP_KERNELS = {
    "scatter": _k_scatter,
    "scatter_no_hess": _k_scatter_no_hess,
    "predict": _k_predict,
    "predict_quantized": _k_predict_quantized,
}


# ---------------------------------------------------------------------------
# Backend protocol + numpy reference implementation
# ---------------------------------------------------------------------------

class KernelBackend:
    """One engine for the histogram-scatter and predict hot loops.

    The base class *is* the numpy implementation — fused ``bincount``
    scatters and vectorized level-synchronous traversal — so subclasses
    override only the loops they accelerate and inherit the rest.
    Instances own grow-only scratch buffers and must not be shared
    across threads; resolve one per builder/predictor via
    :func:`make_backend`.
    """

    #: registry key
    name = "numpy"
    #: relative histogram-kernel throughput vs numpy (advisor pricing);
    #: numba's factor is pinned by ``bench/backend_bench.py``
    compute_factor = 1.0
    #: larger wins ``auto`` resolution among available backends
    priority = 0

    #: below this many entries the per-call overhead of ``bincount``
    #: dominates its streaming cost, so fusing grad+hess into one call
    #: over stacked weights wins; above it the fusion is a wash and the
    #: doubled-key construction becomes a pure extra memory pass
    FUSE_THRESHOLD = 1 << 16

    def __init__(self) -> None:
        self._scratch: Dict[str, np.ndarray] = {}

    # -- availability ------------------------------------------------------

    @classmethod
    def is_available(cls) -> bool:
        return cls.name not in _disabled()

    @classmethod
    def version(cls) -> str:
        """Toolchain version string shown by ``repro doctor``."""
        return f"numpy {np.__version__}"

    # -- scratch -----------------------------------------------------------

    def _buf(self, key: str, size: int, dtype) -> np.ndarray:
        """Grow-only scratch array; contents undefined on entry."""
        buf = self._scratch.get(key)
        if buf is None or buf.size < size:
            capacity = max(size, 1024)
            if buf is not None:
                capacity = max(capacity, 2 * buf.size)
            buf = np.empty(capacity, dtype=dtype)
            self._scratch[key] = buf
        return buf[:size]

    # -- histogram scatter -------------------------------------------------

    def scatter(self, hist, keys: np.ndarray, entry_rows: np.ndarray,
                grad: np.ndarray, hess: np.ndarray, size: int,
                hess_const: Optional[float] = None) -> None:
        """Scatter-add gradients/hessians of ``entry_rows`` at ``keys``.

        Fills **every** bin of ``hist`` (callers may acquire the buffer
        un-zeroed).  ``hess_const`` hints that all hessians equal that
        constant; backends may take a no-hessian fast path when the
        result stays bit-identical (only ``1.0`` qualifies).
        """
        n = keys.size
        if n <= self.FUSE_THRESHOLD:
            kk = self._buf("fused_keys", 2 * n, np.int64)
            kk[:n] = keys
            np.add(keys, size, out=kk[n:])
            w = self._buf("fused_weights", 2 * n, np.float64)
            for c in range(grad.shape[1]):
                np.take(grad[:, c], entry_rows, out=w[:n])
                np.take(hess[:, c], entry_rows, out=w[n:])
                flat = np.bincount(kk, weights=w, minlength=2 * size)
                hist.grad[:, c] = flat[:size]
                hist.hess[:, c] = flat[size:]
            return
        w = self._buf("fused_weights", n, np.float64)
        for c in range(grad.shape[1]):
            np.take(grad[:, c], entry_rows, out=w)
            hist.grad[:, c] = np.bincount(keys, weights=w, minlength=size)
            np.take(hess[:, c], entry_rows, out=w)
            hist.hess[:, c] = np.bincount(keys, weights=w, minlength=size)

    def scatter_slotted(self, hists, keys: np.ndarray,
                        entry_rows: np.ndarray, grad: np.ndarray,
                        hess: np.ndarray, size: int, num_slots: int,
                        hess_const: Optional[float] = None) -> None:
        """Fused scatter across a whole layer of slot-prefixed keys."""
        n = keys.size
        total_size = num_slots * size
        kk = self._buf("fused_keys", 2 * n, np.int64)
        kk[:n] = keys
        np.add(keys, total_size, out=kk[n:])
        w = self._buf("fused_weights", 2 * n, np.float64)
        for c in range(grad.shape[1]):
            np.take(grad[:, c], entry_rows, out=w[:n])
            np.take(hess[:, c], entry_rows, out=w[n:])
            flat = np.bincount(kk, weights=w, minlength=2 * total_size)
            for s, hist in enumerate(hists):
                hist.grad[:, c] = flat[s * size:(s + 1) * size]
                hist.hess[:, c] = flat[total_size + s * size:
                                       total_size + (s + 1) * size]

    # -- predictor ---------------------------------------------------------

    def advance(self, packed: np.ndarray, threshold: np.ndarray,
                flat: np.ndarray, num: int, root: int, depth: int,
                has_nan: bool) -> np.ndarray:
        """Slot of every row after walking one whole tree
        (level-synchronous: three gathers per layer)."""
        rows = np.arange(num, dtype=np.int64)
        pos = np.full(num, root, dtype=np.int64)
        for _ in range(depth):
            meta = np.take(packed, pos)
            values = np.take(flat, (meta & FEATURE_MASK) * num + rows)
            go_right = values > np.take(threshold, pos)
            if has_nan:
                go_right |= np.isnan(values) & ((meta & MISS_BIT) != 0)
            pos = meta >> CHILD_SHIFT
            pos += go_right
        return pos

    def raw_scores(self, packed: np.ndarray, threshold: np.ndarray,
                   scaled: np.ndarray, tree_root: np.ndarray,
                   tree_depth: np.ndarray, flat: np.ndarray, num: int,
                   has_nan: bool, use: int) -> np.ndarray:
        """Summed shrunken scores of every row over trees ``0..use``."""
        scores = np.zeros((num, scaled.shape[1]), dtype=np.float64)
        for t in range(use):
            pos = self.advance(packed, threshold, flat, num,
                               int(tree_root[t]), int(tree_depth[t]),
                               has_nan)
            scores += np.take(scaled, pos, axis=0)
        return scores

    def advance_quantized(self, packed: np.ndarray,
                          threshold_bin: np.ndarray,
                          flat_bins: np.ndarray, num: int, root: int,
                          depth: int, has_missing: bool) -> np.ndarray:
        """Quantized traversal of one tree over uint8 bin values."""
        rows = np.arange(num, dtype=np.int64)
        pos = np.full(num, root, dtype=np.int64)
        for _ in range(depth):
            meta = np.take(packed, pos)
            values = np.take(flat_bins, (meta & FEATURE_MASK) * num + rows)
            thr = np.take(threshold_bin, pos)
            go_right = values > thr
            if has_missing:
                missing = values == MISSING_BIN
                go_right &= ~missing
                go_right |= (missing & ((meta & MISS_BIT) != 0)
                             & (thr != MISSING_BIN))
            pos = meta >> CHILD_SHIFT
            pos += go_right
        return pos

    def raw_scores_quantized(self, packed: np.ndarray,
                             threshold_bin: np.ndarray,
                             scaled: np.ndarray, tree_root: np.ndarray,
                             tree_depth: np.ndarray,
                             flat_bins: np.ndarray, num: int,
                             has_missing: bool, use: int) -> np.ndarray:
        scores = np.zeros((num, scaled.shape[1]), dtype=np.float64)
        for t in range(use):
            pos = self.advance_quantized(packed, threshold_bin, flat_bins,
                                         num, int(tree_root[t]),
                                         int(tree_depth[t]), has_missing)
            scores += np.take(scaled, pos, axis=0)
        return scores


class NumpyBackend(KernelBackend):
    """The portable default — exactly the base-class implementation."""


def _loop_scatter_dispatch(backend, hist, keys, entry_rows, grad, hess,
                           size, hess_const) -> None:
    """Shared scatter driver of the loop backends (pyloop + numba).

    The loop kernels add into their output in place, so the buffers are
    zeroed here first — preserving the builder's contract that every
    bin of an un-zeroed pooled buffer gets written.
    """
    hist.grad[:] = 0.0
    hist.hess[:] = 0.0
    if hess_const is not None and hess_const == 1.0:
        backend._kernels["scatter_no_hess"](
            hist.grad, hist.hess, keys, entry_rows, grad, hess_const)
    else:
        backend._kernels["scatter"](
            hist.grad, hist.hess, keys, entry_rows, grad, hess)


class PyLoopBackend(KernelBackend):
    """The numba kernels, interpreted — a correctness oracle, not a
    performance backend (advisor prices it ~50x slower than numpy)."""

    name = "pyloop"
    compute_factor = 0.02
    priority = -1

    def __init__(self) -> None:
        super().__init__()
        self._kernels = LOOP_KERNELS

    @classmethod
    def version(cls) -> str:
        return "interpreted loop kernels (reference)"

    def scatter(self, hist, keys, entry_rows, grad, hess, size,
                hess_const=None):
        _loop_scatter_dispatch(self, hist, keys, entry_rows, grad, hess,
                               size, hess_const)

    def scatter_slotted(self, hists, keys, entry_rows, grad, hess, size,
                        num_slots, hess_const=None):
        # slot-prefixed keys address one logical (num_slots*size, C)
        # histogram; scatter into a contiguous scratch pair, then slice
        # per slot — the same arithmetic the numba kernel vectorizes
        total = num_slots * size
        dim = grad.shape[1]
        grad_out = self._buf("slot_grad", total * dim,
                             np.float64).reshape(total, dim)
        hess_out = self._buf("slot_hess", total * dim,
                             np.float64).reshape(total, dim)
        grad_out[:] = 0.0
        hess_out[:] = 0.0
        if hess_const is not None and hess_const == 1.0:
            self._kernels["scatter_no_hess"](grad_out, hess_out, keys,
                                             entry_rows, grad, hess_const)
        else:
            self._kernels["scatter"](grad_out, hess_out, keys, entry_rows,
                                     grad, hess)
        for s, hist in enumerate(hists):
            hist.grad[:] = grad_out[s * size:(s + 1) * size]
            hist.hess[:] = hess_out[s * size:(s + 1) * size]

    def raw_scores(self, packed, threshold, scaled, tree_root, tree_depth,
                   flat, num, has_nan, use):
        out = np.zeros((num, scaled.shape[1]), dtype=np.float64)
        self._kernels["predict"](packed, threshold, scaled, tree_root,
                                 tree_depth, flat, num, has_nan, use, out)
        return out

    def raw_scores_quantized(self, packed, threshold_bin, scaled,
                             tree_root, tree_depth, flat_bins, num,
                             has_missing, use):
        out = np.zeros((num, scaled.shape[1]), dtype=np.float64)
        self._kernels["predict_quantized"](
            packed, threshold_bin, scaled, tree_root, tree_depth,
            flat_bins, num, has_missing, use, out)
        return out


#: compiled kernel cache shared by every NumbaBackend instance
_NUMBA_KERNELS: Optional[Dict[str, object]] = None


def _compile_numba_kernels() -> Dict[str, object]:
    """JIT-compile the loop kernels once per process.

    ``fastmath`` is off and loops stay in storage order, so the
    compiled kernels perform the identical float additions as the
    interpreted (and numpy) paths — the bit-identity contract.
    """
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is None:
        import numba

        jit = numba.njit(cache=True, fastmath=False, nogil=True)
        _NUMBA_KERNELS = {
            name: jit(fn) for name, fn in LOOP_KERNELS.items()
        }
    return _NUMBA_KERNELS


class NumbaBackend(PyLoopBackend):
    """JIT-compiled loop kernels (sklearn hist-GBDT shape).

    Same algorithms as ``pyloop`` — per-feature unrolled-by-4 scatter
    over precomposed int64 keys of uint8-range binned columns, the
    no-hessian fast path, allocation-free writes into pooled buffers —
    but compiled by numba/LLVM.  Auto-detected; constructing it without
    numba installed raises :class:`BackendUnavailableError`.
    """

    name = "numba"
    compute_factor = 2.5  # pinned by bench/backend_bench.py --check
    priority = 10

    def __init__(self) -> None:
        if not self.is_available():
            raise BackendUnavailableError(
                "numba backend requested but numba is not importable "
                f"(or disabled via {DISABLE_ENV})"
            )
        KernelBackend.__init__(self)
        self._kernels = _compile_numba_kernels()

    @classmethod
    def is_available(cls) -> bool:
        if cls.name in _disabled():
            return False
        try:
            import numba  # noqa: F401
        except Exception:
            return False
        return True

    @classmethod
    def version(cls) -> str:
        import llvmlite
        import numba

        return f"numba {numba.__version__}, llvmlite {llvmlite.__version__}"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class BackendUnavailableError(RuntimeError):
    """A known backend whose toolchain is not importable here."""


#: registry key -> backend class
BACKENDS: Dict[str, Type[KernelBackend]] = {}


def register_backend(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Add a backend class to the registry (idempotent by name)."""
    BACKENDS[cls.name] = cls
    return cls


for _cls in (NumpyBackend, PyLoopBackend, NumbaBackend):
    register_backend(_cls)

#: the always-available portable default
DEFAULT_BACKEND = "numpy"


def backend_names() -> List[str]:
    """Registered backend names, registry order."""
    return list(BACKENDS)


def available_backends() -> List[str]:
    """Names of backends whose toolchain imports on this machine."""
    return [name for name, cls in BACKENDS.items() if cls.is_available()]


def resolve_backend_name(name: str = "") -> str:
    """Canonical backend name for a config string.

    Empty means the portable default; ``"auto"`` picks the
    highest-priority available backend (numba when installed).
    """
    if not name:
        return DEFAULT_BACKEND
    if name == "auto":
        best = max(
            (cls for cls in BACKENDS.values() if cls.is_available()),
            key=lambda cls: cls.priority,
            default=NumpyBackend,
        )
        return best.name
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: "
            f"{', '.join(sorted(BACKENDS))} (or 'auto')"
        )
    return name


def make_backend(name: "str | KernelBackend | None" = None) -> KernelBackend:
    """A fresh backend instance for a name, ``None``/``""``, ``"auto"``,
    or an already-constructed instance (returned as-is)."""
    if isinstance(name, KernelBackend):
        return name
    canonical = resolve_backend_name(name or "")
    cls = BACKENDS[canonical]
    if not cls.is_available():
        raise BackendUnavailableError(
            f"kernel backend {canonical!r} is not available on this "
            f"machine (available: {', '.join(available_backends())})"
        )
    return cls()


def compute_factor(name: str = "") -> float:
    """Relative histogram-kernel throughput vs numpy (advisor pricing)."""
    return BACKENDS[resolve_backend_name(name)].compute_factor


@dataclass(frozen=True)
class BackendInfo:
    """One row of ``repro doctor``'s detection report."""

    name: str
    available: bool
    version: str
    default: bool

    def describe(self) -> str:
        state = "available" if self.available else "not available"
        tag = " (default)" if self.default else ""
        return f"{self.name}: {state} — {self.version}{tag}"


def detect_backends() -> List[BackendInfo]:
    """Availability + toolchain version of every registered backend."""
    infos = []
    for name, cls in BACKENDS.items():
        available = cls.is_available()
        if available:
            try:
                version = cls.version()
            except Exception as exc:  # pragma: no cover - defensive
                available, version = False, f"version probe failed: {exc}"
        else:
            version = ("disabled via " + DISABLE_ENV
                       if name in _disabled() else "toolchain not importable")
        infos.append(BackendInfo(name, available, version,
                                 default=name == DEFAULT_BACKEND))
    return infos
