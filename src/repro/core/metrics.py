"""Evaluation metrics used in the paper's figures: AUC and accuracy
(Figures 11 and 12), plus RMSE and log-loss for completeness."""

from __future__ import annotations

import numpy as np


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic.

    Ties in ``scores`` receive their mid-rank, matching the standard
    trapezoidal ROC computation.
    """
    labels = np.asarray(labels).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.size != scores.size:
        raise ValueError("labels and scores must have equal length")
    positives = labels == 1
    num_pos = int(positives.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("AUC undefined: need both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(labels.size, dtype=np.float64)
    ranks[order] = np.arange(1, labels.size + 1)
    # mid-ranks for tied scores
    sorted_scores = scores[order]
    boundaries = np.concatenate(
        ([True], sorted_scores[1:] != sorted_scores[:-1])
    )
    group_ids = np.cumsum(boundaries) - 1
    group_sums = np.bincount(group_ids, weights=ranks[order])
    group_counts = np.bincount(group_ids)
    mid = group_sums / group_counts
    ranks[order] = mid[group_ids]
    rank_sum = ranks[positives].sum()
    return float(
        (rank_sum - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg)
    )


def accuracy(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of exact matches between integer labels and predictions."""
    labels = np.asarray(labels).ravel()
    predictions = np.asarray(predictions).ravel()
    if labels.size != predictions.size:
        raise ValueError("labels and predictions must have equal length")
    if labels.size == 0:
        raise ValueError("accuracy undefined on empty input")
    return float(np.mean(labels == predictions))


def multiclass_accuracy(labels: np.ndarray, probs: np.ndarray) -> float:
    """Accuracy of argmax predictions from an ``(N, C)`` probability matrix."""
    probs = np.asarray(probs)
    if probs.ndim != 2:
        raise ValueError("probs must be an (N, C) matrix")
    return accuracy(labels, probs.argmax(axis=1))


def rmse(labels: np.ndarray, predictions: np.ndarray) -> float:
    labels = np.asarray(labels, dtype=np.float64).ravel()
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    if labels.size != predictions.size:
        raise ValueError("labels and predictions must have equal length")
    if labels.size == 0:
        raise ValueError("rmse undefined on empty input")
    return float(np.sqrt(np.mean((labels - predictions) ** 2)))


def logloss(labels: np.ndarray, probs: np.ndarray) -> float:
    """Binary cross-entropy given positive-class probabilities."""
    labels = np.asarray(labels, dtype=np.float64).ravel()
    probs = np.clip(np.asarray(probs, dtype=np.float64).ravel(), 1e-15,
                    1.0 - 1e-15)
    if labels.size != probs.size:
        raise ValueError("labels and probs must have equal length")
    return float(
        -np.mean(labels * np.log(probs) + (1 - labels) * np.log(1 - probs))
    )
