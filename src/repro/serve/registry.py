"""Versioned model registry with checksums, hot-swap, and rollback.

A :class:`ModelRegistry` owns every model a serving process knows about.
Models enter through :meth:`~ModelRegistry.publish` (in-memory ensembles
or payload dicts) or :meth:`~ModelRegistry.publish_file` (the
:mod:`repro.core.serialize` JSON format); each gets a monotonically
increasing version number, a SHA-256 checksum of its canonical payload
encoding, the payload's wire size in bytes (what a deploy ships, per the
block-distributed-GBDT accounting argument), and a ready-to-serve
:class:`~repro.serve.compiler.CompiledEnsemble`.

Exactly one version is *active* at a time.  :meth:`~ModelRegistry.activate`
is an atomic pointer flip — a traffic source that resolves the active
version at batch-dispatch time therefore serves every batch from exactly
one version, which is the hot-swap invariant the serving tests pin.
:meth:`~ModelRegistry.rollback` re-activates the previously active
version (the activation history is kept, so repeated rollbacks walk
backwards).

Deployment staging layers on top of the active pointer: a published
version can be staged as a *canary* (:meth:`~ModelRegistry.stage_canary`),
then either promoted to active (:meth:`~ModelRegistry.promote`) or
retired (:meth:`~ModelRegistry.roll_back`) when the drift monitor
condemns it.  A retired version can never be re-staged — a bad model
stays rolled back.  Attached prediction caches are notified eagerly on
*every* active-version change (hot-swap, promote, rollback), so stale
entries are flushed at the decision instant rather than at the next
lookup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.serialize import (canonical_payload_bytes, ensemble_from_dict,
                              ensemble_to_dict, payload_checksum)
from ..core.tree import TreeEnsemble
from .compiler import (CompiledEnsemble, compile_ensemble, shard_bounds,
                       slice_trees)


def shard_payload(payload: dict, start: int, stop: int) -> dict:
    """The serialize-format payload restricted to trees
    ``start..stop`` (exclusive) — what a sharded deploy ships to one
    shard group.  The result is a complete, loadable model payload
    (``ensemble_from_dict`` accepts it), so a shard can be published,
    checksummed, and verified exactly like a full model."""
    return {**payload, "trees": payload["trees"][start:stop]}


@dataclass(frozen=True)
class ModelShard:
    """One tree-range shard of a published version.

    The deployable unit of tree-sharded serving
    (:mod:`repro.serve.sharded`): shard ``shard_index`` of ``num_shards``
    holds trees ``start_tree..stop_tree`` of ``version``.  ``payload``
    is the canonical serialize-format slice, independently checksummed,
    and ``nbytes`` its canonical encoding size — the wire cost of
    shipping this shard to one worker.  ``compiled`` is sliced from the
    parent's compiled arrays, so the ordered carry-in fold of the
    shards' scores is bit-identical to the full predictor.
    """

    version: int
    shard_index: int
    num_shards: int
    start_tree: int
    stop_tree: int
    checksum: str
    nbytes: int
    compiled: CompiledEnsemble = field(repr=False)
    payload: dict = field(repr=False)

    @property
    def num_trees(self) -> int:
        return self.stop_tree - self.start_tree

    def __str__(self) -> str:
        return (f"v{self.version}[{self.shard_index}/{self.num_shards}] "
                f"(trees {self.start_tree}..{self.stop_tree}, "
                f"{self.nbytes / 1e6:.2f}MB, "
                f"sha256:{self.checksum[:12]})")


@dataclass(frozen=True)
class ModelVersion:
    """One published model: identity, provenance, and compiled form."""

    version: int
    checksum: str
    #: canonical JSON payload size — the bytes a deploy ships per worker
    nbytes: int
    objective: str
    num_classes: int
    compiled: CompiledEnsemble
    ensemble: TreeEnsemble = field(repr=False)
    source: str = "<memory>"
    #: the serialized payload dict — kept so successive versions can be
    #: delta-encoded against each other without re-serializing
    payload: Optional[dict] = field(default=None, repr=False)

    def __str__(self) -> str:
        return (f"v{self.version} ({self.objective}, "
                f"{self.compiled.num_trees} trees, "
                f"{self.nbytes / 1e6:.2f}MB, "
                f"sha256:{self.checksum[:12]})")


class ModelRegistry:
    """Versioned store of served models with one active pointer."""

    def __init__(self) -> None:
        self._versions: Dict[int, ModelVersion] = {}
        self._active: Optional[ModelVersion] = None
        self._activation_log: List[int] = []
        self._next_version = 1
        #: explicit stage overrides ("canary"/"retired"); anything else
        #: derives from the active pointer ("active" or "published")
        self._stages: Dict[int, str] = {}
        self._stage_log: List[tuple] = []
        self._caches: List = []
        #: (version, num_shards) -> sliced ModelShard list; slicing and
        #: checksumming a big payload is not free, and a fleet deploys
        #: the same sharding many times (rows x rollouts)
        self._shard_cache: Dict[tuple, List[ModelShard]] = {}

    # -- publishing --------------------------------------------------------

    def publish(self, model: Union[TreeEnsemble, dict],
                source: str = "<memory>") -> ModelVersion:
        """Register a model and return its :class:`ModelVersion`.

        Accepts a live :class:`TreeEnsemble` or a payload dict in the
        :mod:`repro.core.serialize` format (validated either way).  The
        first publish auto-activates, so a fresh registry serves as soon
        as it holds one model; later publishes never change the active
        version — that takes an explicit :meth:`activate`.
        """
        if isinstance(model, TreeEnsemble):
            payload = ensemble_to_dict(model)
            ensemble = model
        else:
            payload = model
            ensemble = ensemble_from_dict(payload)
        entry = ModelVersion(
            version=self._next_version,
            checksum=payload_checksum(payload),
            nbytes=len(canonical_payload_bytes(payload)),
            objective=str(payload.get("objective", "binary")),
            num_classes=int(payload.get("num_classes", 2)),
            compiled=compile_ensemble(ensemble),
            ensemble=ensemble,
            source=source,
            payload=payload,
        )
        self._versions[entry.version] = entry
        self._next_version += 1
        if self._active is None:
            self.activate(entry.version)
        return entry

    def publish_file(self, path: Union[str, Path],
                     expected_checksum: Optional[str] = None
                     ) -> ModelVersion:
        """Publish a model JSON file, optionally pinning its checksum.

        ``expected_checksum`` guards the ship: if the payload read from
        disk does not hash to it, the file was corrupted or swapped in
        transit and the publish is refused.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not a valid model file") from exc
        actual = payload_checksum(payload)
        if expected_checksum is not None and actual != expected_checksum:
            raise ValueError(
                f"checksum mismatch for {path}: expected "
                f"{expected_checksum}, got {actual}"
            )
        return self.publish(payload, source=str(path))

    # -- the active pointer ------------------------------------------------

    @property
    def active(self) -> ModelVersion:
        """The currently served version (raises if nothing is active)."""
        if self._active is None:
            raise LookupError("registry has no active model")
        return self._active

    @property
    def has_active(self) -> bool:
        return self._active is not None

    def activate(self, version: int) -> ModelVersion:
        """Atomically flip the active pointer to ``version``."""
        entry = self.get(version)
        self._active = entry
        self._activation_log.append(entry.version)
        self._notify_caches()
        return entry

    def rollback(self) -> ModelVersion:
        """Re-activate the previously active version.

        Walks the activation history: the current activation is popped,
        so consecutive rollbacks step further back.  Refuses when there
        is no earlier activation to return to.  Attached caches are
        invalidated eagerly — a rollback is a version change exactly
        like a hot-swap, so entries scored by the abandoned version must
        not survive it.
        """
        if len(self._activation_log) < 2:
            raise LookupError("no previous activation to roll back to")
        self._activation_log.pop()
        entry = self.get(self._activation_log[-1])
        self._active = entry
        self._notify_caches()
        return entry

    # -- deployment stages -------------------------------------------------

    def stage_of(self, version: int) -> str:
        """Deployment stage of a published version: ``"published"``,
        ``"canary"``, ``"active"``, or ``"retired"``."""
        self.get(version)
        if self._active is not None and version == self._active.version:
            return "active"
        return self._stages.get(version, "published")

    def stages(self) -> Dict[int, str]:
        """Stage of every published version, keyed by version id."""
        return {v: self.stage_of(v) for v in sorted(self._versions)}

    @property
    def stage_log(self) -> List[tuple]:
        """``(version, stage)`` transitions in decision order."""
        return list(self._stage_log)

    def stage_canary(self, version: int) -> ModelVersion:
        """Stage ``version`` as the canary candidate.

        A canary is published-but-probationary: a deployment controller
        routes a slice of traffic (or shadow traffic) to it while the
        drift monitor accumulates evidence.  Refuses the active version
        (nothing to canary against) and any retired version — a model
        that was rolled back once stays rolled back.
        """
        entry = self.get(version)
        stage = self.stage_of(version)
        if stage == "retired":
            raise ValueError(
                f"version {version} was rolled back; refusing to "
                "re-stage a retired model as a canary"
            )
        if stage == "active":
            raise ValueError(
                f"version {version} is already active; a canary must "
                "be a non-active version"
            )
        self._stages[version] = "canary"
        self._stage_log.append((version, "canary"))
        return entry

    def promote(self, version: int) -> ModelVersion:
        """Promote a staged canary to the active version.

        The flip itself is :meth:`activate` (atomic, logged, caches
        notified); promotion additionally requires that the version went
        through the canary stage — the deployment controller's verdict
        path is the only road to production.
        """
        if self.stage_of(version) != "canary":
            raise ValueError(
                f"version {version} is {self.stage_of(version)!r}; "
                "only a staged canary can be promoted"
            )
        self._stages.pop(version, None)
        self._stage_log.append((version, "active"))
        return self.activate(version)

    def roll_back(self, version: int) -> ModelVersion:
        """Retire a condemned version; returns the version left active.

        If ``version`` is the active model, the previous activation is
        restored (exactly :meth:`rollback`).  If it is a staged canary,
        it is retired in place and the incumbent keeps serving.  Either
        way the version is marked ``"retired"`` (it can never be staged
        again) and attached caches are invalidated eagerly, so entries
        scored by the condemned version are flushed at the decision
        instant.
        """
        stage = self.stage_of(version)
        self._stages[version] = "retired"
        self._stage_log.append((version, "retired"))
        if stage == "active":
            return self.rollback()
        self._notify_caches()
        return self.active

    # -- tree-range shards -------------------------------------------------

    def shards(self, version: int, num_shards: int) -> List[ModelShard]:
        """Tree-range shards of a published version, cached per
        ``(version, num_shards)``.

        Each shard carries its own canonical payload slice and SHA-256
        checksum, so a sharded rollout ships and verifies shard ``j``'s
        payload to shard group ``j`` only — per-worker deploy bytes
        scale as ``~1/S`` of the full payload instead of replicating it.
        Empty shards (when ``num_shards`` exceeds the tree count) are
        legal and score zero, so a fleet layout can outlive model size.
        """
        key = (int(version), int(num_shards))
        cached = self._shard_cache.get(key)
        if cached is not None:
            return cached
        entry = self.get(version)
        payload = (entry.payload if entry.payload is not None
                   else ensemble_to_dict(entry.ensemble))
        shards: List[ModelShard] = []
        for j, (start, stop) in enumerate(
                shard_bounds(entry.compiled.num_trees, num_shards)):
            piece = shard_payload(payload, start, stop)
            shards.append(ModelShard(
                version=entry.version,
                shard_index=j,
                num_shards=num_shards,
                start_tree=start,
                stop_tree=stop,
                checksum=payload_checksum(piece),
                nbytes=len(canonical_payload_bytes(piece)),
                compiled=slice_trees(entry.compiled, start, stop),
                payload=piece,
            ))
        self._shard_cache[key] = shards
        return shards

    # -- cache attachment --------------------------------------------------

    def attach_cache(self, cache) -> None:
        """Register a prediction cache for eager invalidation.

        The cache's ``on_version_change(active_version)`` hook fires on
        every activation change — hot-swap, promote, rollback — closing
        the gap where a lazily-invalidated cache could hand out scores
        from an already-abandoned version between the registry decision
        and the next serve call.
        """
        if cache not in self._caches:
            self._caches.append(cache)

    def _notify_caches(self) -> None:
        version = self._active.version if self._active else None
        for cache in self._caches:
            cache.on_version_change(version)

    # -- introspection -----------------------------------------------------

    def get(self, version: int) -> ModelVersion:
        try:
            return self._versions[version]
        except KeyError:
            raise KeyError(
                f"unknown model version {version}; published: "
                f"{sorted(self._versions) or 'none'}"
            ) from None

    def versions(self) -> List[ModelVersion]:
        """Every published version, oldest first."""
        return [self._versions[v] for v in sorted(self._versions)]

    @property
    def activation_log(self) -> List[int]:
        """Version ids in activation order (rollbacks pop entries)."""
        return list(self._activation_log)

    def __len__(self) -> int:
        return len(self._versions)

    def __repr__(self) -> str:
        active = self._active.version if self._active else None
        return (f"ModelRegistry(versions={sorted(self._versions)}, "
                f"active={active})")
