"""Exact-hit prediction cache for repeated feature vectors.

Production request streams are heavily repetitive — the same user, item,
or configuration row is scored again and again — so the serving stack
offers an opt-in :class:`PredictionCache` in front of the compiled
predictor.  The cache is deliberately conservative:

* **Exact hits only.**  A request hits the cache only when its *key*
  matches a cached entry exactly; there is no nearest-neighbour or
  tolerance matching, so a cached answer is always the answer the
  predictor itself would have produced.
* **Keys are quantized bin ids.**  With the training cut grid supplied
  (``cuts`` from :class:`~repro.data.dataset.BinnedDataset`), a row is
  keyed by the bytes of its uint8 bin-id vector — the same quantization
  the :class:`~repro.serve.compiler.QuantizedEnsemble` proves lossless:
  every split threshold of a histogram-trained model lies on the cut
  grid, so ``value <= threshold`` routes identically for every value in
  a bin and the raw score is a pure function of the bin ids.  Two
  float-distinct rows that bin identically therefore *must* score
  identically, and collapsing them into one cache entry is exact.
  Without cuts the key falls back to the canonicalized float64 bytes of
  the row (every ``NaN`` rewritten to the single canonical ``NaN``), so
  only bit-equal rows collide — still exact, just fewer hits.
* **Versioned.**  A cache serves exactly one model version at a time;
  the first lookup after a hot-swap invalidates the whole store, so a
  deploy can never leak stale scores (the scenario suite pins this).
* **Bounded.**  ``capacity`` entries, least-recently-used eviction, and
  a full hit/miss/insert/eviction/invalidation ledger in
  :class:`CacheStats` — the scenario reports surface the hit rate and
  the benches assert the exactness invariant.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.kernels import MISSING_BIN


@dataclass
class CacheStats:
    """Running ledger of one :class:`PredictionCache`."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses,
            "inserts": self.inserts, "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class PredictionCache:
    """LRU map from a request row's key to its raw score vector.

    ``capacity`` bounds the number of cached rows; ``cuts`` (optional)
    enables quantized-bin-id keys — see the module docstring for why
    that is exact.  The cache itself never runs a model: callers hand
    :meth:`serve` a ``compute`` callback for the rows that miss.
    """

    def __init__(self, capacity: int,
                 cuts: Optional[Sequence[np.ndarray]] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.cuts = (None if cuts is None
                     else [np.asarray(c, dtype=np.float64) for c in cuts])
        if self.cuts is not None:
            for f, c in enumerate(self.cuts):
                if c.size > MISSING_BIN - 1:
                    raise ValueError(
                        f"feature {f} has {c.size + 1} bins; bin-id "
                        f"keys support at most {MISSING_BIN} (bin "
                        f"{MISSING_BIN} is the missing sentinel)"
                    )
        self._store: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._version: Optional[int] = None
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:
        return (f"PredictionCache(capacity={self.capacity}, "
                f"entries={len(self)}, version={self._version}, "
                f"hit_rate={self.stats.hit_rate:.3f})")

    @property
    def version(self) -> Optional[int]:
        """Model version the cached entries belong to."""
        return self._version

    # -- keys --------------------------------------------------------------

    def key_batch(self, features: np.ndarray) -> List[bytes]:
        """One hashable key per row of a dense float64 batch.

        With cuts: the bytes of the row's uint8 bin-id vector (``NaN``
        quantizes to the missing sentinel, columns beyond the cut grid
        are all-sentinel).  Without cuts: the row's float64 bytes with
        every ``NaN`` canonicalized, so bit-equal rows — and only those
        — share a key.
        """
        if features.ndim != 2:
            raise ValueError("cache keys need a 2-D dense batch")
        if self.cuts is not None:
            num, width = features.shape
            binned = np.full((num, width), MISSING_BIN, dtype=np.uint8)
            for f in range(min(width, len(self.cuts))):
                col = features[:, f]
                ok = ~np.isnan(col)
                if ok.any():
                    binned[ok, f] = np.searchsorted(self.cuts[f], col[ok])
            return [row.tobytes() for row in binned]
        canonical = np.ascontiguousarray(features, dtype=np.float64)
        nan_mask = np.isnan(canonical)
        if nan_mask.any():
            canonical = canonical.copy()
            canonical[nan_mask] = np.nan
        return [row.tobytes() for row in canonical]

    # -- the serve path ----------------------------------------------------

    def serve(self, version: int, features: np.ndarray,
              compute: Callable[[np.ndarray], np.ndarray]
              ) -> Tuple[np.ndarray, int]:
        """Scores for a batch, answering repeats from the cache.

        Returns ``(scores, misses)`` where ``scores`` has one row per
        input row (hit rows gathered from the store, miss rows freshly
        computed via ``compute`` on exactly the missing subset and then
        inserted) and ``misses`` is how many rows had to be computed —
        what a deterministic service model should bill for.

        The first call after a version change invalidates the store, so
        entries never cross a hot-swap.
        """
        if version != self._version:
            self.invalidate()
            self._version = version
        keys = self.key_batch(features)
        hit_rows: List[Optional[np.ndarray]] = []
        miss_idx: List[int] = []
        for idx, key in enumerate(keys):
            cached = self._store.get(key)
            if cached is None:
                hit_rows.append(None)
                miss_idx.append(idx)
            else:
                self._store.move_to_end(key)
                hit_rows.append(cached)
        self.stats.hits += len(keys) - len(miss_idx)
        self.stats.misses += len(miss_idx)
        if miss_idx:
            computed = np.asarray(
                compute(features[np.asarray(miss_idx, dtype=np.int64)]))
            dim = computed.shape[1]
        else:
            computed = None
            dim = hit_rows[0].shape[0] if hit_rows else 0
        scores = np.empty((len(keys), dim), dtype=np.float64)
        for idx, row in enumerate(hit_rows):
            if row is not None:
                scores[idx] = row
        for pos, idx in enumerate(miss_idx):
            scores[idx] = computed[pos]
            self._insert(keys[idx], computed[pos])
        return scores, len(miss_idx)

    def _insert(self, key: bytes, score_row: np.ndarray) -> None:
        if key in self._store:
            # a duplicate miss inside one batch: same key, same score —
            # refresh recency, nothing new to store
            self._store.move_to_end(key)
            return
        self._store[key] = np.array(score_row, dtype=np.float64)
        self.stats.inserts += 1
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (counted once per non-empty flush)."""
        if self._store:
            self.stats.invalidations += 1
            self._store.clear()

    def on_version_change(self, version: Optional[int]) -> None:
        """Eager invalidation hook for registry activation changes.

        :meth:`ModelRegistry.attach_cache
        <repro.serve.registry.ModelRegistry.attach_cache>` calls this on
        every active-pointer flip — hot-swap, promote, *and* rollback —
        so entries scored by an abandoned version are flushed at the
        decision instant.  The lazy check in :meth:`serve` still guards
        caches that were never attached.
        """
        if version != self._version:
            self.invalidate()
            self._version = version
