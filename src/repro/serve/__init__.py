"""Model serving subsystem: compile, batch, version, replicate.

Trained :class:`~repro.core.tree.TreeEnsemble` models are *grown* as
dictionaries of nodes — convenient for training, slow to serve.  This
package turns them into production-shaped inference:

- :mod:`~repro.serve.compiler` — lower an ensemble into a
  struct-of-arrays :class:`CompiledEnsemble` whose vectorized
  level-synchronous predictor is bit-identical to
  ``TreeEnsemble.raw_scores`` and several times faster on large batches,
  plus the opt-in :class:`QuantizedEnsemble` ablation that rewrites
  thresholds to uint8 bin indices and traverses cache-resident binned
  batches (still bit-identical);
- :mod:`~repro.serve.batcher` — micro-batching request scheduler on the
  simulated clock with a per-request latency ledger;
- :mod:`~repro.serve.registry` — versioned model registry with payload
  checksums, atomic hot-swap, and rollback;
- :mod:`~repro.serve.replica` — replicated serving over the simulated
  cluster with ``deploy:model`` byte accounting and load balancing;
- :mod:`~repro.serve.cache` — opt-in exact-hit
  :class:`PredictionCache` keyed on quantized bin ids, with an LRU
  bound, version invalidation and a full hit/miss/eviction ledger;
- :mod:`~repro.serve.scenarios` — declarative seeded traffic scenarios
  (diurnal curves, flash crowds, heavy-tailed multi-tenant fleets with
  latency SLOs and admission priorities) and the
  :class:`ScenarioRunner` conformance harness emitting byte-identical
  ``scenario-report/v1`` JSON.
"""

from .batcher import (BatchPolicy, BatchRecord, DispatchResult,
                      DropRecord, LatencyStats, MicroBatcher,
                      ModelServer, RequestRecord, RequestTrace,
                      ServingReport, synthetic_trace)
from .cache import CacheStats, PredictionCache
from .compiler import (CompiledEnsemble, QuantizedEnsemble,
                       compile_ensemble, quantize_ensemble)
from .registry import ModelRegistry, ModelVersion
from .replica import DEPLOY_KIND, ReplicaSet
from .scenarios import (SCENARIO_SCHEMA, SCENARIOS, LoadShape, Scenario,
                        ScenarioRunner, TenantSpec,
                        audit_priority_admission, build_trace,
                        get_scenario, run_scenario)

__all__ = [
    "BatchPolicy",
    "BatchRecord",
    "CacheStats",
    "CompiledEnsemble",
    "DEPLOY_KIND",
    "DispatchResult",
    "DropRecord",
    "LatencyStats",
    "LoadShape",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "ModelVersion",
    "PredictionCache",
    "QuantizedEnsemble",
    "ReplicaSet",
    "RequestRecord",
    "RequestTrace",
    "SCENARIOS",
    "SCENARIO_SCHEMA",
    "Scenario",
    "ScenarioRunner",
    "ServingReport",
    "TenantSpec",
    "audit_priority_admission",
    "build_trace",
    "compile_ensemble",
    "get_scenario",
    "quantize_ensemble",
    "run_scenario",
    "synthetic_trace",
]
