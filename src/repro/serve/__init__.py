"""Model serving subsystem: compile, batch, version, replicate.

Trained :class:`~repro.core.tree.TreeEnsemble` models are *grown* as
dictionaries of nodes — convenient for training, slow to serve.  This
package turns them into production-shaped inference:

- :mod:`~repro.serve.compiler` — lower an ensemble into a
  struct-of-arrays :class:`CompiledEnsemble` whose vectorized
  level-synchronous predictor is bit-identical to
  ``TreeEnsemble.raw_scores`` and several times faster on large batches,
  plus the opt-in :class:`QuantizedEnsemble` ablation that rewrites
  thresholds to uint8 bin indices and traverses cache-resident binned
  batches (still bit-identical);
- :mod:`~repro.serve.batcher` — micro-batching request scheduler on the
  simulated clock with a per-request latency ledger;
- :mod:`~repro.serve.registry` — versioned model registry with payload
  checksums, atomic hot-swap, and rollback;
- :mod:`~repro.serve.replica` — replicated serving over the simulated
  cluster with ``deploy:model`` byte accounting and load balancing.
"""

from .batcher import (BatchPolicy, BatchRecord, DispatchResult,
                      DropRecord, LatencyStats, MicroBatcher,
                      ModelServer, RequestRecord, RequestTrace,
                      ServingReport, synthetic_trace)
from .compiler import (CompiledEnsemble, QuantizedEnsemble,
                       compile_ensemble, quantize_ensemble)
from .registry import ModelRegistry, ModelVersion
from .replica import DEPLOY_KIND, ReplicaSet

__all__ = [
    "BatchPolicy",
    "BatchRecord",
    "CompiledEnsemble",
    "DEPLOY_KIND",
    "DispatchResult",
    "DropRecord",
    "LatencyStats",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "ModelVersion",
    "QuantizedEnsemble",
    "ReplicaSet",
    "RequestRecord",
    "RequestTrace",
    "ServingReport",
    "compile_ensemble",
    "quantize_ensemble",
    "synthetic_trace",
]
