"""Model serving subsystem: compile, batch, version, replicate.

Trained :class:`~repro.core.tree.TreeEnsemble` models are *grown* as
dictionaries of nodes — convenient for training, slow to serve.  This
package turns them into production-shaped inference:

- :mod:`~repro.serve.compiler` — lower an ensemble into a
  struct-of-arrays :class:`CompiledEnsemble` whose vectorized
  level-synchronous predictor is bit-identical to
  ``TreeEnsemble.raw_scores`` and several times faster on large batches,
  plus the opt-in :class:`QuantizedEnsemble` ablation that rewrites
  thresholds to uint8 bin indices and traverses cache-resident binned
  batches (still bit-identical);
- :mod:`~repro.serve.batcher` — micro-batching request scheduler on the
  simulated clock with a per-request latency ledger;
- :mod:`~repro.serve.registry` — versioned model registry with payload
  checksums, atomic hot-swap, and rollback;
- :mod:`~repro.serve.replica` — replicated serving over the simulated
  cluster with ``deploy:model`` byte accounting and load balancing;
- :mod:`~repro.serve.sharded` — tree-sharded (vertically partitioned)
  serving: the ensemble splits into ``S`` tree-range shards
  (:func:`shard_ensemble`), each replica row holds one worker per shard
  group, per-shard canonical payloads deploy under ``deploy:shard``, and
  partial scores reduce through the comm collectives
  (``serve:partial``/``serve:reduce``) with an ordered carry-in fold
  that keeps sharded scores bit-identical to the full predictor;
- :mod:`~repro.serve.cache` — opt-in exact-hit
  :class:`PredictionCache` keyed on quantized bin ids, with an LRU
  bound, version invalidation and a full hit/miss/eviction ledger;
- :mod:`~repro.serve.scenarios` — declarative seeded traffic scenarios
  (diurnal curves, flash crowds, heavy-tailed multi-tenant fleets with
  latency SLOs and admission priorities) and the
  :class:`ScenarioRunner` conformance harness emitting byte-identical
  ``scenario-report/v1`` JSON;
- :mod:`~repro.serve.deploy` — closed-loop deployment: a
  :class:`DeployController` runs canary routing (or shadow scoring)
  through a :class:`CanaryRouter`, feeds delayed labels to per-version
  :class:`DriftMonitor` windows, auto-rolls-back and retrains when the
  canary degrades beyond the :class:`RollbackPolicy` margins, and emits
  a byte-deterministic ``deploy-report/v1`` decision log whose verdict
  :func:`audit_deploy` re-derives from the serving ledger alone.
"""

from .batcher import (BatchPolicy, BatchRecord, DispatchResult,
                      DropRecord, LatencyStats, MicroBatcher,
                      ModelServer, RequestRecord, RequestTrace,
                      ServingReport, synthetic_trace)
from .cache import CacheStats, PredictionCache
from .compiler import (CompiledEnsemble, QuantizedEnsemble,
                       compile_ensemble, quantize_ensemble,
                       shard_bounds, shard_ensemble, slice_trees)
from .deploy import (CANARY_KIND, DECISION_KIND, ROLLBACK_KIND,
                     CanaryPolicy, CanaryRouter, DeployController,
                     DeployDecision, DriftMonitor, RollbackPolicy,
                     audit_deploy, run_deploy)
from .registry import ModelRegistry, ModelShard, ModelVersion, \
    shard_payload
from .replica import DEPLOY_KIND, ReplicaSet
from .sharded import (PARTIAL_KIND, REDUCE_KIND, SHARD_DEPLOY_KIND,
                      ShardedReplicaSet, reduce_shard_scores)
from .scenarios import (SCENARIO_SCHEMA, SCENARIOS, LabelStream,
                        LoadShape, Scenario, ScenarioRunner, TenantSpec,
                        audit_priority_admission, build_trace,
                        emit_labels, get_scenario, run_scenario)

__all__ = [
    "BatchPolicy",
    "BatchRecord",
    "CANARY_KIND",
    "CacheStats",
    "CanaryPolicy",
    "CanaryRouter",
    "CompiledEnsemble",
    "DECISION_KIND",
    "DEPLOY_KIND",
    "DeployController",
    "DeployDecision",
    "DispatchResult",
    "DriftMonitor",
    "DropRecord",
    "LabelStream",
    "LatencyStats",
    "LoadShape",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "ModelShard",
    "ModelVersion",
    "PARTIAL_KIND",
    "PredictionCache",
    "QuantizedEnsemble",
    "REDUCE_KIND",
    "ROLLBACK_KIND",
    "ReplicaSet",
    "SHARD_DEPLOY_KIND",
    "RequestRecord",
    "RequestTrace",
    "RollbackPolicy",
    "SCENARIOS",
    "SCENARIO_SCHEMA",
    "Scenario",
    "ScenarioRunner",
    "ServingReport",
    "ShardedReplicaSet",
    "TenantSpec",
    "audit_deploy",
    "audit_priority_admission",
    "build_trace",
    "compile_ensemble",
    "emit_labels",
    "get_scenario",
    "quantize_ensemble",
    "reduce_shard_scores",
    "run_deploy",
    "run_scenario",
    "shard_bounds",
    "shard_ensemble",
    "shard_payload",
    "slice_trees",
    "synthetic_trace",
]
