"""Declarative, seeded traffic scenarios and the conformance runner.

The serving benches so far replay one seeded Poisson trace — which says
nothing about how the stack behaves at the north-star scale of "heavy
traffic from millions of users".  This module makes the *workload* a
first-class, replayable object (the Qd-tree lens: learn from and test
against the workload, don't hard-code it):

* :class:`TenantSpec` — one tenant of a multi-tenant fleet: an offered
  rate, a latency SLO, an admission priority class, and a repeat rate
  (the fraction of requests that re-send a previous feature vector,
  which is what a prediction cache lives on);
* :class:`LoadShape` — deterministic rate modulation over the scenario
  window: steady, diurnal (sinusoidal), or flash crowd (a burst
  multiplier inside a sub-window);
* :class:`Scenario` — the full declarative description: tenants, shape,
  batching policy, replica fleet, cache, hot-swap schedule, and fault
  plan, plus one seed that fixes every random draw;
* :func:`build_trace` — lowers a scenario into a
  :class:`~repro.serve.batcher.RequestTrace` via per-tenant thinned
  non-homogeneous Poisson arrivals merged on the simulated clock;
* :class:`ScenarioRunner` — replays the trace through the real stack
  (micro-batcher + replica set + registry hot-swap + fault injection)
  and emits a ``scenario-report/v1`` JSON with per-tenant latency
  percentiles, drop and SLO-violation rates, cache ledger, and wire
  bytes.

Everything is driven by seeded generators and a deterministic service
model, so running any scenario twice produces **byte-identical** report
JSON — the conformance property ``tests/serve/test_scenarios.py`` pins
against a golden fixture, exactly like the PR 4 golden model.

The shipped :data:`SCENARIOS` registry covers the evaluation grid that
Guan et al.'s database-perspective inference comparison lays out (batch
size, concurrency, model shape) across the traffic regimes ``steady``,
``diurnal``, ``flash-crowd``, ``heavy-tail`` (multi-tenant Pareto rates
with priority admission), and ``hot-swap-under-fire``, plus
``sharded-steady`` — the steady baseline served by a tree-sharded fleet
(:class:`~repro.serve.sharded.ShardedReplicaSet`) whose scores must stay
bit-identical to replicated serving.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig, NetworkModel, TrainConfig
from ..cluster.faults import FaultInjector, FaultPlan
from ..cluster.network import SimulatedNetwork
from ..ledger import percentile_summary
from .batcher import BatchPolicy, MicroBatcher, RequestTrace, ServingReport
from .cache import PredictionCache
from .registry import ModelRegistry
from .replica import ReplicaSet

#: schema tag of the runner's JSON report
SCENARIO_SCHEMA = "scenario-report/v1"


# ---------------------------------------------------------------------------
# Declarative pieces
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet: rate, SLO, priority, repeat behaviour.

    ``priority`` is the admission class consumed by the batcher's
    priority-aware shedding — **higher is more important** (shed last).
    ``slo_s`` is the tenant's end-to-end latency objective; a served
    request above it, or any dropped request, counts as an SLO
    violation.  ``repeat_rate`` is the probability that a request
    re-sends a uniformly drawn earlier vector *of the same tenant* —
    the exact-hit traffic a :class:`~repro.serve.cache.PredictionCache`
    converts into cache hits.
    """

    name: str
    rate_rps: float
    slo_s: float
    priority: int = 0
    repeat_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0.0:
            raise ValueError(f"tenant {self.name!r}: rate_rps must be "
                             f"positive, got {self.rate_rps}")
        if self.slo_s <= 0.0:
            raise ValueError(f"tenant {self.name!r}: slo_s must be "
                             f"positive, got {self.slo_s}")
        if not 0.0 <= self.repeat_rate < 1.0:
            raise ValueError(f"tenant {self.name!r}: repeat_rate must "
                             f"be in [0, 1), got {self.repeat_rate}")


@dataclass(frozen=True)
class LoadShape:
    """Deterministic arrival-rate modulation ``rate(t)`` over a window.

    ``steady``  — ``rate(t) = base``;
    ``diurnal`` — ``base * (1 + amplitude * sin(2 pi t / period_s))``,
    the compressed day/night cycle (``amplitude < 1`` keeps the rate
    positive);
    ``flash``   — ``base * flash_x`` inside ``[flash_at_s,
    flash_at_s + flash_len_s)``, ``base`` outside: a flash crowd.
    """

    kind: str = "steady"
    amplitude: float = 0.0
    period_s: float = 1.0
    flash_at_s: float = 0.0
    flash_len_s: float = 0.0
    flash_x: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("steady", "diurnal", "flash"):
            raise ValueError(f"unknown load shape {self.kind!r} "
                             "(steady, diurnal or flash)")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1) so the rate "
                             f"stays positive, got {self.amplitude}")
        if self.period_s <= 0.0:
            raise ValueError(f"period_s must be positive, "
                             f"got {self.period_s}")
        if self.flash_x < 1.0:
            raise ValueError(f"flash_x must be >= 1, got {self.flash_x}")
        if self.flash_at_s < 0.0 or self.flash_len_s < 0.0:
            raise ValueError("flash window must be non-negative")

    def rate_at(self, t: np.ndarray, base: float) -> np.ndarray:
        """Instantaneous rate at simulated times ``t`` (vectorized)."""
        t = np.asarray(t, dtype=np.float64)
        if self.kind == "diurnal":
            return base * (1.0 + self.amplitude
                           * np.sin(2.0 * np.pi * t / self.period_s))
        if self.kind == "flash":
            inside = (t >= self.flash_at_s) \
                & (t < self.flash_at_s + self.flash_len_s)
            return base * np.where(inside, self.flash_x, 1.0)
        return np.full_like(t, base)

    def peak_rate(self, base: float) -> float:
        """Upper bound of ``rate_at`` — the thinning envelope."""
        if self.kind == "diurnal":
            return base * (1.0 + self.amplitude)
        if self.kind == "flash":
            return base * self.flash_x
        return base

    def scaled(self, factor: float) -> "LoadShape":
        """The same shape compressed onto a ``factor``-times window."""
        return dataclasses.replace(
            self, period_s=self.period_s * factor,
            flash_at_s=self.flash_at_s * factor,
            flash_len_s=self.flash_len_s * factor,
        )

    def to_dict(self) -> dict:
        entry = {"kind": self.kind}
        if self.kind == "diurnal":
            entry.update(amplitude=self.amplitude, period_s=self.period_s)
        elif self.kind == "flash":
            entry.update(flash_at_s=self.flash_at_s,
                         flash_len_s=self.flash_len_s,
                         flash_x=self.flash_x)
        return entry


@dataclass(frozen=True)
class Scenario:
    """A complete, seeded serving-workload description.

    One ``seed`` fixes every random draw — per-tenant arrivals, feature
    vectors, repeats, and the in-process models the runner trains — so a
    scenario is a pure function from its declaration to its report.
    ``service_base_s``/``service_per_row_s`` define the deterministic
    affine service model (seconds per dispatched batch of ``k`` billed
    rows: ``base + per_row * k``); simulated time never reads a wall
    clock, which is what makes replays byte-identical.
    """

    name: str
    seed: int
    duration_s: float
    tenants: Tuple[TenantSpec, ...]
    shape: LoadShape = field(default_factory=LoadShape)
    num_features: int = 20
    missing_rate: float = 0.2
    max_batch_size: int = 64
    max_delay_s: float = 0.002
    max_queue: int = 256
    overload: str = "shed-oldest"
    num_workers: int = 2
    #: tree-shard groups of the fleet: 1 replicates the full model to
    #: every worker (a ReplicaSet); > 1 serves through a
    #: ShardedReplicaSet of ``num_workers / num_shards`` replica rows,
    #: so ``num_workers`` must divide evenly
    num_shards: int = 1
    balancer: str = "round-robin"
    service_base_s: float = 0.002
    service_per_row_s: float = 0.00005
    cache_capacity: int = 0
    hot_swap_at_s: float = -1.0
    #: mean delay (simulated seconds) between a request being served and
    #: its binary outcome label becoming available; 0 disables label
    #: emission (the deployment scenarios set it — delayed labels are
    #: what feeds the drift monitor)
    label_delay_s: float = 0.0
    faults: str = ""
    model_trees: int = 4
    model_layers: int = 4
    model_candidates: int = 16
    model_instances: int = 600
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        if self.duration_s <= 0.0:
            raise ValueError(f"duration_s must be positive, "
                             f"got {self.duration_s}")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        if self.label_delay_s < 0.0:
            raise ValueError(f"label_delay_s must be >= 0, "
                             f"got {self.label_delay_s}")
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, "
                             f"got {self.num_shards}")
        if self.num_workers % self.num_shards != 0:
            raise ValueError(
                f"num_workers ({self.num_workers}) must be a multiple "
                f"of num_shards ({self.num_shards}) so every replica "
                "row holds one worker per shard group"
            )
        if self.num_shards > 1 and self.cache_capacity > 0:
            raise ValueError(
                "prediction cache and tree sharding are mutually "
                "exclusive: cache entries hold full-model scores, but "
                "a sharded row only ever computes per-shard partials"
            )
        self.policy  # validate the batching knobs eagerly

    @property
    def policy(self) -> BatchPolicy:
        return BatchPolicy(
            max_batch_size=self.max_batch_size,
            max_delay_s=self.max_delay_s,
            max_queue=self.max_queue,
            overload=self.overload,
        )

    def scaled(self, factor: float) -> "Scenario":
        """A shorter replica of the scenario (smoke/quick modes): the
        window, its shape landmarks, and the hot-swap instant shrink by
        ``factor``; rates and fleet stay untouched."""
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, "
                             f"got {factor}")
        return dataclasses.replace(
            self,
            duration_s=self.duration_s * factor,
            shape=self.shape.scaled(factor),
            hot_swap_at_s=(self.hot_swap_at_s * factor
                           if self.hot_swap_at_s >= 0.0 else -1.0),
            label_delay_s=self.label_delay_s * factor,
        )

    def config_dict(self) -> dict:
        """The declaration echoed into the report (JSON-ready).

        ``label_delay_s`` and ``num_shards`` are echoed only when set,
        so reports of the pre-existing scenarios stay byte-identical to
        their golden fixtures.
        """
        extra = ({"label_delay_s": self.label_delay_s}
                 if self.label_delay_s > 0.0 else {})
        if self.num_shards > 1:
            extra["num_shards"] = self.num_shards
        return {
            **extra,
            "duration_s": self.duration_s,
            "shape": self.shape.to_dict(),
            "num_features": self.num_features,
            "missing_rate": self.missing_rate,
            "policy": {
                "max_batch_size": self.max_batch_size,
                "max_delay_s": self.max_delay_s,
                "max_queue": self.max_queue,
                "overload": self.overload,
            },
            "num_workers": self.num_workers,
            "balancer": self.balancer,
            "service_base_s": self.service_base_s,
            "service_per_row_s": self.service_per_row_s,
            "cache_capacity": self.cache_capacity,
            "hot_swap_at_s": self.hot_swap_at_s,
            "faults": self.faults,
            "model": {
                "trees": self.model_trees,
                "layers": self.model_layers,
                "candidates": self.model_candidates,
                "instances": self.model_instances,
            },
            "tenants": [
                {
                    "name": t.name, "rate_rps": t.rate_rps,
                    "slo_s": t.slo_s, "priority": t.priority,
                    "repeat_rate": t.repeat_rate,
                }
                for t in self.tenants
            ],
        }


# ---------------------------------------------------------------------------
# Trace generation
# ---------------------------------------------------------------------------

def _thinned_arrivals(rng: np.random.Generator, shape: LoadShape,
                      base_rate: float, duration: float) -> np.ndarray:
    """Non-homogeneous Poisson arrivals on ``[0, duration)`` by thinning.

    Candidates arrive at the constant envelope rate
    ``shape.peak_rate(base_rate)``; each is accepted with probability
    ``rate_at(t) / peak``.  All draws come from ``rng`` in a fixed
    order, so the same seed always yields the same arrivals.
    """
    peak = shape.peak_rate(base_rate)
    times: List[np.ndarray] = []
    t = 0.0
    expected = max(int(peak * duration * 1.25) + 16, 32)
    while t < duration:
        gaps = rng.exponential(1.0 / peak, expected)
        chunk = t + np.cumsum(gaps)
        times.append(chunk)
        t = float(chunk[-1])
    candidates = np.concatenate(times)
    candidates = candidates[candidates < duration]
    accept = rng.random(candidates.size) \
        < shape.rate_at(candidates, base_rate) / peak
    return candidates[accept]


def build_trace(scenario: Scenario) -> RequestTrace:
    """Lower a scenario into a multi-tenant :class:`RequestTrace`.

    Per tenant (in declaration order): thinned Poisson arrivals under
    the scenario's load shape, Gaussian feature rows with
    ``missing_rate`` NaN blanks, then ``repeat_rate`` of the rows
    replaced by copies of uniformly drawn earlier rows of the same
    tenant.  The per-tenant streams are then merged by arrival time
    (stable sort: ties keep declaration order), carrying tenant indices
    and priorities for the batcher's admission control.
    """
    rng = np.random.default_rng(scenario.seed)
    all_times: List[np.ndarray] = []
    all_features: List[np.ndarray] = []
    all_tenants: List[np.ndarray] = []
    all_priorities: List[np.ndarray] = []
    for index, tenant in enumerate(scenario.tenants):
        times = _thinned_arrivals(rng, scenario.shape, tenant.rate_rps,
                                  scenario.duration_s)
        n = times.size
        features = rng.standard_normal((n, scenario.num_features))
        if scenario.missing_rate > 0.0:
            blank = rng.random(features.shape) < scenario.missing_rate
            features[blank] = np.nan
        if tenant.repeat_rate > 0.0 and n > 1:
            repeats = rng.random(n) < tenant.repeat_rate
            for i in np.flatnonzero(repeats):
                if i == 0:
                    continue
                features[i] = features[int(rng.integers(i))]
        all_times.append(times)
        all_features.append(features)
        all_tenants.append(np.full(n, index, dtype=np.int32))
        all_priorities.append(
            np.full(n, tenant.priority, dtype=np.int32))
    times = np.concatenate(all_times)
    order = np.argsort(times, kind="stable")
    return RequestTrace(
        features=np.concatenate(all_features, axis=0)[order],
        arrivals=times[order],
        tenants=np.concatenate(all_tenants)[order],
        priorities=np.concatenate(all_priorities)[order],
    )


# ---------------------------------------------------------------------------
# Delayed labels
# ---------------------------------------------------------------------------

#: seed-stream tag for label draws — a *separate* stream from the trace
#: builder's, so adding labels to a scenario never perturbs its arrivals
_LABEL_STREAM = 0x1ABE1


@dataclass(frozen=True)
class LabelStream:
    """Delayed binary outcome labels for a request trace.

    ``labels[i]`` is the ground-truth outcome of request ``i``;
    ``available_s[i]`` is the simulated instant it becomes observable —
    arrival plus an exponential reporting delay, the click-stream
    pattern where feedback trails serving by seconds to days.  The
    deployment controller joins these with the served scores to feed
    per-version drift monitors.
    """

    labels: np.ndarray
    available_s: np.ndarray
    mean_delay_s: float

    def __post_init__(self) -> None:
        if self.labels.shape != self.available_s.shape:
            raise ValueError("one availability time per label required")

    @property
    def num_labels(self) -> int:
        return int(self.labels.size)


def emit_labels(trace: RequestTrace, teacher,
                mean_delay_s: float, seed: int) -> LabelStream:
    """Generate delayed binary labels for every request of a trace.

    ``teacher`` is the compiled ensemble treated as the ground-truth
    process: request ``i``'s label is a Bernoulli draw with probability
    ``sigmoid(teacher.raw_scores(row_i))``.  Labels generated by the
    *incumbent* model make the incumbent well-calibrated by
    construction, so a canary that scores the same traffic worse is
    genuinely worse — the monitor's comparison is against reality, not
    against a favored baseline.  Delays are exponential with mean
    ``mean_delay_s``.  All draws come from a dedicated seed stream, so
    the trace itself is unchanged by label emission.
    """
    if mean_delay_s <= 0.0:
        raise ValueError(f"mean_delay_s must be positive, "
                         f"got {mean_delay_s}")
    raw = np.asarray(teacher.raw_scores(trace.features))
    if raw.ndim != 2 or raw.shape[1] != 1:
        raise ValueError(
            "delayed labels need a binary teacher (one raw score per "
            f"request), got score shape {raw.shape}"
        )
    probs = 1.0 / (1.0 + np.exp(-np.clip(raw[:, 0], -60.0, 60.0)))
    rng = np.random.default_rng([int(seed), _LABEL_STREAM])
    labels = (rng.random(trace.num_requests) < probs).astype(np.int8)
    delays = rng.exponential(mean_delay_s, trace.num_requests)
    return LabelStream(labels=labels,
                       available_s=trace.arrivals + delays,
                       mean_delay_s=mean_delay_s)


# ---------------------------------------------------------------------------
# Invariant audits
# ---------------------------------------------------------------------------

def audit_priority_admission(trace: RequestTrace,
                             report: ServingReport) -> bool:
    """Check the admission invariant against the finished ledger:
    no ``shed-oldest`` drop of a request while a strictly
    lower-priority request sat in the queue.

    A request occupies the queue from its arrival until its batch
    closes (served) or it is dropped.  The check is ledger-only — it
    re-derives occupancy from the records rather than trusting the
    scheduler — so it catches a broken shed policy, not just a broken
    report.  (Requests arriving at exactly the drop instant are treated
    as not-yet-queued; arrivals are continuous draws, so exact ties do
    not occur in generated scenarios.)
    """
    if trace.priorities is None:
        return True
    sheds = [d for d in report.dropped if d.reason == "shed-oldest"]
    if not sheds:
        return True
    close_of = {b.batch_id: b.close_s for b in report.batches}
    departure: Dict[int, float] = {
        r.request_id: close_of[r.batch_id] for r in report.records
    }
    for d in report.dropped:
        departure[d.request_id] = d.drop_s
    ids = np.fromiter(departure, np.int64, len(departure))
    arr = trace.arrivals[ids]
    dep = np.fromiter((departure[int(r)] for r in ids), np.float64,
                      ids.size)
    pri = trace.priorities[ids]
    for drop in sheds:
        occupied = ((arr < drop.drop_s) & (dep > drop.drop_s)
                    & (pri < drop.priority) & (ids != drop.request_id))
        if occupied.any():
            return False
    return True


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

class ScenarioRunner:
    """Replay one scenario through the full serving stack.

    The runner trains the served model (and its hot-swap successor) in
    process from the scenario seed, publishes them to a fresh registry,
    deploys over a simulated replica fleet (with fault injection on the
    deploy path when the scenario declares a fault plan), replays the
    generated trace through the micro-batcher, and emits the
    ``scenario-report/v1`` dict.  ``registry``/``cuts`` can be injected
    to reuse pre-trained models across many runs (the test suites do).

    After :meth:`run`, the raw artifacts stay available as
    ``runner.trace``, ``runner.serving_report`` and ``runner.replicas``
    for white-box assertions.
    """

    def __init__(self, scenario: Scenario,
                 registry: Optional[ModelRegistry] = None,
                 cuts: Optional[list] = None) -> None:
        self.scenario = scenario
        self.registry = registry
        self.cuts = cuts
        self.trace: Optional[RequestTrace] = None
        self.serving_report: Optional[ServingReport] = None
        self.replicas: Optional[ReplicaSet] = None
        self.cache: Optional[PredictionCache] = None

    # -- model provisioning ------------------------------------------------

    def _provision(self) -> None:
        if self.registry is not None:
            return
        from ..core.gbdt import GBDT
        from ..data.dataset import bin_dataset
        from ..data.synthetic import make_classification

        s = self.scenario
        dataset = make_classification(
            s.model_instances, s.num_features, density=0.8,
            seed=s.seed, name=f"scenario-{s.name}",
        )
        config = TrainConfig(
            num_trees=s.model_trees, num_layers=s.model_layers,
            num_candidates=s.model_candidates, learning_rate=0.3,
        )
        registry = ModelRegistry()
        primary = GBDT(config).fit(dataset).ensemble
        registry.publish(primary, source=f"scenario:{s.name}:v1")
        if s.hot_swap_at_s >= 0.0:
            retrain = dataclasses.replace(
                config, num_trees=max(s.model_trees // 2, 1))
            successor = GBDT(retrain).fit(dataset).ensemble
            registry.publish(successor, source=f"scenario:{s.name}:v2")
        # the same binning fit() used, so every split threshold sits on
        # the quantizer's bin grid — the precondition for exact bin-id
        # cache keys
        self.cuts = bin_dataset(dataset, s.model_candidates).cuts
        self.registry = registry

    # -- the replay --------------------------------------------------------

    def run(self) -> dict:
        """Replay the scenario; returns the ``scenario-report/v1`` dict."""
        s = self.scenario
        self._provision()
        trace = build_trace(s)
        self.trace = trace

        injector = None
        if s.faults:
            plan = FaultPlan.parse(s.faults)
            injector = FaultInjector(plan, num_workers=s.num_workers,
                                     num_trees=1, num_layers=2)
        network = SimulatedNetwork(NetworkModel(), injector=injector)
        cache = (PredictionCache(s.cache_capacity, cuts=self.cuts)
                 if s.cache_capacity > 0 else None)
        self.cache = cache
        if cache is not None:
            # eager invalidation on every activation change (hot-swap
            # and rollback alike) — the lazy serve()-time check alone
            # would let a rolled-back version's entries linger until
            # the next lookup
            self.registry.attach_cache(cache)
        if s.num_shards > 1:
            from .sharded import ShardedReplicaSet
            replicas = ShardedReplicaSet(
                self.registry, ClusterConfig(num_workers=s.num_workers),
                num_shards=s.num_shards,
                network=network, balancer=s.balancer,
                service_model=lambda k: s.service_base_s
                + s.service_per_row_s * k,
            )
        else:
            replicas = ReplicaSet(
                self.registry,
                ClusterConfig(num_workers=s.num_workers),
                network=network, balancer=s.balancer,
                service_model=lambda k: s.service_base_s
                + s.service_per_row_s * k,
                cache=cache,
            )
        self.replicas = replicas
        replicas.deploy(1)
        swaps = []
        if s.hot_swap_at_s >= 0.0:
            swaps.append((s.hot_swap_at_s, replicas.deployer(2)))
        batcher = MicroBatcher(replicas, s.policy)
        report = batcher.run(trace, swaps=swaps, collect_scores=True)
        self.serving_report = report
        return self._build_report(trace, report, replicas, cache)

    # -- report assembly ---------------------------------------------------

    def _scores_exact(self, trace: RequestTrace,
                      report: ServingReport) -> bool:
        """Every served score equals a direct, cache-free recompute on
        the version that served it — the exactness conformance check
        that makes the prediction cache (and the whole dispatch path)
        trustworthy."""
        if report.scores is None or not report.records:
            return True
        ids = np.fromiter((r.request_id for r in report.records),
                          np.int64, len(report.records))
        versions = np.fromiter((r.model_version for r in report.records),
                               np.int64, len(report.records))
        for version in np.unique(versions):
            compiled = self.registry.get(int(version)).compiled
            mask = versions == version
            direct = compiled.raw_scores(trace.features[ids[mask]])
            if not np.array_equal(report.scores[mask], direct):
                return False
        return True

    def _build_report(self, trace: RequestTrace, report: ServingReport,
                      replicas: ReplicaSet,
                      cache: Optional[PredictionCache]) -> dict:
        s = self.scenario
        stats = report.latency_stats()
        arrivals_per_tenant = np.bincount(
            trace.tenants, minlength=len(s.tenants))
        served_lat: Dict[int, List[float]] = {
            i: [] for i in range(len(s.tenants))}
        for record in report.records:
            served_lat[trace.tenant_of(record.request_id)].append(
                record.latency_s)
        dropped_per_tenant = np.zeros(len(s.tenants), dtype=np.int64)
        for drop in report.dropped:
            dropped_per_tenant[drop.tenant] += 1

        tenants: Dict[str, dict] = {}
        total_violations = 0
        for index, tenant in enumerate(s.tenants):
            lat = np.asarray(served_lat[index], dtype=np.float64)
            offered = int(arrivals_per_tenant[index])
            dropped = int(dropped_per_tenant[index])
            violations = int((lat > tenant.slo_s).sum()) + dropped
            total_violations += violations
            summary = percentile_summary(lat)
            tenants[tenant.name] = {
                "priority": tenant.priority,
                "rate_rps": tenant.rate_rps,
                "slo_s": tenant.slo_s,
                "arrivals": offered,
                "served": int(lat.size),
                "dropped": dropped,
                "drop_rate": dropped / offered if offered else 0.0,
                "p50_s": summary["p50_s"],
                "p95_s": summary["p95_s"],
                "p99_s": summary["p99_s"],
                "max_s": summary["max_s"],
                "slo_violations": violations,
                "slo_violation_rate": (violations / offered
                                       if offered else 0.0),
            }

        wire = replicas.network.snapshot()
        retry_bytes = sum(
            nbytes for kind, nbytes in wire.bytes_by_kind.items()
            if kind.startswith("retry:")
        )
        conservation = (len(report.records) + len(report.dropped)
                        == trace.num_requests)
        single_version = all(
            len({r.model_version for r in report.records
                 if r.batch_id == b.batch_id}) <= 1
            for b in report.batches
        )
        return {
            "schema": SCENARIO_SCHEMA,
            "scenario": s.name,
            "description": s.description,
            "seed": s.seed,
            "config": s.config_dict(),
            "totals": {
                "arrivals": trace.num_requests,
                "served": stats.count,
                "dropped": stats.dropped,
                "drop_rate": stats.drop_rate,
                "batches": len(report.batches),
                "p50_s": stats.p50_s,
                "p95_s": stats.p95_s,
                "p99_s": stats.p99_s,
                "mean_s": stats.mean_s,
                "max_s": stats.max_s,
                "mean_queue_s": stats.mean_queue_s,
                "throughput_rps": stats.throughput_rps,
                "makespan_s": stats.makespan_s,
                "slo_violations": total_violations,
                "slo_violation_rate": (
                    total_violations / trace.num_requests
                    if trace.num_requests else 0.0),
            },
            "tenants": tenants,
            "cache": cache.stats.to_dict() if cache is not None else None,
            "wire": {
                "deploy_bytes": replicas.deploy_bytes,
                "deploy_raw_bytes": replicas.deploy_raw_bytes,
                "retry_bytes": retry_bytes,
                "bytes_by_kind": dict(sorted(
                    wire.bytes_by_kind.items())),
            },
            "versions_served": report.versions_served(),
            "invariants": {
                "conservation_ok": conservation,
                "priority_admission_ok":
                    audit_priority_admission(trace, report),
                "single_version_batches": single_version,
                "scores_exact": self._scores_exact(trace, report),
            },
        }


def run_scenario(scenario: Scenario,
                 registry: Optional[ModelRegistry] = None,
                 cuts: Optional[list] = None) -> dict:
    """One-shot convenience wrapper around :class:`ScenarioRunner`."""
    return ScenarioRunner(scenario, registry=registry, cuts=cuts).run()


# ---------------------------------------------------------------------------
# The shipped scenario registry
# ---------------------------------------------------------------------------

def _steady() -> Scenario:
    return Scenario(
        name="steady",
        seed=1001,
        duration_s=1.0,
        tenants=(TenantSpec("web", rate_rps=2500.0, slo_s=0.030),),
        shape=LoadShape(kind="steady"),
        description="single-tenant Poisson baseline well inside "
                    "capacity: no drops expected, the latency floor "
                    "of the fleet",
    )


def _diurnal() -> Scenario:
    return Scenario(
        name="diurnal",
        seed=2002,
        duration_s=1.2,
        tenants=(
            TenantSpec("api", rate_rps=1800.0, slo_s=0.030, priority=1,
                       repeat_rate=0.45),
            TenantSpec("batch", rate_rps=900.0, slo_s=0.120,
                       priority=0),
        ),
        shape=LoadShape(kind="diurnal", amplitude=0.6, period_s=0.6),
        cache_capacity=2048,
        description="compressed day/night cycle over two tenants; the "
                    "api tenant re-sends 45% of its vectors, which the "
                    "prediction cache absorbs",
    )


def _flash_crowd() -> Scenario:
    return Scenario(
        name="flash-crowd",
        seed=3003,
        duration_s=1.0,
        tenants=(TenantSpec("web", rate_rps=1500.0, slo_s=0.040),),
        shape=LoadShape(kind="flash", flash_at_s=0.35, flash_len_s=0.2,
                        flash_x=8.0),
        num_workers=2,
        max_queue=128,
        overload="shed-oldest",
        service_base_s=0.004,
        service_per_row_s=0.0001,
        description="an 8x burst for 200ms against a fleet sized for "
                    "the base rate: the bounded queue fills and "
                    "shed-oldest keeps the served batches fresh",
    )


def _heavy_tail() -> Scenario:
    """Eight tenants with Pareto-drawn rates and three priority classes.

    The Pareto draws are fixed by their own seed *inside this builder*
    so the fleet is part of the declaration (and of the report's config
    echo), not of the replay."""
    rng = np.random.default_rng(4004)
    raw = rng.pareto(1.5, 8) + 1.0
    rates = 8000.0 * raw / raw.sum()
    tenants = tuple(
        TenantSpec(
            name=f"tenant-{i}",
            rate_rps=float(max(rates[i], 80.0)),
            slo_s=0.050 if i % 3 == 2 else 0.100,
            priority=i % 3,
        )
        for i in range(8)
    )
    return Scenario(
        name="heavy-tail",
        seed=4004,
        duration_s=1.0,
        tenants=tenants,
        shape=LoadShape(kind="steady"),
        num_workers=1,
        max_queue=96,
        overload="shed-oldest",
        service_base_s=0.004,
        service_per_row_s=0.0001,
        description="heavy-tailed per-tenant rates (Pareto alpha=1.5) "
                    "across three priority classes; overload sheds the "
                    "lowest class first, never a higher one over a "
                    "queued lower one",
    )


def _hot_swap_under_fire() -> Scenario:
    return Scenario(
        name="hot-swap-under-fire",
        seed=5005,
        duration_s=1.0,
        tenants=(
            TenantSpec("web", rate_rps=2000.0, slo_s=0.040,
                       repeat_rate=0.5),
        ),
        shape=LoadShape(kind="steady"),
        cache_capacity=1024,
        hot_swap_at_s=0.5,
        faults="7:drop=0.25,timeout=0.15",
        description="a mid-traffic model deploy over a faulty network "
                    "(drops and timeouts retried on the deploy path): "
                    "every batch still serves exactly one version and "
                    "the cache invalidates at the swap",
    )


def _sharded_steady() -> Scenario:
    return Scenario(
        name="sharded-steady",
        seed=7007,
        duration_s=1.0,
        tenants=(TenantSpec("web", rate_rps=2500.0, slo_s=0.030),),
        shape=LoadShape(kind="steady"),
        num_workers=4,
        num_shards=2,
        model_trees=8,
        description="the steady baseline served by a tree-sharded "
                    "fleet: two replica rows of two workers, each "
                    "holding half the trees, with partial scores "
                    "chained through the score-reduction collective — "
                    "scores stay bit-identical to replicated serving",
    )


def _canary_under_fire() -> Scenario:
    return Scenario(
        name="canary-under-fire",
        seed=6006,
        duration_s=1.0,
        tenants=(TenantSpec("web", rate_rps=2400.0, slo_s=0.040),),
        shape=LoadShape(kind="flash", flash_at_s=0.6, flash_len_s=0.15,
                        flash_x=3.0),
        num_workers=4,
        max_queue=192,
        overload="shed-oldest",
        service_base_s=0.003,
        service_per_row_s=0.00006,
        label_delay_s=0.06,
        faults="11:drop=0.2,timeout=0.1",
        description="a canary rollout evaluated under a 3x flash crowd "
                    "and a faulty deploy network: delayed labels feed "
                    "per-version drift monitors while a slice of the "
                    "fleet serves the candidate",
    )


#: the shipped scenario library, name -> builder
SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "steady": _steady,
    "diurnal": _diurnal,
    "flash-crowd": _flash_crowd,
    "heavy-tail": _heavy_tail,
    "hot-swap-under-fire": _hot_swap_under_fire,
    "sharded-steady": _sharded_steady,
    "canary-under-fire": _canary_under_fire,
}


def get_scenario(name: str, scale: float = 1.0) -> Scenario:
    """Scenario by registry name, optionally time-scaled."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; shipped: "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None
    scenario = builder()
    return scenario if scale == 1.0 else scenario.scaled(scale)


def expected_requests(scenario: Scenario) -> float:
    """Mean offered load of a scenario (for sizing sanity checks)."""
    total = 0.0
    for tenant in scenario.tenants:
        base = tenant.rate_rps * scenario.duration_s
        if scenario.shape.kind == "flash":
            base += (tenant.rate_rps * (scenario.shape.flash_x - 1.0)
                     * min(scenario.shape.flash_len_s,
                           max(scenario.duration_s
                               - scenario.shape.flash_at_s, 0.0)))
        elif scenario.shape.kind == "diurnal":
            w = 2.0 * np.pi / scenario.shape.period_s
            base += (tenant.rate_rps * scenario.shape.amplitude
                     * (1.0 - math.cos(w * scenario.duration_s)) / w)
        total += base
    return total
