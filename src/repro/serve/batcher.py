"""Micro-batching request scheduler on the simulated clock.

Serving traffic arrives one request at a time; the compiled predictor is
fastest on large batches.  The :class:`MicroBatcher` bridges the two with
the classic policy pair: a batch dispatches when it reaches
``max_batch_size`` requests **or** when its oldest request has waited
``max_delay_s``, whichever comes first.  Following the repo's simulation
discipline (computation real, coordination simulated), time is a simulated
clock driven by the trace's arrival process — by default the *service*
time of each batch is the measured wall-clock of the compiled predictor,
while tests substitute a deterministic ``service_model`` so schedules are
reproducible down to the float.

Every request's life is recorded in a :class:`RequestRecord` (arrival,
batch, dispatch start, completion, worker, model version) and summarized
by :class:`LatencyStats` (p50/p95/p99/mean/max latency plus throughput).
The model version of a batch is resolved exactly once at dispatch — that
is what makes a registry hot-swap atomic from the traffic's point of
view: each request is served by exactly one version, and the swap falls
on a batch boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ledger import percentile_summary
from .compiler import CompiledEnsemble
from .registry import ModelRegistry

#: a hot-swap scheduled on the simulated clock: ``(time_s, action)``;
#: the action receives the swap time (e.g. to stamp a deploy)
SwapEvent = Tuple[float, Callable[[float], None]]


@dataclass(frozen=True)
class BatchPolicy:
    """Dispatch a batch at ``max_batch_size`` requests or after the
    oldest request has waited ``max_delay_s``, whichever happens first.

    ``max_queue`` bounds the admission queue (0 = unbounded, the
    default).  When offered load exceeds capacity a bounded queue fills
    and the ``overload`` policy decides who pays: ``"reject"`` drops the
    *newcomer* at its arrival (drop-tail — queued requests keep their
    place, admission latency is predictable), ``"shed-oldest"`` drops
    the *head* of the queue to admit the newcomer (drop-head — the
    request most likely to already be uselessly stale is sacrificed,
    as in SEDA-style load shedding).  Dropped requests appear in the
    :class:`ServingReport` ledger and the drop rate in
    :class:`LatencyStats`.
    """

    max_batch_size: int = 64
    max_delay_s: float = 0.002
    max_queue: int = 0
    overload: str = "reject"

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if not (self.max_delay_s >= 0.0):
            raise ValueError("max_delay_s must be >= 0")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0 (0 = unbounded)")
        if 0 < self.max_queue < self.max_batch_size:
            raise ValueError(
                "a bounded queue must hold at least one full batch: "
                f"max_queue={self.max_queue} < "
                f"max_batch_size={self.max_batch_size}"
            )
        if self.overload not in ("reject", "shed-oldest"):
            raise ValueError(
                f"unknown overload policy: {self.overload!r} "
                "(choose 'reject' or 'shed-oldest')"
            )

    @property
    def bounded(self) -> bool:
        return self.max_queue > 0


@dataclass(frozen=True)
class RequestTrace:
    """A replayable serving workload: rows plus their arrival times.

    ``features`` is a dense ``(num_requests, num_features)`` float64
    matrix (``NaN`` marks missing values, matching the sparse-input
    convention of :class:`~repro.serve.compiler.CompiledEnsemble`);
    ``arrivals`` is finite, nondecreasing simulated seconds.  A ``NaN``
    or infinite arrival is rejected here rather than silently producing
    negative queue delays downstream (``NaN`` compares false against
    everything, so a diff-based monotonicity check alone lets it
    through).

    ``tenants`` and ``priorities`` are optional per-request ``int``
    arrays for multi-tenant traffic: ``tenants[i]`` names the fleet
    tenant that issued request ``i`` (an index into whatever tenant
    table the trace builder keeps) and ``priorities[i]`` is its
    admission priority class — **higher values are more important** and
    are shed last under overload.  Single-tenant traces leave both
    ``None``; every request then belongs to tenant 0 at priority 0.
    """

    features: np.ndarray
    arrivals: np.ndarray
    tenants: Optional[np.ndarray] = None
    priorities: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ValueError("trace features must be 2-D")
        if self.arrivals.shape != (self.features.shape[0],):
            raise ValueError("one arrival time per request required")
        if self.arrivals.size and not np.all(np.isfinite(self.arrivals)):
            raise ValueError(
                "arrival times must be finite (a NaN or infinite "
                "arrival would corrupt every queue-delay downstream)"
            )
        if self.arrivals.size and np.any(np.diff(self.arrivals) < 0):
            raise ValueError("arrival times must be nondecreasing")
        for name in ("tenants", "priorities"):
            extra = getattr(self, name)
            if extra is None:
                continue
            if extra.shape != (self.features.shape[0],):
                raise ValueError(f"one {name[:-1]} entry per request "
                                 "required")
            if not np.issubdtype(extra.dtype, np.integer):
                raise ValueError(f"{name} must be an integer array")

    @property
    def num_requests(self) -> int:
        return self.features.shape[0]

    def tenant_of(self, request_id: int) -> int:
        """Tenant index of one request (0 for single-tenant traces)."""
        return (0 if self.tenants is None
                else int(self.tenants[request_id]))

    def priority_of(self, request_id: int) -> int:
        """Admission priority of one request (0 when unprioritized)."""
        return (0 if self.priorities is None
                else int(self.priorities[request_id]))

    def csc(self):
        """The trace rows as a :class:`~repro.data.matrix.CSCMatrix`.

        Non-``NaN`` entries become stored entries — the format
        ``TreeEnsemble.raw_scores`` consumes, used by the bench's naive
        baseline and the exactness tests.  (A dense trace cannot carry a
        *stored* exact zero; synthetic Gaussian traces never hit one.)
        """
        from ..data.matrix import CSCMatrix

        mask = ~np.isnan(self.features)
        by_col = mask.T
        cols, rows = np.nonzero(by_col)
        indptr = np.concatenate(
            ([0], np.cumsum(by_col.sum(axis=1)))
        ).astype(np.int64)
        return CSCMatrix(indptr, rows.astype(np.int64),
                         np.ascontiguousarray(self.features.T[by_col]),
                         self.features.shape[0])


def synthetic_trace(num_requests: int, num_features: int,
                    rate_rps: float, seed: int = 0,
                    missing_rate: float = 0.2) -> RequestTrace:
    """Seeded Poisson-arrival trace with Gaussian features.

    Inter-arrival gaps are exponential with mean ``1 / rate_rps``; a
    ``missing_rate`` fraction of entries is blanked to ``NaN`` so the
    default-direction paths of the served model actually get traffic.
    """
    if rate_rps <= 0.0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((num_requests, num_features))
    if missing_rate > 0.0:
        features[rng.random(features.shape) < missing_rate] = np.nan
    arrivals = np.cumsum(rng.exponential(1.0 / rate_rps, num_requests))
    return RequestTrace(features=features, arrivals=arrivals)


@dataclass
class RequestRecord:
    """Ledger entry for one served request (all times simulated)."""

    request_id: int
    arrival_s: float
    batch_id: int
    start_s: float
    completion_s: float
    worker: int
    model_version: int

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting before the batch started computing."""
        return self.start_s - self.arrival_s


@dataclass(frozen=True)
class DropRecord:
    """Ledger entry for one request dropped by the overload policy.

    ``reason`` is ``"reject"`` (drop-tail: the request was turned away
    at arrival) or ``"shed-oldest"`` (drop-head: it was admitted but
    evicted at ``drop_s`` to make room for a newer arrival).

    ``tenant`` and ``priority`` attribute the drop to the tenant that
    offered the request and its admission class (both 0 on
    single-tenant, unprioritized traces) — per-tenant drop rates in the
    scenario reports are computed from exactly these fields.
    """

    request_id: int
    arrival_s: float
    drop_s: float
    reason: str
    tenant: int = 0
    priority: int = 0

    @property
    def queued_s(self) -> float:
        """Time spent queued before the drop (0 for rejects)."""
        return self.drop_s - self.arrival_s


@dataclass
class BatchRecord:
    """One dispatched micro-batch."""

    batch_id: int
    size: int
    close_s: float
    start_s: float
    completion_s: float
    worker: int
    model_version: int


@dataclass(frozen=True)
class DispatchResult:
    """What a backend reports for one batch it executed."""

    start_s: float
    completion_s: float
    worker: int
    model_version: int
    scores: np.ndarray


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution and throughput of a finished run."""

    count: int
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    max_s: float
    mean_queue_s: float
    throughput_rps: float
    makespan_s: float
    #: requests dropped by the overload policy (0 with an unbounded queue)
    dropped: int = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of offered requests dropped by the overload policy."""
        offered = self.count + self.dropped
        return self.dropped / offered if offered else 0.0

    @classmethod
    def from_records(cls, records: Sequence[RequestRecord],
                     dropped: int = 0) -> "LatencyStats":
        if not records:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                       dropped=dropped)
        lat = np.array([r.latency_s for r in records])
        queue = np.array([r.queue_s for r in records])
        summary = percentile_summary(lat)
        makespan = max(r.completion_s for r in records)
        return cls(
            count=len(records),
            p50_s=summary["p50_s"], p95_s=summary["p95_s"],
            p99_s=summary["p99_s"],
            mean_s=summary["mean_s"], max_s=summary["max_s"],
            mean_queue_s=float(queue.mean()),
            throughput_rps=len(records) / makespan if makespan > 0
            else float("inf"),
            makespan_s=float(makespan),
            dropped=dropped,
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count, "p50_s": self.p50_s,
            "p95_s": self.p95_s, "p99_s": self.p99_s,
            "mean_s": self.mean_s, "max_s": self.max_s,
            "mean_queue_s": self.mean_queue_s,
            "throughput_rps": self.throughput_rps,
            "makespan_s": self.makespan_s,
            "dropped": self.dropped, "drop_rate": self.drop_rate,
        }


@dataclass
class ServingReport:
    """Full outcome of one :meth:`MicroBatcher.run`."""

    records: List[RequestRecord] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    #: requests dropped by the overload policy, in drop order
    dropped: List[DropRecord] = field(default_factory=list)
    #: per-request raw scores, ``(num_requests, gradient_dim)``;
    #: ``None`` unless the run collected them
    scores: Optional[np.ndarray] = None

    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_records(self.records,
                                         dropped=len(self.dropped))

    def versions_served(self) -> List[int]:
        """Distinct model versions that served traffic, in first-use
        order — the hot-swap tests assert on this."""
        seen: List[int] = []
        for record in self.records:
            if record.model_version not in seen:
                seen.append(record.model_version)
        return seen


class ModelServer:
    """Single-worker serving backend.

    Wraps either a bare :class:`CompiledEnsemble` (version 0) or a
    :class:`~repro.serve.registry.ModelRegistry`, whose *active* version
    is resolved once per dispatched batch.  ``service_model`` maps a
    batch size to simulated service seconds; when omitted, the measured
    wall-clock of the compiled predictor is used (computation-is-real).

    ``cache`` (opt-in) is a :class:`~repro.serve.cache.PredictionCache`
    consulted per dispatched row; with a deterministic ``service_model``
    only the rows that *miss* are billed, so repeats get cheaper batches.
    """

    def __init__(self, model: Union[CompiledEnsemble, ModelRegistry],
                 service_model: Optional[Callable[[int], float]] = None,
                 cache=None) -> None:
        self._registry = model if isinstance(model, ModelRegistry) else None
        self._compiled = model if isinstance(model, CompiledEnsemble) \
            else None
        if self._registry is None and self._compiled is None:
            raise TypeError(
                "model must be a CompiledEnsemble or a ModelRegistry"
            )
        self.service_model = service_model
        self.cache = cache
        self._free_s = 0.0

    def resolve(self) -> Tuple[CompiledEnsemble, int]:
        """The (compiled model, version) serving right now."""
        if self._registry is not None:
            entry = self._registry.active
            return entry.compiled, entry.version
        return self._compiled, 0

    def next_free_s(self) -> float:
        """Earliest simulated time the next batch could start."""
        return self._free_s

    def dispatch(self, features: np.ndarray,
                 close_s: float) -> DispatchResult:
        compiled, version = self.resolve()
        began = time.perf_counter()
        if self.cache is None:
            scores = compiled.raw_scores(features)
            billable = features.shape[0]
        else:
            scores, billable = self.cache.serve(
                version, features, compiled.raw_scores)
        measured = time.perf_counter() - began
        seconds = (measured if self.service_model is None
                   else float(self.service_model(billable)))
        start = max(close_s, self._free_s)
        self._free_s = start + seconds
        return DispatchResult(
            start_s=start, completion_s=self._free_s, worker=0,
            model_version=version, scores=scores,
        )


class MicroBatcher:
    """Replay a trace through a backend under a :class:`BatchPolicy`.

    The backend contract is two methods: ``next_free_s()`` (earliest
    simulated start for the next batch — used to keep collecting arrivals
    while all capacity is busy) and ``dispatch(features, close_s)``
    returning a :class:`DispatchResult`.  Both :class:`ModelServer` and
    :class:`~repro.serve.replica.ReplicaSet` satisfy it.  A backend that
    sets ``accepts_ids = True`` is additionally passed the request ids of
    each batch as ``dispatch(..., ids=...)`` — the deployment router uses
    them to join served scores with their delayed labels.
    """

    def __init__(self, backend, policy: Optional[BatchPolicy] = None
                 ) -> None:
        self.backend = backend
        self.policy = policy or BatchPolicy()
        self._pass_ids = bool(getattr(backend, "accepts_ids", False))

    def _dispatch(self, features: np.ndarray, close_s: float,
                  ids: np.ndarray) -> DispatchResult:
        if self._pass_ids:
            return self.backend.dispatch(features, close_s, ids=ids)
        return self.backend.dispatch(features, close_s)

    def run(self, trace: RequestTrace,
            swaps: Sequence[SwapEvent] = (),
            collect_scores: bool = False) -> ServingReport:
        """Serve every request of ``trace``; returns the full ledger.

        ``swaps`` schedules hot-swap actions on the simulated clock:
        each ``(time_s, action)`` fires once, just before the first batch
        that closes at or after ``time_s`` resolves its model — so a
        swap lands exactly on a batch boundary and no batch straddles
        two versions.

        With a bounded queue (``policy.max_queue > 0``) the run takes
        the admission-controlled path: overflowing requests are dropped
        per ``policy.overload`` and appear in ``report.dropped``.
        """
        if self.policy.bounded:
            return self._run_bounded(trace, swaps, collect_scores)
        policy = self.policy
        arrivals = trace.arrivals
        total = trace.num_requests
        pending_swaps = sorted(swaps, key=lambda s: s[0])
        report = ServingReport()
        if collect_scores:
            scores: Optional[List[np.ndarray]] = []
        i = 0
        swap_i = 0
        while i < total:
            first = arrivals[i]
            # the batch closes when full, when the oldest request times
            # out, or when capacity frees up — whichever is latest of
            # (earliest of the first two) and the free time, so queues
            # keep absorbing arrivals while every worker is busy
            if i + policy.max_batch_size <= total:
                full_s = arrivals[i + policy.max_batch_size - 1]
            else:
                full_s = np.inf
            close = min(first + policy.max_delay_s, full_s)
            close = max(close, first, self.backend.next_free_s())
            size = min(
                int(np.searchsorted(arrivals, close, side="right")) - i,
                policy.max_batch_size,
            )
            while swap_i < len(pending_swaps) \
                    and pending_swaps[swap_i][0] <= close:
                when, action = pending_swaps[swap_i]
                action(when)
                swap_i += 1
            result = self._dispatch(
                trace.features[i:i + size], float(close),
                np.arange(i, i + size, dtype=np.int64),
            )
            batch_id = len(report.batches)
            report.batches.append(BatchRecord(
                batch_id=batch_id, size=size, close_s=float(close),
                start_s=result.start_s,
                completion_s=result.completion_s,
                worker=result.worker,
                model_version=result.model_version,
            ))
            for k in range(size):
                report.records.append(RequestRecord(
                    request_id=i + k,
                    arrival_s=float(arrivals[i + k]),
                    batch_id=batch_id,
                    start_s=result.start_s,
                    completion_s=result.completion_s,
                    worker=result.worker,
                    model_version=result.model_version,
                ))
            if collect_scores:
                scores.append(result.scores)
            i += size
        # late swaps (after the last close) still fire so a scheduled
        # deploy is never silently skipped
        for when, action in pending_swaps[swap_i:]:
            action(when)
        if collect_scores:
            report.scores = (np.concatenate(scores, axis=0) if scores
                             else np.zeros((0, 0)))
        return report

    @staticmethod
    def _shed_victim(trace: RequestTrace, backlog: List[int],
                     newcomer: int) -> Optional[int]:
        """Backlog position the shed policy evicts to admit ``newcomer``,
        or ``None`` when the newcomer itself must be refused.

        Unprioritized traces shed the queue head (plain drop-head).
        With priorities, admission is class-aware: the victim is the
        *oldest request of the lowest priority class queued* — so a
        higher-priority request is never dropped while a lower-priority
        one sits in the queue — and a newcomer below every queued class
        is refused rather than admitted over anyone's head.
        """
        if trace.priorities is None:
            return 0
        lowest = min(trace.priority_of(r) for r in backlog)
        if trace.priority_of(newcomer) < lowest:
            return None
        for pos, request in enumerate(backlog):
            if trace.priority_of(request) == lowest:
                return pos
        raise AssertionError("unreachable: lowest class vanished")

    def _run_bounded(self, trace: RequestTrace,
                     swaps: Sequence[SwapEvent],
                     collect_scores: bool) -> ServingReport:
        """Admission-controlled replay: a queue of at most ``max_queue``
        requests, overflow resolved by the overload policy.

        Requests are admitted at their arrival instant.  A full queue
        either turns the newcomer away (``reject``) or evicts a queued
        victim (``shed-oldest``: the oldest request of the lowest
        priority class present, see :meth:`_shed_victim`); evicting the
        head restarts the delay budget from the new head, so a shedding
        queue under sustained overload keeps dispatching full, fresh
        batches.  ``report.records`` follows dispatch order (with
        shedding this is not request order); ``report.scores`` rows
        align with it.
        """
        policy = self.policy
        arrivals = trace.arrivals
        total = trace.num_requests
        pending_swaps = sorted(swaps, key=lambda s: s[0])
        report = ServingReport()
        if collect_scores:
            scores: List[np.ndarray] = []
        backlog: List[int] = []
        i = 0
        swap_i = 0
        while i < total or backlog:
            if not backlog:
                backlog.append(i)
                i += 1
            free = self.backend.next_free_s()
            if len(backlog) >= policy.max_batch_size:
                # a full batch closes as soon as capacity frees (its
                # fill arrival is necessarily in the past)
                close = max(
                    float(arrivals[backlog[policy.max_batch_size - 1]]),
                    free)
            else:
                close = max(
                    float(arrivals[backlog[0]]) + policy.max_delay_s,
                    free)
            if i < total and arrivals[i] <= close:
                # the next arrival lands before this batch dispatches:
                # an admission event — the queue absorbs it while there
                # is room, otherwise the overload policy picks a victim
                now = float(arrivals[i])
                if len(backlog) < policy.max_queue:
                    backlog.append(i)
                elif policy.overload == "reject":
                    report.dropped.append(DropRecord(
                        i, now, now, "reject",
                        tenant=trace.tenant_of(i),
                        priority=trace.priority_of(i)))
                else:
                    victim_pos = self._shed_victim(trace, backlog, i)
                    if victim_pos is None:
                        # the newcomer is strictly the lowest admission
                        # class present — it is turned away instead of
                        # evicting anyone more important
                        report.dropped.append(DropRecord(
                            i, now, now, "reject",
                            tenant=trace.tenant_of(i),
                            priority=trace.priority_of(i)))
                    else:
                        victim = backlog.pop(victim_pos)
                        report.dropped.append(DropRecord(
                            victim, float(arrivals[victim]), now,
                            "shed-oldest",
                            tenant=trace.tenant_of(victim),
                            priority=trace.priority_of(victim)))
                        backlog.append(i)
                i += 1
                continue
            size = min(len(backlog), policy.max_batch_size)
            batch_ids = backlog[:size]
            del backlog[:size]
            while swap_i < len(pending_swaps) \
                    and pending_swaps[swap_i][0] <= close:
                when, action = pending_swaps[swap_i]
                action(when)
                swap_i += 1
            result = self._dispatch(
                trace.features[batch_ids], float(close),
                np.asarray(batch_ids, dtype=np.int64),
            )
            batch_id = len(report.batches)
            report.batches.append(BatchRecord(
                batch_id=batch_id, size=size, close_s=float(close),
                start_s=result.start_s,
                completion_s=result.completion_s,
                worker=result.worker,
                model_version=result.model_version,
            ))
            for request in batch_ids:
                report.records.append(RequestRecord(
                    request_id=request,
                    arrival_s=float(arrivals[request]),
                    batch_id=batch_id,
                    start_s=result.start_s,
                    completion_s=result.completion_s,
                    worker=result.worker,
                    model_version=result.model_version,
                ))
            if collect_scores:
                scores.append(result.scores)
        for when, action in pending_swaps[swap_i:]:
            action(when)
        if collect_scores:
            report.scores = (np.concatenate(scores, axis=0) if scores
                             else np.zeros((0, 0)))
        return report
