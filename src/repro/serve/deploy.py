"""Closed-loop deployment: canary routing, shadow scoring, drift
monitors, auto-rollback.

This module closes the train → deploy → monitor → retrain loop on the
simulated clock.  A :class:`DeployController` runs one full deployment
episode against a traffic scenario:

1. the incumbent model ships to the whole fleet (``deploy:model``);
2. a candidate is staged as a *canary* in the registry and deployed to
   a slice of the workers (``deploy:canary``); from then on a
   :class:`CanaryRouter` sends a seeded fraction of batches to the
   canary slice — or, in *shadow* mode, keeps serving every batch from
   the incumbent while the canary slice scores the same traffic off the
   serving path (its compute is billed, its answers go only to the
   monitor);
3. delayed binary labels (:func:`~repro.serve.scenarios.emit_labels`)
   arrive on the simulated clock and feed per-version rolling
   logloss/AUC windows in a :class:`DriftMonitor`;
4. when the canary's window degrades beyond the
   :class:`RollbackPolicy` margins, the router rolls back *mid-flight*:
   the registry retires the canary (:meth:`ModelRegistry.roll_back
   <repro.serve.registry.ModelRegistry.roll_back>`), the incumbent
   redeploys onto the canary slice (``deploy:rollback``), attached
   prediction caches flush eagerly, and a retrain
   (:class:`~repro.systems.executor.TrainingSession`) publishes the
   next candidate — zero batches are served by the condemned version
   after the decision, by construction and by ledger-derived audit;
5. a canary whose window stays healthy through the episode is promoted
   to active and rolled out fleet-wide.

Every decision — deploy, canary-start, rollback, promote, hold,
retrain — is recorded in a ``deploy-report/v1`` decision log and
broadcast to the fleet as ``deploy:decision`` control traffic, so the
wire ledger prices the control plane exactly like the paper prices
training communication.  Everything is seeded and served under a
deterministic service model, so a deployment episode replays to
byte-identical report JSON, and :func:`audit_deploy` re-derives the
split ratio and the no-traffic-after-rollback invariant from the
serving ledger alone — the report's verdict never has to be trusted.
"""

from __future__ import annotations

import copy
import dataclasses
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ClusterConfig, NetworkModel, TrainConfig
from ..cluster.faults import FaultInjector, FaultPlan
from ..cluster.network import SimulatedNetwork
from ..core.metrics import auc as _auc
from ..core.metrics import logloss as _logloss
from ..core.serialize import canonical_payload_bytes, ensemble_to_dict
from ..ledger import DEPLOY_SCHEMA, percentile_summary
from .batcher import DispatchResult, MicroBatcher, ServingReport
from .registry import ModelRegistry
from .replica import ReplicaSet
from .scenarios import LabelStream, Scenario, build_trace, emit_labels

#: wire ledger kinds of the deployment control plane
CANARY_KIND = "deploy:canary"
ROLLBACK_KIND = "deploy:rollback"
DECISION_KIND = "deploy:decision"


def _sigmoid(raw: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0)))


def degrade_payload(payload: dict) -> dict:
    """A deliberately broken successor: every leaf weight negated.

    The resulting model scores every request exactly backwards — the
    worst canary that still parses, compiles, and ships like a real
    model.  The closed-loop tests deploy it to prove the monitor
    condemns it and the rollback path actually fires.
    """
    broken = copy.deepcopy(payload)
    for tree in broken["trees"]:
        for node in tree["nodes"].values():
            if "weight" in node:
                node["weight"] = [-w for w in node["weight"]]
    return broken


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CanaryPolicy:
    """How the candidate meets traffic.

    ``fraction`` of batches route to the canary worker slice once it is
    live (ignored in ``shadow`` mode, where the incumbent serves
    everything and the canary only scores).  ``canary_workers`` workers
    — the highest-numbered ids — form the slice.  The canary goes live
    at ``start_frac`` of the scenario window, so scaled (smoke) runs
    keep the same episode shape.  ``seed`` fixes the routing draws.
    """

    fraction: float = 0.25
    canary_workers: int = 1
    start_frac: float = 0.15
    shadow: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), "
                             f"got {self.fraction}")
        if self.canary_workers < 1:
            raise ValueError("canary_workers must be >= 1")
        if not 0.0 <= self.start_frac < 1.0:
            raise ValueError(f"start_frac must be in [0, 1), "
                             f"got {self.start_frac}")

    def to_dict(self) -> dict:
        return {
            "fraction": self.fraction,
            "canary_workers": self.canary_workers,
            "start_frac": self.start_frac,
            "shadow": self.shadow,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class RollbackPolicy:
    """When the monitor's evidence condemns (or clears) the canary.

    Verdicts are computed over the rolling windows of the
    :class:`DriftMonitor`: ``"hold"`` until both versions have
    ``min_labels`` labels; ``"rollback"`` when the canary's window
    logloss exceeds the incumbent's by more than ``logloss_margin``
    AND its window AUC falls more than ``auc_margin`` below (the AUC
    requirement is waived while either window holds a single class);
    ``"healthy"`` otherwise.  Corroboration matters: the verdict is
    re-evaluated on every label drain, so over thousands of
    evaluations a single noisy metric *will* transiently cross its
    margin on a healthy canary — requiring calibration (logloss) and
    ranking (AUC) to degrade together is what keeps the false-rollback
    rate negligible without giving up mid-flight detection.  The
    margins are calibrated in ``bench/deploy_bench.py``: a same-data
    retrain lands well inside them, a sign-flipped model far outside.
    """

    window: int = 256
    min_labels: int = 40
    logloss_margin: float = 0.25
    auc_margin: float = 0.15

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.min_labels < 1:
            raise ValueError("min_labels must be >= 1")
        if self.logloss_margin <= 0.0 or self.auc_margin <= 0.0:
            raise ValueError("margins must be positive")

    def verdict(self, incumbent: dict, canary: dict) -> str:
        """``"hold"``, ``"rollback"``, or ``"healthy"`` given the two
        monitor snapshots."""
        if min(incumbent["labels"], canary["labels"]) < self.min_labels:
            return "hold"
        logloss_bad = (canary["logloss"] - incumbent["logloss"]
                       > self.logloss_margin)
        if incumbent["auc"] is None or canary["auc"] is None:
            auc_bad = True    # single-class window: no ranking evidence
        else:
            auc_bad = (incumbent["auc"] - canary["auc"]
                       > self.auc_margin)
        return "rollback" if (logloss_bad and auc_bad) else "healthy"

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "min_labels": self.min_labels,
            "logloss_margin": self.logloss_margin,
            "auc_margin": self.auc_margin,
        }


# ---------------------------------------------------------------------------
# Drift monitoring
# ---------------------------------------------------------------------------

class DriftMonitor:
    """Per-version rolling logloss/AUC over delayed labels.

    Each observation is ``(label, served probability)`` for one request,
    attributed to the version that served (or shadow-scored) it.  The
    window is a bounded deque, so the metrics track *recent* quality —
    drift shows up instead of being averaged away by a long healthy
    history.  AUC is ``None`` while the window holds a single class
    (the rank statistic is undefined there, and the rollback policy
    treats it as no evidence rather than as zero).
    """

    def __init__(self, window: int = 256) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self._labels: Dict[int, deque] = {}
        self._probs: Dict[int, deque] = {}
        self._seen: Dict[int, int] = {}

    def observe(self, version: int, label: int, prob: float) -> None:
        if version not in self._labels:
            self._labels[version] = deque(maxlen=self.window)
            self._probs[version] = deque(maxlen=self.window)
            self._seen[version] = 0
        self._labels[version].append(int(label))
        self._probs[version].append(float(prob))
        self._seen[version] += 1

    def versions(self) -> List[int]:
        return sorted(self._labels)

    def labels_seen(self, version: int) -> int:
        """Total labels ever attributed to ``version``."""
        return self._seen.get(version, 0)

    def logloss(self, version: int) -> Optional[float]:
        labels = self._labels.get(version)
        if not labels:
            return None
        return float(_logloss(np.asarray(labels, dtype=np.float64),
                              np.asarray(self._probs[version])))

    def auc(self, version: int) -> Optional[float]:
        labels = self._labels.get(version)
        if not labels:
            return None
        arr = np.asarray(labels, dtype=np.float64)
        if arr.min() == arr.max():
            return None    # single class: rank statistic undefined
        return float(_auc(arr, np.asarray(self._probs[version])))

    def snapshot(self, version: int) -> dict:
        """JSON-ready window state of one version."""
        return {
            "labels": self.labels_seen(version),
            "window": len(self._labels.get(version, ())),
            "logloss": self.logloss(version),
            "auc": self.auc(version),
        }


# ---------------------------------------------------------------------------
# Decision log
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeployDecision:
    """One entry of the deployment decision log.

    ``batch_seq`` is the number of batches dispatched *before* the
    decision took effect — the ledger-side anchor: re-deriving "no
    canary traffic after the rollback" needs only this integer and the
    serving records, never the report's own claims.  ``wire_bytes`` is
    the deploy traffic the decision itself caused (0 for hold).
    """

    at_s: float
    batch_seq: int
    kind: str
    version: int
    reason: str
    wire_bytes: int = 0
    window: Optional[dict] = None

    def to_dict(self) -> dict:
        entry = {
            "at_s": self.at_s,
            "batch_seq": self.batch_seq,
            "kind": self.kind,
            "version": self.version,
            "reason": self.reason,
            "wire_bytes": self.wire_bytes,
        }
        if self.window is not None:
            entry["window"] = self.window
        return entry


# ---------------------------------------------------------------------------
# The router
# ---------------------------------------------------------------------------

class CanaryRouter:
    """MicroBatcher backend that splits traffic between two versions.

    Wraps a :class:`~repro.serve.replica.ReplicaSet` whose fleet is
    partitioned into an incumbent pool and a canary pool (the
    highest-numbered ``canary_workers`` ids).  Each dispatched batch
    routes to exactly one pool — a seeded Bernoulli draw per batch once
    the canary is live — so the mixed-version invariant (every request
    served by exactly one version) holds by construction and is
    re-checkable from the ledger.

    The router is also the label join point: it advertises
    ``accepts_ids`` so the batcher passes request ids, pushes each
    served request's ``(available_s, label, probability, version)`` onto
    a heap, and drains every label whose availability time has passed
    before routing the next batch.  Each drained label feeds the
    :class:`DriftMonitor`; a ``"rollback"`` verdict fires the
    controller's rollback hook *at the label's timestamp*, before any
    further batch is routed — which is exactly why zero requests reach
    the condemned version after the decision.
    """

    accepts_ids = True

    def __init__(self, replicas: ReplicaSet, monitor: DriftMonitor,
                 canary_policy: CanaryPolicy,
                 rollback_policy: RollbackPolicy,
                 labels: LabelStream,
                 incumbent_version: int, canary_version: int,
                 canary_compiled=None,
                 on_rollback=None) -> None:
        k = canary_policy.canary_workers
        if k >= replicas.num_workers:
            raise ValueError(
                f"canary pool of {k} worker(s) must leave at least one "
                f"incumbent worker (fleet has {replicas.num_workers})"
            )
        self.replicas = replicas
        self.monitor = monitor
        self.canary_policy = canary_policy
        self.rollback_policy = rollback_policy
        self.labels = labels
        self.incumbent_version = incumbent_version
        self.canary_version = canary_version
        #: compiled canary for shadow scoring (resolved by the caller so
        #: the router never touches the registry on the hot path)
        self.canary_compiled = canary_compiled
        self.on_rollback = on_rollback
        self.incumbent_pool = list(range(replicas.num_workers - k))
        self.canary_pool = list(range(replicas.num_workers - k,
                                      replicas.num_workers))
        self._rng = np.random.default_rng(canary_policy.seed)
        self._heap: List[Tuple[float, int, int, float]] = []
        self.canary_live = False
        self.rolled_back = False
        self.dispatches = 0
        self.canary_start_s: Optional[float] = None
        self.canary_start_seq: Optional[int] = None
        self.rollback_s: Optional[float] = None
        self.rollback_seq: Optional[int] = None
        self.shadow_batches = 0
        self.shadow_rows = 0

    # -- lifecycle ---------------------------------------------------------

    def mark_canary_started(self, at_s: float) -> None:
        """The canary slice is deployed and live as of ``at_s``."""
        self.canary_live = True
        self.canary_start_s = at_s
        self.canary_start_seq = self.dispatches

    @property
    def _split_active(self) -> bool:
        return self.canary_live and not self.rolled_back

    def _serve_pool(self) -> Optional[List[int]]:
        """Pool of the *next* incumbent-side batch (None = whole fleet)."""
        if not self._split_active:
            return None
        return self.incumbent_pool

    # -- label drain + verdicts --------------------------------------------

    def advance(self, now_s: float) -> None:
        """Feed the monitor every label available by ``now_s``; execute
        a mid-flight rollback the instant the evidence condemns the
        canary."""
        while self._heap and self._heap[0][0] <= now_s:
            at_s, request_id, version, prob = heapq.heappop(self._heap)
            self.monitor.observe(version,
                                 int(self.labels.labels[request_id]),
                                 prob)
            if not self._split_active:
                continue
            verdict = self.rollback_policy.verdict(
                self.monitor.snapshot(self.incumbent_version),
                self.monitor.snapshot(self.canary_version),
            )
            if verdict == "rollback":
                self.rolled_back = True
                self.rollback_s = at_s
                self.rollback_seq = self.dispatches
                if self.on_rollback is not None:
                    self.on_rollback(at_s)

    def final_verdict(self) -> str:
        """Episode outcome after draining every remaining label."""
        self.advance(np.inf)
        if self.rolled_back:
            return "rollback"
        if not self.canary_live:
            return "hold"
        verdict = self.rollback_policy.verdict(
            self.monitor.snapshot(self.incumbent_version),
            self.monitor.snapshot(self.canary_version),
        )
        return "promote" if verdict == "healthy" else "hold"

    # -- MicroBatcher backend contract -------------------------------------

    def next_free_s(self) -> float:
        return self.replicas.next_free_s(self._serve_pool())

    def dispatch(self, features: np.ndarray, close_s: float,
                 ids: np.ndarray) -> DispatchResult:
        self.advance(close_s)
        if self._split_active and not self.canary_policy.shadow \
                and self._rng.random() < self.canary_policy.fraction:
            pool: Optional[List[int]] = self.canary_pool
        else:
            pool = self._serve_pool()
        result = self.replicas.dispatch(features, close_s, pool=pool)
        self.dispatches += 1
        probs = _sigmoid(np.asarray(result.scores)[:, 0])
        for pos, request_id in enumerate(ids):
            heapq.heappush(self._heap, (
                float(self.labels.available_s[request_id]),
                int(request_id), result.model_version, float(probs[pos]),
            ))
        if self._split_active and self.canary_policy.shadow:
            self._shadow_score(features, ids, close_s)
        return result

    def _shadow_score(self, features: np.ndarray, ids: np.ndarray,
                      close_s: float) -> None:
        """Score the batch on the canary slice without serving it.

        The canary's answers go to the monitor only; its compute is
        billed to the least-loaded canary worker via
        :meth:`ReplicaSet.occupy`, so shadow capacity cost is real in
        the clock even though no client ever sees a shadow score.
        """
        raw = self.canary_compiled.raw_scores(features)
        probs = _sigmoid(np.asarray(raw)[:, 0])
        baseline = (0.0 if self.replicas.service_model is None
                    else float(self.replicas.service_model(
                        features.shape[0])))
        self.replicas.occupy(self.canary_pool, close_s, baseline)
        for pos, request_id in enumerate(ids):
            heapq.heappush(self._heap, (
                float(self.labels.available_s[request_id]),
                int(request_id), self.canary_version, float(probs[pos]),
            ))
        self.shadow_batches += 1
        self.shadow_rows += int(features.shape[0])


# ---------------------------------------------------------------------------
# Ledger-only audit
# ---------------------------------------------------------------------------

def audit_deploy(serving: ServingReport, decisions: Sequence[dict],
                 incumbent_version: int, canary_version: int,
                 shadow: bool) -> dict:
    """Re-derive the deployment invariants from the serving ledger alone.

    Consumes only the batch/request records and the decision log's
    ``batch_seq`` anchors — none of the router's internal state — so a
    lying controller would be caught:

    * ``single_version_per_request`` — every request id appears exactly
      once across served and dropped records (each served by the one
      version of its batch);
    * ``conservation_ok`` — served + dropped covers every arrival seen;
    * ``no_canary_before_start`` / ``no_canary_after_rollback`` — canary
      -served batches exist only inside the canary window;
    * ``shadow_serves_incumbent_only`` — in shadow mode no batch at all
      is served by the canary;
    * ``split`` — observed canary share of the batches dispatched while
      the split was live, to compare with the policy fraction.
    """
    by_kind = {d["kind"]: d for d in decisions}
    start_seq = by_kind.get("canary-start", {}).get("batch_seq")
    rollback_seq = by_kind.get("rollback", {}).get("batch_seq")
    end_seq = (rollback_seq if rollback_seq is not None
               else len(serving.batches))

    request_ids = [r.request_id for r in serving.records] \
        + [d.request_id for d in serving.dropped]
    single_version = len(set(request_ids)) == len(request_ids)

    canary_batches = [b for b in serving.batches
                      if b.model_version == canary_version]
    no_before_start = all(
        start_seq is not None and b.batch_id >= start_seq
        for b in canary_batches
    ) if canary_batches else True
    no_after_rollback = (rollback_seq is None or all(
        b.batch_id < rollback_seq for b in canary_batches))

    window_batches = 0
    canary_in_window = 0
    if start_seq is not None:
        for b in serving.batches:
            if start_seq <= b.batch_id < end_seq:
                window_batches += 1
                if b.model_version == canary_version:
                    canary_in_window += 1

    return {
        "single_version_per_request": single_version,
        "no_canary_before_start": no_before_start,
        "no_canary_after_rollback": no_after_rollback,
        "shadow_serves_incumbent_only": (not shadow
                                         or not canary_batches),
        "split": {
            "window_batches": window_batches,
            "canary_batches": canary_in_window,
            "observed_fraction": (canary_in_window / window_batches
                                  if window_batches else 0.0),
        },
    }


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------

class DeployController:
    """One closed-loop deployment episode over a traffic scenario.

    ``canary_model`` selects the candidate: ``"healthy"`` trains a
    half-size retrain on the incumbent's data (a plausible successor),
    ``"degraded"`` ships the incumbent with every leaf weight negated
    (:func:`degrade_payload`) — the model the monitor must condemn.
    The controller provisions models, generates the trace and its
    delayed labels, replays through a :class:`CanaryRouter`, executes
    the registry transitions, optionally retrains after a rollback, and
    emits the ``deploy-report/v1`` dict.  Everything it does is a pure
    function of ``(scenario, policies, canary_model)``; two runs yield
    byte-identical reports.

    After :meth:`run`, the raw artifacts stay available as
    ``controller.serving_report``, ``controller.router``,
    ``controller.replicas`` and ``controller.registry`` for white-box
    assertions.
    """

    def __init__(self, scenario: Scenario,
                 canary: Optional[CanaryPolicy] = None,
                 policy: Optional[RollbackPolicy] = None,
                 canary_model: str = "healthy",
                 retrain_on_rollback: bool = True,
                 retrain_plan: str = "qd1") -> None:
        if canary_model not in ("healthy", "degraded"):
            raise ValueError(
                f"canary_model must be 'healthy' or 'degraded', "
                f"got {canary_model!r}"
            )
        self.scenario = scenario
        self.canary = canary or CanaryPolicy()
        self.policy = policy or RollbackPolicy()
        self.canary_model = canary_model
        self.retrain_on_rollback = retrain_on_rollback
        self.retrain_plan = retrain_plan
        self.registry: Optional[ModelRegistry] = None
        self.replicas: Optional[ReplicaSet] = None
        self.router: Optional[CanaryRouter] = None
        self.monitor: Optional[DriftMonitor] = None
        self.serving_report: Optional[ServingReport] = None
        self.decisions: List[DeployDecision] = []
        self.retrained_version: Optional[int] = None
        self._dataset = None
        self._train_config: Optional[TrainConfig] = None

    # -- provisioning ------------------------------------------------------

    def _provision(self) -> None:
        from ..core.gbdt import GBDT
        from ..data.synthetic import make_classification

        s = self.scenario
        self._dataset = make_classification(
            s.model_instances, s.num_features, density=0.8,
            seed=s.seed, name=f"deploy-{s.name}",
        )
        self._train_config = TrainConfig(
            num_trees=s.model_trees, num_layers=s.model_layers,
            num_candidates=s.model_candidates, learning_rate=0.3,
        )
        registry = ModelRegistry()
        incumbent = GBDT(self._train_config).fit(self._dataset).ensemble
        registry.publish(incumbent, source=f"deploy:{s.name}:incumbent")
        if self.canary_model == "degraded":
            payload = degrade_payload(ensemble_to_dict(incumbent))
            registry.publish(payload,
                             source=f"deploy:{s.name}:degraded")
        else:
            retrain = dataclasses.replace(
                self._train_config,
                num_trees=max(s.model_trees // 2, 1))
            successor = GBDT(retrain).fit(self._dataset).ensemble
            registry.publish(successor,
                             source=f"deploy:{s.name}:retrain")
        self.registry = registry

    def _retrain(self, at_s: float) -> None:
        """Close the loop: train the next candidate after a rollback.

        The retrained model is published and staged as the *next*
        canary; it does not serve in this episode — promotion requires
        its own monitored rollout.  Wall-clock training times are
        deliberately excluded from the decision log (computation is
        real, so they vary run to run); the log records only the
        deterministic facts: version, tree count, checksum.
        """
        from ..systems import make_system
        from ..systems.executor import TrainingSession

        session = TrainingSession(
            make_system(self.retrain_plan, self._train_config,
                        ClusterConfig(num_workers=2)),
            self._dataset,
        )
        session.run()
        entry = self.registry.publish(
            session.ensemble,
            source=f"deploy:{self.scenario.name}:retrain-after-rollback",
        )
        self.registry.stage_canary(entry.version)
        self.retrained_version = entry.version
        self._decide(
            at_s, self.router.dispatches, "retrain", entry.version,
            f"drift persisted: retrained {self._train_config.num_trees} "
            f"trees on {self._dataset.name}, staged as next canary",
        )

    # -- decisions ---------------------------------------------------------

    def _decide(self, at_s: float, batch_seq: int, kind: str,
                version: int, reason: str, wire_bytes: int = 0,
                window: Optional[dict] = None) -> DeployDecision:
        """Record a decision and broadcast it to the fleet.

        The broadcast ships the decision's canonical JSON to every
        worker under ``deploy:decision`` — the control plane pays wire
        like everything else (and retries under fault injection like
        everything else).
        """
        decision = DeployDecision(
            at_s=float(at_s), batch_seq=int(batch_seq), kind=kind,
            version=int(version), reason=reason,
            wire_bytes=int(wire_bytes), window=window,
        )
        self.decisions.append(decision)
        payload = {"at_s": decision.at_s, "kind": decision.kind,
                   "version": decision.version,
                   "batch_seq": decision.batch_seq}
        nbytes = len(canonical_payload_bytes(payload))
        for _ in range(self.replicas.num_workers):
            self.replicas.network.transfer(DECISION_KIND, nbytes)
        return decision

    def _wire_delta(self, before: Dict[str, int]) -> int:
        after = self.replicas.network.snapshot().bytes_by_kind
        return sum(after.values()) - sum(before.values())

    def _on_rollback(self, at_s: float) -> None:
        """Mid-flight rollback: retire the canary, restore the slice.

        Fires from the router the moment a drained label's verdict says
        ``"rollback"``.  Ordering matters: the registry retires first
        (caches flush eagerly), then the incumbent redeploys onto the
        canary slice under ``deploy:rollback``, then the decision is
        logged and broadcast, then the retrain closes the loop.
        """
        router = self.router
        window = {
            "incumbent": self.monitor.snapshot(router.incumbent_version),
            "canary": self.monitor.snapshot(router.canary_version),
        }
        before = dict(self.replicas.network.snapshot().bytes_by_kind)
        self.registry.roll_back(router.canary_version)
        self.replicas.deploy(router.incumbent_version, at_s=at_s,
                             workers=router.canary_pool,
                             kind=ROLLBACK_KIND)
        self._decide(
            at_s, router.dispatches, "rollback", router.canary_version,
            "canary window degraded beyond policy margins; incumbent "
            "redeployed to the canary slice",
            wire_bytes=self._wire_delta(before), window=window,
        )
        if self.retrain_on_rollback:
            self._retrain(at_s)

    # -- the episode -------------------------------------------------------

    def run(self) -> dict:
        """Run one deployment episode; returns ``deploy-report/v1``."""
        s = self.scenario
        self._provision()
        incumbent_version = 1
        canary_version = 2
        trace = build_trace(s)
        mean_delay = (s.label_delay_s if s.label_delay_s > 0.0
                      else 0.05 * s.duration_s)
        labels = emit_labels(
            trace, self.registry.get(incumbent_version).compiled,
            mean_delay, s.seed,
        )

        injector = None
        if s.faults:
            injector = FaultInjector(
                FaultPlan.parse(s.faults), num_workers=s.num_workers,
                num_trees=1, num_layers=2,
            )
        network = SimulatedNetwork(NetworkModel(), injector=injector)
        self.replicas = ReplicaSet(
            self.registry, ClusterConfig(num_workers=s.num_workers),
            network=network, balancer=s.balancer,
            service_model=lambda k: s.service_base_s
            + s.service_per_row_s * k,
            delta_deploys=True,
        )
        self.monitor = DriftMonitor(self.policy.window)
        self.router = CanaryRouter(
            self.replicas, self.monitor, self.canary, self.policy,
            labels, incumbent_version, canary_version,
            canary_compiled=self.registry.get(canary_version).compiled,
            on_rollback=self._on_rollback,
        )

        before = dict(network.snapshot().bytes_by_kind)
        self.replicas.deploy(incumbent_version)
        self._decide(
            0.0, 0, "deploy", incumbent_version,
            "incumbent rolled out fleet-wide",
            wire_bytes=self._wire_delta(before),
        )
        self.registry.stage_canary(canary_version)

        def start_canary(at_s: float) -> None:
            wire0 = dict(network.snapshot().bytes_by_kind)
            self.replicas.deploy(canary_version, at_s=at_s,
                                 workers=self.router.canary_pool,
                                 kind=CANARY_KIND)
            self.router.mark_canary_started(at_s)
            self._decide(
                at_s, self.router.dispatches, "canary-start",
                canary_version,
                ("shadow scoring on " if self.canary.shadow
                 else f"{self.canary.fraction:.0%} of traffic to ")
                + f"{len(self.router.canary_pool)} canary worker(s)",
                wire_bytes=self._wire_delta(wire0),
            )

        start_s = self.canary.start_frac * s.duration_s
        batcher = MicroBatcher(self.router, s.policy)
        serving = batcher.run(trace, swaps=[(start_s, start_canary)])
        self.serving_report = serving

        verdict = self.router.final_verdict()
        makespan = (max(r.completion_s for r in serving.records)
                    if serving.records else 0.0)
        window = {
            "incumbent": self.monitor.snapshot(incumbent_version),
            "canary": self.monitor.snapshot(canary_version),
        }
        if verdict == "promote":
            wire0 = dict(network.snapshot().bytes_by_kind)
            self.registry.promote(canary_version)
            self.replicas.deploy(canary_version, at_s=makespan)
            self._decide(
                makespan, self.router.dispatches, "promote",
                canary_version,
                "canary window healthy through the episode; promoted "
                "and rolled out fleet-wide",
                wire_bytes=self._wire_delta(wire0), window=window,
            )
        elif verdict == "hold":
            self._decide(
                makespan, self.router.dispatches, "hold",
                canary_version,
                "insufficient label evidence to promote or roll back; "
                "canary stays staged",
                window=window,
            )
        return self._build_report(trace, labels, serving, verdict)

    # -- report assembly ---------------------------------------------------

    def _build_report(self, trace, labels: LabelStream,
                      serving: ServingReport, verdict: str) -> dict:
        s = self.scenario
        router = self.router
        stats = serving.latency_stats()
        decisions = [d.to_dict() for d in self.decisions]
        audit = audit_deploy(serving, decisions, 1, 2,
                             self.canary.shadow)
        split = audit.pop("split")
        wire = self.replicas.network.snapshot()
        retry_bytes = sum(
            nbytes for kind, nbytes in wire.bytes_by_kind.items()
            if kind.startswith("retry:")
        )
        deploy_bytes = sum(
            nbytes for kind, nbytes in wire.bytes_by_kind.items()
            if kind.startswith("deploy:")
        )
        latencies = [r.latency_s for r in serving.records]
        summary = percentile_summary(latencies)
        conservation = (len(serving.records) + len(serving.dropped)
                        == trace.num_requests)
        return {
            "schema": DEPLOY_SCHEMA,
            "scenario": s.name,
            "seed": s.seed,
            "mode": "shadow" if self.canary.shadow else "serve",
            "canary_model": self.canary_model,
            "verdict": verdict,
            "config": s.config_dict(),
            "policy": {
                "canary": self.canary.to_dict(),
                "rollback": self.policy.to_dict(),
            },
            "versions": {
                "incumbent": 1,
                "canary": 2,
                "retrained": self.retrained_version,
                "checksums": {
                    str(e.version): e.checksum
                    for e in self.registry.versions()
                },
            },
            "decisions": decisions,
            "monitor": {
                str(v): self.monitor.snapshot(v)
                for v in self.monitor.versions()
            },
            "labels": {
                "total": labels.num_labels,
                "mean_delay_s": labels.mean_delay_s,
            },
            "serving": {
                "arrivals": trace.num_requests,
                "served": stats.count,
                "dropped": stats.dropped,
                "batches": len(serving.batches),
                "makespan_s": stats.makespan_s,
                "p50_s": summary["p50_s"],
                "p95_s": summary["p95_s"],
                "p99_s": summary["p99_s"],
                "shadow_batches": router.shadow_batches,
                "shadow_rows": router.shadow_rows,
            },
            "split": {
                "target_fraction": (0.0 if self.canary.shadow
                                    else self.canary.fraction),
                **split,
            },
            "registry": {
                "stages": {str(v): stage for v, stage
                           in self.registry.stages().items()},
                "activation_log": self.registry.activation_log,
                "stage_log": [list(t) for t in self.registry.stage_log],
            },
            "wire": {
                "deploy_bytes": deploy_bytes,
                "retry_bytes": retry_bytes,
                "bytes_by_kind": dict(sorted(
                    wire.bytes_by_kind.items())),
            },
            "invariants": {
                "conservation_ok": conservation,
                **audit,
            },
        }


def run_deploy(scenario: Scenario, **kwargs) -> dict:
    """One-shot convenience wrapper around :class:`DeployController`."""
    return DeployController(scenario, **kwargs).run()
