"""Replicated serving over the simulated cluster.

A :class:`ReplicaSet` serves one :class:`~repro.serve.registry.ModelRegistry`
from ``W`` simulated workers.  It follows the training-side simulation
contract exactly: prediction *computation* is real (the compiled
predictor runs and is wall-clocked, unless a deterministic
``service_model`` substitutes), while *model distribution* is simulated
network traffic — every deploy ships the model's canonical payload bytes
to each worker through :class:`~repro.cluster.network.SimulatedNetwork`
under the ``deploy:model`` ledger kind, so serving rollouts share the
byte/time accounting used for the paper's training communication results.

Two load balancers are provided:

- ``round-robin`` — workers take batches in a fixed cycle; fair under
  homogeneous workers, oblivious to stragglers;
- ``least-loaded`` — each batch goes to the worker that frees earliest
  (ties break to the lowest id); adapts to heterogeneous
  ``worker_speeds`` at the cost of determinism under ties.

Workers serve whatever model version was last *deployed to them* — a
registry ``activate`` alone changes nothing on the replicas until a
:meth:`ReplicaSet.deploy` ships it, which is how real fleets behave and
what makes the hot-swap byte accounting honest.

Deployments can target a *subset* of workers (``deploy(workers=...)``)
under a caller-chosen ledger kind (``deploy:canary``,
``deploy:rollback``), which is what a canary rollout is: the fleet holds
two versions at once, partitioned by worker, and the dispatch path takes
an optional worker *pool* so a router can pin each batch to one side of
the partition.  The mixed-version invariant holds by construction — a
batch lands on exactly one worker and a worker holds exactly one version,
so every request is served by exactly one version, whatever the mix.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import ClusterConfig
from ..cluster.codecs import apply_model_delta, encode_model_delta
from ..cluster.network import SimulatedNetwork
from ..core.serialize import canonical_payload_bytes, payload_checksum
from .batcher import DispatchResult
from .registry import ModelRegistry, ModelVersion

#: ledger kind for model distribution traffic
DEPLOY_KIND = "deploy:model"

_BALANCERS = ("round-robin", "least-loaded")


class ReplicaSet:
    """``W`` simulated workers serving one registry behind a balancer.

    Satisfies the :class:`~repro.serve.batcher.MicroBatcher` backend
    contract (``next_free_s`` / ``dispatch``).  ``service_model`` maps a
    batch size to baseline service seconds (measured wall-clock when
    omitted); per-worker time divides by ``cluster.speed_of(w)``, so
    stragglers configured via ``worker_speeds`` serve slower, exactly as
    they train slower.
    """

    def __init__(self, registry: ModelRegistry,
                 cluster: Optional[ClusterConfig] = None,
                 network: Optional[SimulatedNetwork] = None,
                 balancer: str = "round-robin",
                 service_model: Optional[Callable[[int], float]] = None,
                 delta_deploys: bool = False,
                 cache=None) -> None:
        if balancer not in _BALANCERS:
            raise ValueError(
                f"unknown balancer {balancer!r}; choose from {_BALANCERS}"
            )
        self.registry = registry
        self.cluster = cluster or ClusterConfig()
        self.network = network or SimulatedNetwork(self.cluster.network)
        self.balancer = balancer
        self.service_model = service_model
        self.delta_deploys = delta_deploys
        #: opt-in :class:`~repro.serve.cache.PredictionCache`; shared by
        #: every replica (the fleet-wide score store a real deployment
        #: would put in front of the workers), consulted per dispatch —
        #: only the rows that miss are billed to the service model
        self.cache = cache
        self.num_workers = self.cluster.num_workers
        self._free = np.zeros(self.num_workers)
        self._deployed: list = [None] * self.num_workers
        self._rr_next = 0
        #: independent round-robin cursor per worker pool, so canary
        #: and incumbent pools cycle fairly regardless of the split
        self._rr_cursors: Dict[Tuple[int, ...], int] = {}

    # -- model distribution ------------------------------------------------

    def deploy(self, version: Union[int, ModelVersion, None] = None,
               at_s: float = 0.0,
               workers: Optional[Sequence[int]] = None,
               kind: str = DEPLOY_KIND) -> ModelVersion:
        """Ship a model version to every worker (or a targeted subset).

        ``version`` may be a version id, a :class:`ModelVersion`, or
        ``None`` for the registry's active version.  Each worker receives
        the canonical JSON payload as one simulated ``deploy:model``
        transfer; the worker is busy installing for the transfer's
        duration, so in-flight traffic queues behind the rollout rather
        than racing it.

        ``workers`` restricts the rollout to a subset of worker ids —
        how a canary lands on its slice of the fleet — and ``kind``
        labels the traffic in the wire ledger (``deploy:canary`` and
        ``deploy:rollback`` keep canary and rollback bytes separable
        from steady-state rollouts).

        With ``delta_deploys`` enabled, a worker that already holds
        another version receives only the tree-suffix delta against it
        (:func:`~repro.cluster.codecs.encode_model_delta`) — the common
        append-only rollout ships new trees, not the whole ensemble.
        The delta is applied and checksum-verified before its bytes are
        believed; an incompatible pair falls back to the full payload.
        The ledger keeps ``raw_nbytes`` at the full payload size, so the
        ``codec:deploy:model`` savings dimension reports what the deltas
        avoided shipping.
        """
        if version is None:
            entry = self.registry.active
        elif isinstance(version, ModelVersion):
            entry = version
        else:
            entry = self.registry.get(int(version))
        targets = (range(self.num_workers) if workers is None
                   else self._check_pool(workers))
        delta_nbytes: dict = {}   # predecessor version -> delta wire size
        for worker in targets:
            wire = entry.nbytes
            prev = self._deployed[worker]
            if (self.delta_deploys and prev is not None
                    and prev.payload is not None
                    and entry.payload is not None):
                if prev.version not in delta_nbytes:
                    delta_nbytes[prev.version] = self._delta_bytes(
                        prev, entry)
                wire = min(delta_nbytes[prev.version] or wire,
                           entry.nbytes)
            seconds = self.network.transfer(kind, wire,
                                            raw_nbytes=entry.nbytes)
            self._free[worker] = max(self._free[worker], at_s) + seconds
            self._deployed[worker] = entry
        return entry

    def _check_pool(self, pool: Sequence[int]) -> Sequence[int]:
        if len(pool) == 0:
            raise ValueError("worker pool must not be empty")
        for worker in pool:
            if not (0 <= worker < self.num_workers):
                raise ValueError(
                    f"worker {worker} out of range "
                    f"(fleet has {self.num_workers} workers)"
                )
        return pool

    @staticmethod
    def _delta_bytes(prev: ModelVersion,
                     new: ModelVersion) -> Optional[int]:
        """Wire size of the delta from ``prev`` to ``new``, verified by
        reconstructing ``new`` and checking its checksum; ``None`` when
        the pair has no usable delta."""
        delta = encode_model_delta(prev.payload, new.payload)
        if delta is None:
            return None
        rebuilt = apply_model_delta(prev.payload, delta)
        if payload_checksum(rebuilt) != new.checksum:
            return None
        return len(canonical_payload_bytes(delta))

    def deployer(self, version: Union[int, ModelVersion, None] = None
                 ) -> Callable[[float], None]:
        """A swap action for :meth:`MicroBatcher.run`: activates (when
        given a version id) and deploys at the swap's simulated time."""
        def action(at_s: float) -> None:
            if isinstance(version, int):
                self.registry.activate(version)
            self.deploy(version, at_s=at_s)
        return action

    def deployed_versions(self) -> list:
        """Per-worker deployed version id (``None`` before any deploy)."""
        return [None if entry is None else entry.version
                for entry in self._deployed]

    def workers_serving(self, version: int) -> list:
        """Worker ids currently holding ``version``."""
        return [w for w, entry in enumerate(self._deployed)
                if entry is not None and entry.version == version]

    # -- MicroBatcher backend contract -------------------------------------

    def _pick_worker(self, pool: Optional[Sequence[int]] = None) -> int:
        if pool is None:
            if self.balancer == "round-robin":
                return self._rr_next
            return int(np.argmin(self._free))   # ties -> lowest id
        pool = self._check_pool(pool)
        if self.balancer == "round-robin":
            cursor = self._rr_cursors.get(tuple(pool), 0)
            return int(pool[cursor % len(pool)])
        free = self._free[np.asarray(pool, dtype=np.int64)]
        return int(pool[int(np.argmin(free))])

    def next_free_s(self, pool: Optional[Sequence[int]] = None) -> float:
        """Free time of the worker the *next* batch will land on."""
        return float(self._free[self._pick_worker(pool)])

    def occupy(self, pool: Sequence[int], at_s: float,
               baseline_seconds: float) -> Tuple[int, float, float]:
        """Bill ``baseline_seconds`` of compute to the least-loaded
        worker of ``pool`` without serving traffic from it.

        Shadow scoring uses this: the canary workers score every batch
        for the monitor, so their clocks must advance exactly as if they
        served it — the shadow's cost is real in the ledger even though
        its answers never reach a client.  Returns ``(worker, start_s,
        completion_s)``.
        """
        pool = self._check_pool(pool)
        free = self._free[np.asarray(pool, dtype=np.int64)]
        worker = int(pool[int(np.argmin(free))])
        seconds = baseline_seconds / self.cluster.speed_of(worker)
        start = max(at_s, float(self._free[worker]))
        self._free[worker] = start + seconds
        return worker, start, start + seconds

    def dispatch(self, features: np.ndarray, close_s: float,
                 pool: Optional[Sequence[int]] = None) -> DispatchResult:
        worker = self._pick_worker(pool)
        if self.balancer == "round-robin":
            if pool is None:
                self._rr_next = (self._rr_next + 1) % self.num_workers
            else:
                key = tuple(pool)
                self._rr_cursors[key] = (self._rr_cursors.get(key, 0)
                                         + 1) % len(pool)
        entry = self._deployed[worker]
        if entry is None:
            raise RuntimeError(
                f"worker {worker} has no model; call deploy() before "
                "serving traffic"
            )
        began = time.perf_counter()
        if self.cache is None:
            scores = entry.compiled.raw_scores(features)
            billable = features.shape[0]
        else:
            scores, billable = self.cache.serve(
                entry.version, features, entry.compiled.raw_scores)
        measured = time.perf_counter() - began
        baseline = (measured if self.service_model is None
                    else float(self.service_model(billable)))
        seconds = baseline / self.cluster.speed_of(worker)
        start = max(close_s, float(self._free[worker]))
        self._free[worker] = start + seconds
        return DispatchResult(
            start_s=start, completion_s=start + seconds, worker=worker,
            model_version=entry.version, scores=scores,
        )

    # -- introspection -----------------------------------------------------

    @property
    def deploy_bytes(self) -> int:
        """Total wire bytes shipped under ``deploy:model`` so far.

        Covers **only** the steady-state kind: subset deploys made under
        a caller-chosen kind (``deploy(workers=..., kind="deploy:canary")``,
        per-shard rollouts under ``deploy:shard``) are attributed to
        *that* kind and do not appear here — use
        :meth:`deploy_bytes_by_kind` for the full per-kind breakdown.
        """
        return self.network.snapshot().bytes_by_kind.get(DEPLOY_KIND, 0)

    @property
    def deploy_raw_bytes(self) -> int:
        """Pre-encoding bytes of every ``deploy:model`` transfer — what
        full-payload rollouts would have shipped.

        Like :attr:`deploy_bytes`, this reads only the steady-state
        kind; delta-encoded subset deploys keep their ``raw_nbytes`` (the
        full payload size) under the caller's kind, so the
        ``codec:deploy:canary`` savings dimension reports what a canary's
        deltas avoided shipping without inflating the steady-state
        numbers.
        """
        return self.network.snapshot().raw_bytes_by_kind.get(
            DEPLOY_KIND, 0)

    def deploy_bytes_by_kind(self) -> Dict[str, Tuple[int, int]]:
        """``kind -> (wire_bytes, raw_bytes)`` of every ``deploy:*`` kind.

        The per-kind ledger view that keeps subset and per-shard deploy
        accounting attributable: steady-state rollouts land under
        ``deploy:model``, canary slices under the kind their caller
        chose, sharded rollouts under ``deploy:shard`` — each with the
        raw (pre-delta, pre-codec) baseline alongside the wire bytes.
        """
        snapshot = self.network.snapshot()
        return {
            kind: (nbytes, snapshot.raw_bytes_by_kind.get(kind, nbytes))
            for kind, nbytes in sorted(snapshot.bytes_by_kind.items())
            if kind.startswith("deploy:")
        }

    def __repr__(self) -> str:
        return (f"ReplicaSet(workers={self.num_workers}, "
                f"balancer={self.balancer!r}, "
                f"deployed={self.deployed_versions()})")
