"""Tree-sharded (vertically partitioned) serving.

:class:`~repro.serve.replica.ReplicaSet` replicates the whole compiled
model to every worker, so per-worker model memory and deploy bytes scale
with ensemble size.  For the QD3/QD4 regime (very wide features, deep
ensembles) this module shards the *ensemble* by tree range instead — the
serving-side mirror of the paper's replicate-vs-partition question:

- the fleet is a grid of ``R`` replica rows x ``S`` shard groups; worker
  ``r * S + j`` holds shard ``j`` (trees ``tree_root`` range ``j`` of
  the active version), so each worker stores ``~1/S`` of the model and a
  rollout ships each shard's canonical payload to its group only;
- every batch fans out to one whole row: each shard worker walks its own
  trees (real, wall-clocked computation), then the partial score vectors
  reduce through the :mod:`repro.cluster.comm` collective cost models
  under the ``serve:partial`` / ``serve:reduce`` ledger kinds.

Exactness
---------
Float addition is not associative, so summing independently computed
shard partials would *not* reproduce the monolithic predictor bit for
bit.  The reduction is therefore an **ordered chain fold** (the
reduce-scatter ring pass, specialized to one logical chunk): the running
accumulator starts at shard group 0 and hops along the row in shard
order, each worker folding its trees' contributions into the carry
tree-by-tree (:meth:`CompiledEnsemble.add_raw_scores`).  Per element the
fold performs literally the same float64 additions, in the same order,
as ``CompiledEnsemble.raw_scores`` — so sharded serving is bit-identical
to replicated serving for every ``S`` (with the lossless score codec).

Accounting
----------
The carry crosses ``S - 1`` links, one full score vector each — exactly
the ring reduce-scatter decomposition ``(S-1)/S * payload`` per worker
over ``S - 1`` rounds, charged per batch under ``serve:partial`` via
:func:`~repro.cluster.comm.record_collective`.  With
``reduction="allreduce"`` the reduced vector is additionally
redistributed so every shard worker ends with the full scores (the
all-gather half of a ring all-reduce, same decomposition again) under
``serve:reduce`` — the two kinds together equal the closed-form ring
all-reduce bytes ``2 (S-1)/S * payload`` per worker.  Partial-score
payloads ride the :class:`~repro.cluster.codecs.ScoreCodec` of the
chosen codec stack: ``f32``/``f16`` quantize the carried accumulator at
every hop (the error is real, opt-in, and raw-vs-wire accounted);
lossless stacks keep the exact pre-codec accounting.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..config import ClusterConfig
from ..cluster.codecs import CodecStack, get_codec_stack
from ..cluster.comm import record_collective
from ..cluster.network import SimulatedNetwork
from .batcher import DispatchResult
from .compiler import CompiledEnsemble
from .registry import ModelRegistry, ModelShard, ModelVersion

#: ledger kind of the partial-score carry (the reduce half)
PARTIAL_KIND = "serve:partial"
#: ledger kind of the reduced-score redistribution (the all-gather half)
REDUCE_KIND = "serve:reduce"
#: ledger kind of per-shard model distribution
SHARD_DEPLOY_KIND = "deploy:shard"

_BALANCERS = ("round-robin", "least-loaded")
_REDUCTIONS = ("gather", "allreduce")


def reduce_shard_scores(shards: Sequence[CompiledEnsemble],
                        features,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Ordered carry-in fold of tree-range shard scores.

    Bit-identical to the unsharded ``CompiledEnsemble.raw_scores`` on
    the same rows, for any shard count — the fold visits shards in tree
    order and accumulates tree by tree, preserving the monolithic
    predictor's exact summation order.
    """
    if not shards:
        raise ValueError("need at least one shard")
    if out is None:
        rows = (features.shape[0] if isinstance(features, np.ndarray)
                else features.num_rows)
        out = np.zeros((rows, shards[0].gradient_dim), dtype=np.float64)
    for shard in shards:
        shard.add_raw_scores(features, out)
    return out


class ShardedReplicaSet:
    """``R x S`` grid of simulated workers serving tree-range shards.

    Satisfies the :class:`~repro.serve.batcher.MicroBatcher` backend
    contract (``next_free_s`` / ``dispatch``) like
    :class:`~repro.serve.replica.ReplicaSet`, but a batch occupies one
    whole replica row (one worker per shard group) and its score is the
    collective reduction of the row's partials.  ``cluster.num_workers``
    must be a multiple of ``num_shards``.

    ``service_model`` keeps the deterministic-replay contract: it maps a
    batch size to baseline service seconds *for the full model*; each
    shard worker is billed its tree fraction of that, so a scenario's
    simulated clock is independent of the host machine.  Without it,
    each shard's fold is wall-clocked for real.  ``reduction`` picks the
    collective (``"gather"``: chain fold, result on the row's last
    worker; ``"allreduce"``: plus redistribution to every row worker)
    and ``codec`` the partial-score wire format (lossless by default;
    ``f32``/``f16`` opt into quantized carries).
    """

    def __init__(self, registry: ModelRegistry,
                 cluster: Optional[ClusterConfig] = None,
                 num_shards: int = 2,
                 network: Optional[SimulatedNetwork] = None,
                 balancer: str = "round-robin",
                 service_model: Optional[Callable[[int], float]] = None,
                 reduction: str = "gather",
                 codec: Union[str, CodecStack, None] = None) -> None:
        if balancer not in _BALANCERS:
            raise ValueError(
                f"unknown balancer {balancer!r}; choose from {_BALANCERS}"
            )
        if reduction not in _REDUCTIONS:
            raise ValueError(
                f"unknown reduction {reduction!r}; choose from "
                f"{_REDUCTIONS}"
            )
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.registry = registry
        self.cluster = cluster or ClusterConfig()
        if self.cluster.num_workers % num_shards != 0:
            raise ValueError(
                f"fleet of {self.cluster.num_workers} workers cannot "
                f"hold {num_shards} shard groups evenly; num_workers "
                "must be a multiple of num_shards"
            )
        self.network = network or SimulatedNetwork(self.cluster.network)
        self.num_shards = num_shards
        self.num_workers = self.cluster.num_workers
        self.num_rows = self.num_workers // num_shards
        self.balancer = balancer
        self.service_model = service_model
        self.reduction = reduction
        self.codec = (codec if isinstance(codec, CodecStack)
                      else get_codec_stack(codec or "none"))
        self._free = np.zeros(self.num_workers)
        self._deployed: List[Optional[ModelShard]] = \
            [None] * self.num_workers
        self._rr_next_row = 0

    # -- the grid ----------------------------------------------------------

    def row_workers(self, row: int) -> range:
        """Worker ids of replica row ``row`` (one per shard group)."""
        if not 0 <= row < self.num_rows:
            raise ValueError(
                f"row {row} out of range (fleet has {self.num_rows} rows)"
            )
        return range(row * self.num_shards, (row + 1) * self.num_shards)

    def row_ready_s(self, row: int) -> float:
        """Instant every worker of ``row`` is free — a batch needs the
        whole row, so the row's readiness is its slowest member's."""
        lo = row * self.num_shards
        return float(self._free[lo:lo + self.num_shards].max())

    def _pick_row(self) -> int:
        if self.balancer == "round-robin":
            return self._rr_next_row
        ready = [self.row_ready_s(r) for r in range(self.num_rows)]
        return int(np.argmin(ready))   # ties -> lowest row id

    # -- model distribution ------------------------------------------------

    def deploy(self, version: Union[int, ModelVersion, None] = None,
               at_s: float = 0.0,
               kind: str = SHARD_DEPLOY_KIND) -> ModelVersion:
        """Ship each shard's canonical payload to its shard group.

        Worker ``r * S + j`` receives shard ``j``'s payload slice — one
        simulated transfer of ``shards[j].nbytes`` under the
        ``deploy:shard`` kind (not ``deploy:model``; sharded and
        replicated rollout bytes stay separable in the ledger).  Total
        rollout traffic is ``R * sum_j shard_j`` ~= ``R *`` full payload
        — versus ``R * S *`` full payload for a replicated fleet of the
        same size — and per-worker model bytes scale as ``~1/S``.
        """
        if version is None:
            entry = self.registry.active
        elif isinstance(version, ModelVersion):
            entry = version
        else:
            entry = self.registry.get(int(version))
        shards = self.registry.shards(entry.version, self.num_shards)
        for row in range(self.num_rows):
            for j, shard in enumerate(shards):
                worker = row * self.num_shards + j
                seconds = self.network.transfer(kind, shard.nbytes)
                self._free[worker] = max(self._free[worker],
                                         at_s) + seconds
                self._deployed[worker] = shard
        return entry

    def deployer(self, version: Union[int, ModelVersion, None] = None
                 ) -> Callable[[float], None]:
        """A swap action for :meth:`MicroBatcher.run`: activates (when
        given a version id) and deploys at the swap's simulated time."""
        def action(at_s: float) -> None:
            if isinstance(version, int):
                self.registry.activate(version)
            self.deploy(version, at_s=at_s)
        return action

    def deployed_versions(self) -> list:
        """Per-worker deployed version id (``None`` before any deploy)."""
        return [None if shard is None else shard.version
                for shard in self._deployed]

    # -- MicroBatcher backend contract -------------------------------------

    def next_free_s(self) -> float:
        """Readiness of the row the *next* batch will land on."""
        return self.row_ready_s(self._pick_row())

    def dispatch(self, features: np.ndarray,
                 close_s: float) -> DispatchResult:
        row = self._pick_row()
        if self.balancer == "round-robin":
            self._rr_next_row = (self._rr_next_row + 1) % self.num_rows
        workers = list(self.row_workers(row))
        shards = [self._deployed[w] for w in workers]
        if any(shard is None for shard in shards):
            raise RuntimeError(
                f"row {row} has undeployed workers; call deploy() "
                "before serving traffic"
            )
        versions = {shard.version for shard in shards}
        if len(versions) != 1:
            raise RuntimeError(
                f"row {row} holds mixed versions {sorted(versions)}; "
                "a batch must be served by exactly one version"
            )
        rows_in_batch = features.shape[0]
        total_trees = sum(s.compiled.num_trees for s in shards)
        gradient_dim = shards[0].compiled.gradient_dim
        score_codec = self.codec.scores

        # the chain fold: worker j folds its trees into the carry, then
        # forwards it (encoded) to worker j+1; lossy codecs quantize the
        # carry at each hop, so the precision cost of narrow wire
        # formats is real
        acc = np.zeros((rows_in_batch, gradient_dim), dtype=np.float64)
        worker_seconds = []
        encoded_nbytes: Optional[int] = None
        for j, shard in enumerate(shards):
            began = time.perf_counter()
            shard.compiled.add_raw_scores(features, acc)
            measured = time.perf_counter() - began
            if self.service_model is None:
                baseline = measured
            else:
                fraction = (shard.compiled.num_trees / total_trees
                            if total_trees else 1.0 / self.num_shards)
                baseline = float(
                    self.service_model(rows_in_batch)) * fraction
            worker_seconds.append(
                baseline / self.cluster.speed_of(workers[j]))
            if j < self.num_shards - 1 and not self.codec.is_identity:
                enc = score_codec.encode(acc)
                encoded_nbytes = enc.nbytes
                if not score_codec.lossless:
                    acc = score_codec.decode(enc)

        start = max(close_s, self.row_ready_s(row))
        compute_done = start + max(worker_seconds)
        payload = rows_in_batch * gradient_dim * 8
        encoded = (None if encoded_nbytes is None
                   else [encoded_nbytes] * self.num_shards)
        reduce_seconds = record_collective(
            self.network, PARTIAL_KIND, payload, self.num_shards,
            "reducescatter", encoded_worker_bytes=encoded)
        if self.reduction == "allreduce":
            reduce_seconds += record_collective(
                self.network, REDUCE_KIND, payload, self.num_shards,
                "reducescatter", encoded_worker_bytes=encoded)
        completion = compute_done + reduce_seconds
        # every row worker participates until the collective completes
        for w in workers:
            self._free[w] = completion
        return DispatchResult(
            start_s=start, completion_s=completion,
            worker=workers[-1],   # the chain's tail holds the result
            model_version=shards[0].version, scores=acc,
        )

    # -- introspection -----------------------------------------------------

    @property
    def deploy_bytes(self) -> int:
        """Total wire bytes shipped under ``deploy:shard`` so far."""
        return self.network.snapshot().bytes_by_kind.get(
            SHARD_DEPLOY_KIND, 0)

    @property
    def deploy_raw_bytes(self) -> int:
        return self.network.snapshot().raw_bytes_by_kind.get(
            SHARD_DEPLOY_KIND, 0)

    @property
    def partial_bytes(self) -> int:
        """Wire bytes of the partial-score carries (``serve:partial``)."""
        return self.network.snapshot().bytes_by_kind.get(PARTIAL_KIND, 0)

    @property
    def reduce_bytes(self) -> int:
        """Wire bytes of reduced-score redistribution (``serve:reduce``)."""
        return self.network.snapshot().bytes_by_kind.get(REDUCE_KIND, 0)

    def model_bytes_per_worker(self) -> int:
        """Largest deployed shard payload — the per-worker model wire
        footprint the sharded layout buys down to ``~1/S``."""
        return max((shard.nbytes for shard in self._deployed
                    if shard is not None), default=0)

    def __repr__(self) -> str:
        return (f"ShardedReplicaSet(rows={self.num_rows}, "
                f"shards={self.num_shards}, "
                f"balancer={self.balancer!r}, "
                f"reduction={self.reduction!r}, "
                f"deployed={self.deployed_versions()})")
