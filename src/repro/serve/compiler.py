"""Ensemble compiler: flatten trees into struct-of-arrays form.

``Tree.predict`` walks the node dictionary with one boolean mask per
node — fine for training-time evaluation, hopeless for serving heavy
traffic.  :func:`compile_ensemble` lowers a
:class:`~repro.core.tree.TreeEnsemble` into a :class:`CompiledEnsemble`:
every node of every tree becomes one slot of parallel arrays (``int32``
feature ids, ``float64`` thresholds, absolute left/right child offsets,
default directions, a leaf-weight matrix), laid out breadth-first per
tree so the two children of any split occupy adjacent slots.

Prediction is level-synchronous: all rows of a batch advance one tree
layer per step, so the cost per tree is ``O(depth)`` vectorized
operations instead of ``O(nodes)`` mask scans.  Three tricks keep each
step down to three gathers:

* slot metadata (left-child offset, missing-goes-right bit, feature id)
  is packed into one ``int64`` per slot and fetched with a single
  ``np.take``;
* children are adjacent, so routing is ``left + go_right`` — no second
  child gather and no ``where`` select;
* leaves self-loop with a ``+inf`` threshold and a clear missing bit,
  which parks finished rows without any per-row bookkeeping
  (``value > +inf`` is false for every value, NaN included).

The compiled predictor is *bit-identical* to
:meth:`TreeEnsemble.raw_scores`: the traversal routes on the same
``value <= threshold`` comparison (expressed as its exact complement
``value > threshold`` on non-NaN floats), missing values follow the same
default direction, and scores accumulate tree by tree in the same order;
the shrinkage product ``learning_rate * weight`` is precomputed per leaf
at compile time — the same two float64 operands, hence the same product
— so the running sum sees literally the same values.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.kernels import MISSING_BIN, make_backend
from ..core import kernels as _kernels
from ..core.tree import Tree, TreeEnsemble
from ..data.matrix import CSCMatrix, CSRMatrix

#: accepted feature-batch types of the compiled predictor
FeatureBatch = Union[CSCMatrix, CSRMatrix, np.ndarray]

# packed slot metadata: | left slot (43 bits) | miss_right (1) | feature (20) |
# (defined in repro.core.kernels, which the traversal kernels compile
# against; aliased here because the compiler is where they are produced)
_FEATURE_BITS = _kernels.FEATURE_BITS
_FEATURE_MASK = _kernels.FEATURE_MASK
_MISS_BIT = _kernels.MISS_BIT
_CHILD_SHIFT = _kernels.CHILD_SHIFT


class CompiledEnsemble:
    """Struct-of-arrays ensemble with a vectorized batch predictor.

    Built by :func:`compile_ensemble`; all arrays are read-only after
    construction.  Slots ``tree_root[t] .. tree_root[t+1]`` (exclusive;
    ``tree_root`` has length ``T + 1``) hold tree ``t`` breadth-first,
    so ``tree_root[t]`` is also tree ``t``'s root slot.

    Per-slot arrays:

    - ``feature``: ``int32`` split feature (0 on leaf slots — the gather
      stays in bounds and the result is discarded);
    - ``threshold``: ``float64`` raw-value cut; ``value <= threshold``
      routes left.  Leaf slots carry ``+inf`` so every value parks;
    - ``left`` / ``right``: ``int32`` absolute child slots, always
      adjacent (``right == left + 1``); leaves point at themselves;
    - ``default_left``: missing-value direction (``True`` on leaves);
    - ``leaf_slot``: row of ``leaf_weights`` for leaf slots, -1 inside.

    ``leaf_weights`` is the ``(num_leaves, gradient_dim)`` matrix of
    *unshrunken* leaf values, exactly as stored in the source trees.
    """

    def __init__(self, num_trees: int, gradient_dim: int,
                 learning_rate: float, num_features: int,
                 feature: np.ndarray, threshold: np.ndarray,
                 left: np.ndarray, right: np.ndarray,
                 default_left: np.ndarray, leaf_slot: np.ndarray,
                 leaf_weights: np.ndarray, tree_root: np.ndarray,
                 tree_depth: np.ndarray, backend=None) -> None:
        #: the kernel engine running the traversal (bit-identical across
        #: backends; see repro.core.kernels)
        self.backend = make_backend(backend)
        self.num_trees = num_trees
        self.gradient_dim = gradient_dim
        self.learning_rate = learning_rate
        self.num_features = num_features
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.default_left = default_left
        self.leaf_slot = leaf_slot
        self.leaf_weights = leaf_weights
        self.tree_root = tree_root
        self.tree_depth = tree_depth
        # acceleration structures: packed per-slot metadata and the
        # shrinkage-scaled weights gathered straight by slot id
        miss_right = ~default_left
        self._packed = (
            (left.astype(np.int64) << _CHILD_SHIFT)
            | (miss_right.astype(np.int64) << _FEATURE_BITS)
            | feature.astype(np.int64)
        )
        self._scaled_by_slot = np.zeros(
            (feature.size, gradient_dim), dtype=np.float64
        )
        leafy = leaf_slot >= 0
        self._scaled_by_slot[leafy] = \
            learning_rate * leaf_weights[leaf_slot[leafy]]
        for arr in (feature, threshold, left, right, default_left,
                    leaf_slot, leaf_weights, tree_root, tree_depth,
                    self._packed, self._scaled_by_slot):
            arr.setflags(write=False)

    # -- introspection -----------------------------------------------------

    @property
    def num_slots(self) -> int:
        return self.feature.size

    @property
    def num_leaves(self) -> int:
        return self.leaf_weights.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held by the compiled arrays (resident-memory accounting;
        the *wire* cost of shipping a model is its JSON payload size, see
        :class:`repro.serve.registry.ModelVersion`)."""
        return sum(arr.nbytes for arr in (
            self.feature, self.threshold, self.left, self.right,
            self.default_left, self.leaf_slot, self.leaf_weights,
            self.tree_root, self.tree_depth, self._packed,
            self._scaled_by_slot,
        ))

    def __repr__(self) -> str:
        return (
            f"CompiledEnsemble(trees={self.num_trees}, "
            f"slots={self.num_slots}, leaves={self.num_leaves}, "
            f"gradient_dim={self.gradient_dim})"
        )

    # -- prediction --------------------------------------------------------

    def densify(self, features: FeatureBatch) -> np.ndarray:
        """Dense ``float64`` batch with ``NaN`` marking missing values.

        Sparse inputs follow the repo convention: a *stored* entry is
        present (whatever its value), an unstored one is missing.  Dense
        ``ndarray`` inputs must already use ``NaN`` for missing — exact
        zeros in a dense array are taken at face value.  The result is
        padded to at least ``num_features`` columns (and at least one)
        so every compiled feature id gathers in bounds.
        """
        if isinstance(features, np.ndarray):
            if features.ndim != 2:
                raise ValueError("dense batch must be 2-D")
            width = max(features.shape[1], self.num_features, 1)
            if features.shape[1] == width and features.dtype == np.float64:
                return np.ascontiguousarray(features)
            dense = np.full((features.shape[0], width), np.nan)
            dense[:, :features.shape[1]] = features
            return dense
        if not isinstance(features, (CSCMatrix, CSRMatrix)):
            raise TypeError(
                f"unsupported batch type: {type(features).__name__}"
            )
        width = max(features.num_cols, self.num_features, 1)
        if isinstance(features, CSCMatrix):
            dense = np.full((features.num_rows, width), np.nan)
            dense[features.indices, features.col_of_entries()] = \
                features.values
            return dense
        dense = np.full((features.num_rows, width), np.nan)
        dense[features.row_of_entries(), features.indices] = \
            features.values
        return dense

    def _transposed(self, features: FeatureBatch) -> np.ndarray:
        """Feature-major ``(width, num_rows)`` C-order float64 batch.

        The traversal gathers one value per row per level; feature-major
        layout makes rows sitting on the *same* node read a contiguous
        run of one feature's column, so the upper tree levels (where few
        distinct nodes are live) stream instead of scatter.
        """
        if isinstance(features, np.ndarray):
            return np.ascontiguousarray(self.densify(features).T)
        if not isinstance(features, (CSCMatrix, CSRMatrix)):
            raise TypeError(
                f"unsupported batch type: {type(features).__name__}"
            )
        width = max(features.num_cols, self.num_features, 1)
        if isinstance(features, CSCMatrix):
            dense = np.full((width, features.num_rows), np.nan)
            dense[features.col_of_entries(), features.indices] = \
                features.values
            return dense
        dense = np.full((width, features.num_rows), np.nan)
        dense[features.indices, features.row_of_entries()] = \
            features.values
        return dense

    def assign_leaves(self, dense: np.ndarray, tree: int) -> np.ndarray:
        """Final (leaf) slot of every row of an already-densified
        row-major batch in one tree (level-synchronous traversal)."""
        transposed = np.ascontiguousarray(dense.T)
        return self._advance(transposed.reshape(-1), dense.shape[0],
                             tree, bool(np.isnan(dense).any()))

    def _advance(self, flat: np.ndarray, num: int, tree: int,
                 has_nan: bool) -> np.ndarray:
        """Slot of every row after walking one whole tree (backend
        dispatch).

        ``flat`` is the feature-major batch flattened, so row ``i``'s
        value of feature ``f`` lives at ``f * num + i``.
        """
        return self.backend.advance(self._packed, self.threshold, flat,
                                    num, int(self.tree_root[tree]),
                                    int(self.tree_depth[tree]), has_nan)

    def raw_scores(self, features: FeatureBatch,
                   num_trees: Optional[int] = None) -> np.ndarray:
        """Summed (shrunken) raw scores; bit-identical to
        :meth:`TreeEnsemble.raw_scores` on the same rows."""
        transposed = self._transposed(features)
        num = transposed.shape[1]
        flat = transposed.reshape(-1)
        has_nan = bool(np.isnan(transposed).any())
        use = (self.num_trees if num_trees is None
               else min(num_trees, self.num_trees))
        return self.backend.raw_scores(
            self._packed, self.threshold, self._scaled_by_slot,
            self.tree_root, self.tree_depth, flat, num, has_nan, use,
        )

    def add_raw_scores(self, features: FeatureBatch,
                       out: np.ndarray) -> np.ndarray:
        """Fold this ensemble's shrunken scores *into* ``out`` in place.

        Performs, per element, the same float64 additions in the same
        order as :meth:`raw_scores` — one ``+=`` of the gathered scaled
        leaf row per tree, in tree order.  This is the carry-in half of
        the sharded score reduction (:mod:`repro.serve.sharded`): folding
        shard ``j``'s trees into the running sum carried from shards
        ``0..j-1`` reproduces the monolithic predictor's summation order
        exactly, which is what makes tree-sharded serving bit-identical
        to the unsharded predictor despite float addition being
        non-associative.  Starting from zeros, the fold equals
        :meth:`raw_scores` bit for bit.
        """
        transposed = self._transposed(features)
        num = transposed.shape[1]
        if out.shape != (num, self.gradient_dim):
            raise ValueError(
                f"accumulator shape {out.shape} does not match "
                f"({num}, {self.gradient_dim})"
            )
        if out.dtype != np.float64:
            raise ValueError("accumulator must be float64")
        flat = transposed.reshape(-1)
        has_nan = bool(np.isnan(transposed).any())
        for t in range(self.num_trees):
            pos = self.backend.advance(
                self._packed, self.threshold, flat, num,
                int(self.tree_root[t]), int(self.tree_depth[t]), has_nan)
            out += np.take(self._scaled_by_slot, pos, axis=0)
        return out


def compile_ensemble(ensemble: TreeEnsemble,
                     backend=None) -> CompiledEnsemble:
    """Lower a node-dict ensemble into a :class:`CompiledEnsemble`.

    ``backend`` selects the traversal kernel engine (a
    :mod:`repro.core.kernels` registry name, an instance, or ``None``
    for the portable numpy default); every backend routes and
    accumulates bit-identically.
    """
    slots: List[dict] = []
    leaf_weights: List[np.ndarray] = []
    tree_root = np.zeros(len(ensemble.trees) + 1, dtype=np.int32)
    tree_depth = np.zeros(max(len(ensemble.trees), 1), dtype=np.int32)
    num_features = 0
    for t, tree in enumerate(ensemble.trees):
        tree_root[t] = len(slots)
        tree_depth[t] = _compile_tree(tree, slots, leaf_weights)
        for node in tree.internal_nodes():
            num_features = max(num_features, node.split.feature + 1)
    tree_root[len(ensemble.trees)] = len(slots)
    if num_features > _FEATURE_MASK:
        raise ValueError(
            f"cannot compile: feature ids up to {num_features - 1} "
            f"exceed the packed limit {_FEATURE_MASK}"
        )

    count = len(slots)
    weights = (np.asarray(leaf_weights, dtype=np.float64)
               if leaf_weights
               else np.zeros((0, ensemble.gradient_dim)))
    return CompiledEnsemble(
        num_trees=len(ensemble.trees),
        gradient_dim=ensemble.gradient_dim,
        learning_rate=ensemble.learning_rate,
        num_features=num_features,
        feature=np.fromiter((s["feature"] for s in slots), np.int32,
                            count),
        threshold=np.fromiter((s["threshold"] for s in slots),
                              np.float64, count),
        left=np.fromiter((s["left"] for s in slots), np.int32, count),
        right=np.fromiter((s["right"] for s in slots), np.int32, count),
        default_left=np.fromiter((s["default_left"] for s in slots),
                                 np.bool_, count),
        leaf_slot=np.fromiter((s["leaf_slot"] for s in slots), np.int32,
                              count),
        leaf_weights=weights,
        tree_root=tree_root,
        tree_depth=tree_depth,
        backend=backend,
    )


def _compile_tree(tree: Tree, slots: List[dict],
                  leaf_weights: List[np.ndarray]) -> int:
    """Append one tree's nodes to ``slots`` breadth-first; returns the
    number of traversal steps needed to park every row on a leaf."""
    if 0 not in tree.nodes:
        raise ValueError("tree has no root node")
    base = len(slots)
    order: List[int] = []       # heap node ids, BFS order
    slot_of = {}                # heap node id -> absolute slot
    frontier = [0]
    depth = 0
    level = 0
    while frontier:
        nxt: List[int] = []
        for node_id in frontier:
            slot_of[node_id] = base + len(order)
            order.append(node_id)
            node = tree.nodes[node_id]
            if not node.is_leaf:
                depth = max(depth, level + 1)
                # children go into the next level back to back, which
                # is what makes right == left + 1 hold on every split
                for child in (node.left_child, node.right_child):
                    if child not in tree.nodes:
                        raise ValueError(
                            f"split node {node_id} lacks child {child}"
                        )
                    nxt.append(child)
        frontier = nxt
        level += 1
    for node_id in order:
        node = tree.nodes[node_id]
        slot = slot_of[node_id]
        if node.is_leaf:
            slots.append({
                "feature": 0, "threshold": np.inf, "left": slot,
                "right": slot, "default_left": True,
                "leaf_slot": len(leaf_weights),
            })
            leaf_weights.append(
                np.asarray(node.weight, dtype=np.float64)
            )
        else:
            left = slot_of[node.left_child]
            assert slot_of[node.right_child] == left + 1
            slots.append({
                "feature": node.split.feature,
                "threshold": node.threshold,
                "left": left,
                "right": left + 1,
                "default_left": node.split.default_left,
                "leaf_slot": -1,
            })
    return depth


# ---------------------------------------------------------------------------
# Tree-range slicing (vertically partitioned / sharded serving)
# ---------------------------------------------------------------------------

def shard_bounds(num_trees: int, num_shards: int) -> List[tuple]:
    """Contiguous ``(start, stop)`` tree ranges of an ``S``-way shard.

    Trees split as evenly as possible; the first ``num_trees % S``
    shards take one extra tree.  When ``S > num_trees`` the trailing
    shards are empty ranges — a legal (all-zero-scoring) shard, so a
    fleet layout can be fixed before the model has grown into it.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    base, extra = divmod(num_trees, num_shards)
    bounds: List[tuple] = []
    start = 0
    for s in range(num_shards):
        stop = start + base + (1 if s < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def slice_trees(compiled: CompiledEnsemble, start: int,
                stop: int) -> CompiledEnsemble:
    """The sub-ensemble of trees ``start..stop`` (exclusive) as its own
    :class:`CompiledEnsemble`.

    Slot arrays are sliced and rebased (children, roots, leaf rows), not
    recompiled, so the shard's per-slot data — thresholds, packed
    metadata, shrinkage-scaled leaf weights — is byte-for-byte the
    parent's.  ``num_features`` is inherited from the parent so every
    shard densifies a batch to the same width.  The ordered carry-in
    fold of the shards' scores (:meth:`CompiledEnsemble.add_raw_scores`)
    is therefore bit-identical to the parent's :meth:`raw_scores`.
    """
    if not 0 <= start <= stop <= compiled.num_trees:
        raise ValueError(
            f"tree range [{start}, {stop}) out of bounds for "
            f"{compiled.num_trees} trees"
        )
    lo = int(compiled.tree_root[start])
    hi = int(compiled.tree_root[stop])
    leaf_slot = compiled.leaf_slot[lo:hi].copy()
    leafy = leaf_slot >= 0
    if leafy.any():
        # leaf rows are appended in slot order at compile time, so a
        # contiguous slot range owns a contiguous leaf-row range
        leaf_base = int(leaf_slot[leafy].min())
        leaf_count = int(leaf_slot[leafy].max()) + 1 - leaf_base
        leaf_weights = compiled.leaf_weights[
            leaf_base:leaf_base + leaf_count].copy()
        leaf_slot[leafy] -= leaf_base
    else:
        leaf_weights = np.zeros((0, compiled.gradient_dim))
    num_trees = stop - start
    tree_depth = (compiled.tree_depth[start:stop].copy() if num_trees
                  else np.zeros(1, dtype=np.int32))
    return CompiledEnsemble(
        num_trees=num_trees,
        gradient_dim=compiled.gradient_dim,
        learning_rate=compiled.learning_rate,
        num_features=compiled.num_features,
        feature=compiled.feature[lo:hi].copy(),
        threshold=compiled.threshold[lo:hi].copy(),
        left=compiled.left[lo:hi] - np.int32(lo),
        right=compiled.right[lo:hi] - np.int32(lo),
        default_left=compiled.default_left[lo:hi].copy(),
        leaf_slot=leaf_slot,
        leaf_weights=leaf_weights,
        tree_root=(compiled.tree_root[start:stop + 1]
                   - np.int32(lo)).astype(np.int32),
        tree_depth=tree_depth,
        backend=compiled.backend,
    )


def shard_ensemble(compiled: CompiledEnsemble,
                   num_shards: int) -> List[CompiledEnsemble]:
    """Partition an ensemble into ``S`` contiguous tree-range shards.

    The shards cover every tree exactly once, in order; reducing their
    scores with the ordered carry-in fold
    (:func:`repro.serve.sharded.reduce_shard_scores`) is bit-identical
    to ``compiled.raw_scores`` on any batch.
    """
    return [slice_trees(compiled, a, b)
            for a, b in shard_bounds(compiled.num_trees, num_shards)]


# ---------------------------------------------------------------------------
# The bin-quantized predictor ablation
# ---------------------------------------------------------------------------

#: largest representable bin value — 255 is the missing sentinel
_MAX_BIN = MISSING_BIN - 1


class QuantizedEnsemble:
    """Bin-quantized view of a :class:`CompiledEnsemble`.

    Every split threshold a histogram-trained model carries is one of
    the training cut values, so after ``bin_dataset`` the float
    comparison ``value <= cuts[f][b]`` is equivalent to the integer
    comparison ``bin(value) <= b`` (for strictly increasing cuts,
    ``v <= cuts[b]`` iff the count of cuts strictly below ``v`` is at
    most ``b``).  This class rewrites thresholds to ``int16`` bin
    indices and traverses **uint8** binned batches: for a wide model the
    per-level gathers read an array 8x smaller than the float64 batch,
    which keeps it cache-resident at serving batch sizes.

    Routing and score accumulation reuse the compiled ensemble's packed
    metadata and shrinkage-scaled weights, so raw scores are
    *bit-identical* to :meth:`CompiledEnsemble.raw_scores` on the same
    rows.  Missing entries quantize to the sentinel bin 255 and follow
    the packed default direction; leaf slots carry threshold 255 so
    every bin value (sentinel included) parks.  Requires at most 254
    bins per feature (bin values 0..254 plus the sentinel).
    """

    def __init__(self, compiled: CompiledEnsemble,
                 cuts: Sequence[np.ndarray], backend=None) -> None:
        self.compiled = compiled
        self.cuts = [np.asarray(c, dtype=np.float64) for c in cuts]
        self.backend = (make_backend(backend) if backend is not None
                        else compiled.backend)
        for f, c in enumerate(self.cuts):
            if c.size > _MAX_BIN:
                raise ValueError(
                    f"feature {f} has {c.size + 1} bins; the quantized "
                    f"predictor supports at most {_MAX_BIN + 1} "
                    f"(bin 255 is the missing sentinel)"
                )
        self.threshold_bin = np.full(compiled.num_slots, MISSING_BIN,
                                     dtype=np.int16)
        for slot in np.flatnonzero(compiled.leaf_slot < 0):
            f = int(compiled.feature[slot])
            t = float(compiled.threshold[slot])
            c = self.cuts[f] if f < len(self.cuts) else None
            b = int(np.searchsorted(c, t)) if c is not None else 0
            if c is None or b >= c.size or c[b] != t:
                raise ValueError(
                    f"slot {slot} splits feature {f} at {t!r}, which is "
                    "not on the bin grid — the model must be trained on "
                    "the same binning the quantizer is given"
                )
            self.threshold_bin[slot] = b
        self.threshold_bin.setflags(write=False)

    @property
    def num_trees(self) -> int:
        return self.compiled.num_trees

    @property
    def gradient_dim(self) -> int:
        return self.compiled.gradient_dim

    @property
    def nbytes(self) -> int:
        """Bytes of the quantized threshold array on top of the
        compiled arrays it shares."""
        return self.compiled.nbytes + self.threshold_bin.nbytes

    def __repr__(self) -> str:
        return (
            f"QuantizedEnsemble(trees={self.num_trees}, "
            f"slots={self.compiled.num_slots}, "
            f"backend={self.backend.name!r})"
        )

    def bin_batch(self, features: FeatureBatch) -> np.ndarray:
        """Row-major ``(num_rows, width)`` uint8 binned batch.

        Missing entries (NaN after densification, or unstored sparse
        entries) become the sentinel bin 255; columns beyond the
        training cuts are all-missing.  Bin once, serve many.
        """
        dense = self.compiled.densify(features)
        num, width = dense.shape
        out = np.full((num, width), MISSING_BIN, dtype=np.uint8)
        for f in range(min(width, len(self.cuts))):
            col = dense[:, f]
            ok = ~np.isnan(col)
            if ok.any():
                out[ok, f] = np.searchsorted(self.cuts[f], col[ok])
        return out

    def raw_scores_binned(self, binned: np.ndarray,
                          num_trees: Optional[int] = None) -> np.ndarray:
        """Raw scores of an already-binned row-major uint8 batch — the
        serve-time hot path once inputs are quantized."""
        if binned.ndim != 2 or binned.dtype != np.uint8:
            raise ValueError("binned batch must be a 2-D uint8 array")
        num = binned.shape[0]
        flat_bins = np.ascontiguousarray(binned.T).reshape(-1)
        has_missing = bool((binned == MISSING_BIN).any())
        use = (self.num_trees if num_trees is None
               else min(num_trees, self.num_trees))
        return self.backend.raw_scores_quantized(
            self.compiled._packed, self.threshold_bin,
            self.compiled._scaled_by_slot, self.compiled.tree_root,
            self.compiled.tree_depth, flat_bins, num, has_missing, use,
        )

    def raw_scores(self, features: FeatureBatch,
                   num_trees: Optional[int] = None) -> np.ndarray:
        """Quantize then traverse; bit-identical to
        :meth:`CompiledEnsemble.raw_scores` on the same rows."""
        return self.raw_scores_binned(self.bin_batch(features),
                                      num_trees=num_trees)


def quantize_ensemble(compiled: CompiledEnsemble,
                      cuts: Sequence[np.ndarray],
                      backend=None) -> QuantizedEnsemble:
    """Rewrite a compiled ensemble's thresholds to bin indices.

    ``cuts`` are the per-feature cut arrays of the
    :class:`~repro.data.dataset.BinnedDataset` the model was trained on
    (``binned.cuts``).  Raises if any threshold is off the bin grid or a
    feature exceeds 254 bins.
    """
    return QuantizedEnsemble(compiled, cuts, backend=backend)
