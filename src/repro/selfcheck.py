"""Bit-identity self-checks of the kernel backends.

``repro doctor`` needs a fast, deterministic answer to "does every
backend that *imports* on this machine also *compute* the same bits as
the numpy baseline?" — a numba install with a miscompiling LLVM is far
worse than no numba at all, because training would silently diverge.
This module runs each backend through every hot path the registry plans
exercise (all four histogram kernels via a small training run, the
no-hessian fast path, the compiled float predictor, the bin-quantized
predictor) and compares against the numpy reference with **exact** float
equality, mirroring the contract the test suite enforces at scale.

The whole battery is sized to finish in about a second per backend
(plus numba's one-off JIT warm-up), so the doctor can run it on every
invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .config import ClusterConfig, TrainConfig
from .core.gbdt import GBDT
from .core.histogram import HistogramBuilder
from .core.kernels import available_backends, make_backend
from .data.dataset import Dataset, bin_dataset
from .data.synthetic import make_classification
from .serve.compiler import compile_ensemble, quantize_ensemble


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one backend's bit-identity battery."""

    backend: str
    passed: bool
    checks: int
    detail: str = ""

    def describe(self) -> str:
        state = "bit-identical" if self.passed else "MISCOMPARE"
        tail = f" — {self.detail}" if self.detail else ""
        return f"{self.backend}: {state} ({self.checks} checks){tail}"


def _tree_signature(tree) -> tuple:
    """Hashable exact encoding of one tree (splits + leaf weights)."""
    items = []
    for node_id in sorted(tree.nodes):
        node = tree.nodes[node_id]
        if node.is_leaf:
            items.append((node_id, "leaf",
                          tuple(np.asarray(node.weight).ravel().tolist())))
        else:
            items.append((node_id, "split", node.split.feature,
                          node.threshold, node.split.default_left))
    return tuple(items)


def _fixture(seed: int = 5):
    """One small mixed-density dataset pair (classification + regression)
    shared by every backend's battery."""
    clf = make_classification(300, 25, density=0.45, seed=seed)
    reg = Dataset(clf.features,
                  np.asarray(clf.labels, dtype=np.float64) * 2.0 - 0.5,
                  task="regression", name="selfcheck-reg")
    return clf, bin_dataset(clf, 12), reg, bin_dataset(reg, 12)


def _train_signature(dataset, binned, objective: str,
                     backend: Optional[str]) -> tuple:
    cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=12,
                      objective=objective, backend=backend or "")
    result = GBDT(cfg).fit(dataset, binned=binned)
    return (tuple(_tree_signature(t) for t in result.ensemble.trees),
            result.ensemble)


def check_backend(name: str, reference: str = "numpy") -> CheckResult:
    """Run one backend's bit-identity battery against ``reference``.

    Covers the reference trainer's scatter path (logistic hessians), the
    no-hessian fast path (square loss), a layer-synchronous plan that
    exercises the slotted scatter (QD1) plus the subtraction-heavy plan
    (Vero), and both serving traversals.  Every comparison is exact.
    """
    checks = 0
    try:
        backend = make_backend(name)
    except Exception as exc:
        return CheckResult(name, False, checks, f"construction failed: {exc}")
    del backend
    clf, clf_binned, reg, reg_binned = _fixture()
    try:
        # 1-2: single-process training, logistic + square (no-hess path)
        for dataset, binned, objective in ((clf, clf_binned, "binary"),
                                           (reg, reg_binned, "regression")):
            ref_sig, ref_ens = _train_signature(dataset, binned, objective,
                                                reference)
            got_sig, got_ens = _train_signature(dataset, binned, objective,
                                                name)
            checks += 1
            if ref_sig != got_sig:
                return CheckResult(
                    name, False, checks,
                    f"{objective} training trees diverged from "
                    f"{reference}")
        # 3-4: distributed plans — slotted scatter (qd1) + subtraction
        # plus the hybrid/columnwise kernels (qd3-pure covers columnwise)
        from .systems.plans import get_plan

        cluster = ClusterConfig(num_workers=3)
        for plan_key in ("qd1", "vero"):
            sigs = []
            for candidate in (reference, name):
                cfg = TrainConfig(num_trees=2, num_layers=4,
                                  num_candidates=12, backend=candidate)
                res = get_plan(plan_key).build(cfg, cluster).fit(clf_binned)
                sigs.append(tuple(_tree_signature(t)
                                  for t in res.ensemble.trees))
            checks += 1
            if sigs[0] != sigs[1]:
                return CheckResult(
                    name, False, checks,
                    f"plan {plan_key} trees diverged from {reference}")
        # 5: compiled float predictor
        _, ens = _train_signature(clf, clf_binned, "binary", reference)
        batch = clf.csc()
        ref_scores = compile_ensemble(ens, backend=reference).raw_scores(
            batch)
        got_scores = compile_ensemble(ens, backend=name).raw_scores(batch)
        checks += 1
        if not np.array_equal(ref_scores, got_scores):
            return CheckResult(name, False, checks,
                               "compiled predictor scores diverged")
        # 6: bin-quantized predictor
        quant = quantize_ensemble(compile_ensemble(ens, backend=name),
                                  clf_binned.cuts)
        checks += 1
        if not np.array_equal(ref_scores, quant.raw_scores(batch)):
            return CheckResult(name, False, checks,
                               "quantized predictor scores diverged")
        # 7: raw scatter parity on a standalone builder (pool + dtype)
        builder = HistogramBuilder(backend=name)
        ref_builder = HistogramBuilder(backend=reference)
        grad = np.ascontiguousarray(
            np.linspace(-1.0, 1.0, clf.num_instances)[:, None])
        hess = np.abs(grad) + 0.5
        rows = np.arange(0, clf.num_instances, 2, dtype=np.int64)
        got_hist, _ = builder.build_rowstore(clf_binned.binned, rows,
                                             grad, hess,
                                             clf_binned.num_bins)
        ref_hist, _ = ref_builder.build_rowstore(clf_binned.binned, rows,
                                                 grad, hess,
                                                 clf_binned.num_bins)
        checks += 1
        if not (np.array_equal(ref_hist.grad, got_hist.grad)
                and np.array_equal(ref_hist.hess, got_hist.hess)):
            return CheckResult(name, False, checks,
                               "row-store scatter bins diverged")
    except Exception as exc:
        return CheckResult(name, False, checks, f"check crashed: {exc}")
    return CheckResult(name, True, checks)


def check_available_backends(reference: str = "numpy") -> List[CheckResult]:
    """Bit-identity battery for every backend detection reports."""
    return [check_backend(name, reference=reference)
            for name in available_backends()]
