"""Quantile sketches for candidate-split proposal.

Step 1 of the horizontal-to-vertical transformation (Section 4.2.1, Figure 8)
has each worker build one quantile sketch per feature; the local sketches of
one feature are then merged into a global sketch from which candidate splits
are derived.  We provide two mergeable sketches:

* :class:`GKSketch` — the classic Greenwald-Khanna summary [15 in the paper].
  Exact epsilon guarantees, one-at-a-time insertion; used as the reference
  implementation and on small data.
* :class:`MergingSketch` — a numpy-vectorized weighted summary that buffers
  batches and compacts to a bounded number of weighted points.  It is the
  workhorse of the transformation pipeline: orders of magnitude faster in
  pure Python, with rank error empirically well inside the requested epsilon
  (validated by property-based tests).

Both support ``update``, ``merge`` and ``query`` (rank -> value), and report
``serialized_nbytes`` so the cluster simulator can account sketch traffic.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np


class GKSketch:
    """Greenwald-Khanna epsilon-approximate quantile summary.

    The summary is a sorted list of tuples ``(v, g, delta)`` where ``g`` is
    the gap in minimum rank to the previous tuple and ``delta`` bounds the
    uncertainty.  The invariant ``max(g + delta) <= 2 * eps * n`` guarantees
    every rank query is answered within ``eps * n``.
    """

    def __init__(self, eps: float = 0.005) -> None:
        if not 0 < eps < 0.5:
            raise ValueError(f"eps must be in (0, 0.5), got {eps}")
        self.eps = eps
        self._tuples: List[Tuple[float, int, int]] = []
        self._count = 0
        self._inserts_since_compress = 0

    # -- updates -----------------------------------------------------------

    def insert(self, value: float) -> None:
        """Insert a single observation."""
        value = float(value)
        threshold = math.floor(2 * self.eps * self._count)
        keys = [t[0] for t in self._tuples]
        pos = bisect.bisect_left(keys, value)
        if pos == 0 or pos == len(self._tuples):
            delta = 0  # new minimum or maximum is always exact
        else:
            delta = max(threshold - 1, 0)
        self._tuples.insert(pos, (value, 1, delta))
        self._count += 1
        self._inserts_since_compress += 1
        if self._inserts_since_compress >= max(int(1.0 / (2 * self.eps)), 1):
            self.compress()

    def update(self, values: Iterable[float]) -> None:
        for v in values:
            self.insert(v)

    def compress(self) -> None:
        """Merge adjacent tuples while the GK invariant allows it."""
        self._inserts_since_compress = 0
        if len(self._tuples) < 3:
            return
        threshold = math.floor(2 * self.eps * self._count)
        merged: List[Tuple[float, int, int]] = [self._tuples[0]]
        # Never merge into the last tuple: maximum must stay exact.
        for i in range(1, len(self._tuples) - 1):
            v, g, delta = self._tuples[i]
            pv, pg, pdelta = merged[-1]
            if len(merged) > 1 and pg + g + delta <= threshold:
                merged[-1] = (v, pg + g, delta)
            else:
                merged.append((v, g, delta))
        merged.append(self._tuples[-1])
        self._tuples = merged

    def merge(self, other: "GKSketch") -> "GKSketch":
        """Combine two summaries; the result has error ``eps1 + eps2``."""
        result = GKSketch(eps=self.eps + other.eps)
        result._count = self._count + other._count
        combined = sorted(self._tuples + other._tuples, key=lambda t: t[0])
        result._tuples = combined
        result.compress()
        return result

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def size(self) -> int:
        """Number of stored tuples."""
        return len(self._tuples)

    @property
    def serialized_nbytes(self) -> int:
        """8-byte value + 4-byte g + 4-byte delta per tuple."""
        return 16 * len(self._tuples)

    def query(self, quantile: float) -> float:
        """Value whose rank is within ``eps * n`` of ``quantile * n``."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if not self._tuples:
            raise ValueError("cannot query an empty sketch")
        if quantile <= 0.0:
            return self._tuples[0][0]
        if quantile >= 1.0:
            return self._tuples[-1][0]
        target = quantile * self._count
        budget = self.eps * self._count
        rmin = 0
        prev = self._tuples[0][0]
        for v, g, delta in self._tuples:
            rmin += g
            if rmin + delta > target + budget:
                return prev
            prev = v
        return self._tuples[-1][0]

    def quantiles(self, probs: Sequence[float]) -> np.ndarray:
        return np.array([self.query(p) for p in probs])


class MergingSketch:
    """Vectorized mergeable weighted quantile summary.

    Observations accumulate in a buffer; when the buffer exceeds
    ``buffer_size`` it is folded into a compact summary of at most
    ``max_summary`` weighted points placed at evenly spaced weighted ranks.
    Merging concatenates summaries and re-compacts.
    """

    def __init__(self, eps: float = 0.005, buffer_size: int = 8192) -> None:
        if not 0 < eps < 0.5:
            raise ValueError(f"eps must be in (0, 0.5), got {eps}")
        self.eps = eps
        self.max_summary = max(int(math.ceil(2.0 / eps)), 8)
        self.buffer_size = buffer_size
        self._buffer: List[Tuple[np.ndarray, np.ndarray]] = []
        self._buffered = 0
        self._summary_values = np.empty(0, dtype=np.float64)
        self._summary_weights = np.empty(0, dtype=np.float64)
        self._count = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- updates -----------------------------------------------------------

    def update(self, values: np.ndarray,
               weights: np.ndarray = None) -> None:
        """Fold a batch of observations into the sketch.

        ``weights`` enables *weighted* quantiles — e.g. the
        hessian-weighted candidate proposal of XGBoost, where each value
        counts with its second-order gradient.  Omitted weights default
        to 1 per observation.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        if weights is None:
            weights = np.ones(values.size)
        else:
            weights = np.asarray(weights, dtype=np.float64).ravel()
            if weights.size != values.size:
                raise ValueError("weights must align with values")
            if np.any(weights < 0):
                raise ValueError("weights must be >= 0")
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        self._count += float(weights.sum())
        self._buffer.append((values, weights))
        self._buffered += values.size
        if self._buffered >= self.buffer_size:
            self._fold_buffer()

    def _fold_buffer(self) -> None:
        if not self._buffer:
            return
        batch_values = np.concatenate([v for v, _ in self._buffer])
        batch_weights = np.concatenate([w for _, w in self._buffer])
        self._buffer = []
        self._buffered = 0
        values = np.concatenate([self._summary_values, batch_values])
        weights = np.concatenate(
            [self._summary_weights, batch_weights]
        )
        self._summary_values, self._summary_weights = _compact(
            values, weights, self.max_summary
        )

    def merge(self, other: "MergingSketch") -> "MergingSketch":
        result = MergingSketch(eps=min(self.eps, other.eps),
                               buffer_size=self.buffer_size)
        self._fold_buffer()
        other._fold_buffer()
        result._count = self._count + other._count
        result._min = min(self._min, other._min)
        result._max = max(self._max, other._max)
        values = np.concatenate(
            [self._summary_values, other._summary_values]
        )
        weights = np.concatenate(
            [self._summary_weights, other._summary_weights]
        )
        result._summary_values, result._summary_weights = _compact(
            values, weights, result.max_summary
        )
        return result

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> float:
        return self._count

    @property
    def size(self) -> int:
        return self._summary_values.size + self._buffered

    @property
    def serialized_nbytes(self) -> int:
        """8-byte value + 8-byte weight per summary point."""
        self._fold_buffer()
        return 16 * self._summary_values.size

    def query(self, quantile: float) -> float:
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if self._count == 0:
            raise ValueError("cannot query an empty sketch")
        self._fold_buffer()
        if quantile <= 0.0:
            return self._min
        if quantile >= 1.0:
            return self._max
        cum = np.cumsum(self._summary_weights)
        target = quantile * self._count
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, self._summary_values.size - 1)
        return float(self._summary_values[idx])

    def quantiles(self, probs: Sequence[float]) -> np.ndarray:
        return np.array([self.query(p) for p in probs])


def _compact(
    values: np.ndarray, weights: np.ndarray, max_points: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce a weighted point set to at most ``max_points`` points.

    Points are kept at evenly spaced weighted ranks; the weight between two
    kept points is attributed to the right one, preserving total weight and
    keeping every answer within one stride of the true weighted rank.
    """
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    if values.size <= max_points:
        return values, weights
    cum = np.cumsum(weights)
    total = cum[-1]
    targets = np.linspace(total / max_points, total, max_points)
    idx = np.searchsorted(cum, targets, side="left")
    idx = np.minimum(idx, values.size - 1)
    idx = np.unique(idx)
    if idx[-1] != values.size - 1:
        idx = np.append(idx, values.size - 1)  # keep the maximum exact
    kept_values = values[idx]
    boundaries = np.concatenate(([0.0], cum[idx]))
    kept_weights = np.diff(boundaries)
    return kept_values, kept_weights
