"""Mergeable quantile sketches and candidate-split proposal."""
