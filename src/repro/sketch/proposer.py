"""Candidate-split proposal from quantile sketches (Section 2.1.2, 4.2.1).

Step 2 of the transformation pipeline: the merged global sketch of each
feature yields up to ``q - 1`` interior cut points at evenly spaced
quantiles, partitioning the feature's present values into at most ``q``
histogram bins.  Duplicate cuts (features with few distinct values) are
dropped, so a feature may legitimately end up with fewer than ``q`` bins.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from .quantile import GKSketch, MergingSketch

Sketch = Union[GKSketch, MergingSketch]


def propose_candidates(sketch: Sketch, num_candidates: int) -> np.ndarray:
    """Interior cut points for one feature from its merged sketch.

    Returns a strictly increasing float array of length ``<= q - 1``.  A
    value ``v`` is assigned bin ``searchsorted(cuts, v, side='left')`` —
    bin ``b`` holds values in ``(cuts[b-1], cuts[b]]`` and a split "at bin
    ``b``" sends ``value <= cuts[b]`` to the left child.
    """
    if num_candidates < 1:
        raise ValueError(
            f"num_candidates must be >= 1, got {num_candidates}"
        )
    if sketch.count == 0:
        return np.empty(0, dtype=np.float64)
    probs = np.arange(1, num_candidates) / num_candidates
    cuts = sketch.quantiles(probs)
    cuts = np.unique(cuts)
    # An interior cut equal to the global maximum would create an empty
    # right-most bin; drop it.
    maximum = sketch.query(1.0)
    return cuts[cuts < maximum]


def propose_candidates_exact(
    values: np.ndarray, num_candidates: int
) -> np.ndarray:
    """Exact-quantile variant used by the single-process oracle trainer.

    Matches :func:`propose_candidates` semantics but computes quantiles on
    the full value array.  Uses the same "lower" interpolation a rank query
    on a sketch performs, so oracle and distributed systems agree whenever
    the sketch is exact (small data).
    """
    if num_candidates < 1:
        raise ValueError(
            f"num_candidates must be >= 1, got {num_candidates}"
        )
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return np.empty(0, dtype=np.float64)
    probs = np.arange(1, num_candidates) / num_candidates
    cuts = np.quantile(values, probs, method="lower")
    cuts = np.unique(cuts)
    return cuts[cuts < values.max()]


def propose_candidates_weighted(
    values: np.ndarray,
    weights: np.ndarray,
    num_candidates: int,
    eps: float = 0.005,
) -> np.ndarray:
    """Hessian-weighted candidate proposal (XGBoost's weighted sketch).

    Cut points sit at evenly spaced *weighted* ranks, so each bin carries
    roughly equal second-order gradient mass — finer resolution where the
    loss curvature concentrates.  Returns interior cuts with the same
    semantics as :func:`propose_candidates`.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return np.empty(0, dtype=np.float64)
    sketch = MergingSketch(eps=eps)
    sketch.update(values, weights)
    return propose_candidates(sketch, num_candidates)


def bin_values(values: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Map raw feature values to bin indexes given interior cuts."""
    return np.searchsorted(cuts, values, side="left").astype(np.int32)


def num_bins(cuts_per_feature: Sequence[np.ndarray]) -> List[int]:
    """Bins per feature: one more than the number of interior cuts."""
    return [cuts.size + 1 for cuts in cuts_per_feature]
