"""KLL sketch — asymptotically optimal streaming quantiles [22 in the
paper: Karnin, Lang, Liberty, FOCS 2016].

A hierarchy of *compactors*: level ``h`` stores items of weight
``2**h``.  When a compactor overflows, its sorted contents are halved by
keeping every other item (random parity) and promoted one level up.
Capacities decay geometrically toward the top, giving ``O((1/eps)
sqrt(log(1/eps)))`` space for rank error ``eps * n``.

Provided alongside :class:`~repro.sketch.quantile.GKSketch` and
:class:`~repro.sketch.quantile.MergingSketch` so the transformation
pipeline's sketch is swappable; property tests pin the rank-error
behaviour of all three to the same contract.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

#: geometric capacity decay between compactor levels
_DECAY = 2.0 / 3.0


class KLLSketch:
    """Mergeable KLL quantile sketch over float observations."""

    def __init__(self, k: int = 200, seed: int = 0) -> None:
        if k < 8:
            raise ValueError(f"k must be >= 8, got {k}")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._compactors: List[List[float]] = [[]]
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # -- updates -----------------------------------------------------------

    def insert(self, value: float) -> None:
        self.update([value])

    def update(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        self._count += values.size
        self._compactors[0].extend(values.tolist())
        self._compress()

    def merge(self, other: "KLLSketch") -> "KLLSketch":
        result = KLLSketch(k=min(self.k, other.k),
                           seed=int(self._rng.integers(1 << 31)))
        result._count = self._count + other._count
        result._min = min(self._min, other._min)
        result._max = max(self._max, other._max)
        depth = max(len(self._compactors), len(other._compactors))
        result._compactors = [[] for _ in range(depth)]
        for level in range(depth):
            if level < len(self._compactors):
                result._compactors[level].extend(
                    self._compactors[level])
            if level < len(other._compactors):
                result._compactors[level].extend(
                    other._compactors[level])
        result._compress()
        return result

    def _capacity(self, level: int) -> int:
        height = len(self._compactors)
        return max(int(math.ceil(self.k * _DECAY ** (height - level - 1))),
                   2)

    def _compress(self) -> None:
        level = 0
        while level < len(self._compactors):
            compactor = self._compactors[level]
            if len(compactor) <= self._capacity(level):
                level += 1
                continue
            if level + 1 == len(self._compactors):
                self._compactors.append([])
            compactor.sort()
            offset = int(self._rng.integers(2))
            promoted = compactor[offset::2]
            self._compactors[level + 1].extend(promoted)
            self._compactors[level] = []
            level += 1

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def size(self) -> int:
        return sum(len(c) for c in self._compactors)

    @property
    def serialized_nbytes(self) -> int:
        """8-byte value + 8-byte weight per retained item."""
        return 16 * self.size

    def _weighted_items(self):
        values: List[float] = []
        weights: List[float] = []
        for level, compactor in enumerate(self._compactors):
            values.extend(compactor)
            weights.extend([2.0 ** level] * len(compactor))
        return np.asarray(values), np.asarray(weights)

    def query(self, quantile: float) -> float:
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if self._count == 0:
            raise ValueError("cannot query an empty sketch")
        if quantile <= 0.0:
            return self._min
        if quantile >= 1.0:
            return self._max
        values, weights = self._weighted_items()
        order = np.argsort(values, kind="stable")
        values = values[order]
        cum = np.cumsum(weights[order])
        target = quantile * cum[-1]
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, values.size - 1)
        return float(values[idx])

    def quantiles(self, probs: Sequence[float]) -> np.ndarray:
        return np.array([self.query(p) for p in probs])
