"""repro — reproduction of "An Experimental Evaluation of Large Scale GBDT
Systems" (Fu, Jiang, Shao, Cui; VLDB 2019).

Public API
----------
- :class:`TrainConfig`, :class:`ClusterConfig`, :class:`NetworkModel` —
  configuration.
- :func:`make_classification`, :func:`make_regression`,
  :func:`load_catalog` — dataset generators and the Table 2 surrogates.
- :class:`Dataset`, :class:`BinnedDataset`, :func:`bin_dataset` — data.
- :class:`GBDT` — single-process reference trainer.
- :func:`make_system`, :class:`Vero` and the other quadrants — the
  distributed systems under study.
- :class:`ExecutionPlan`, :func:`get_plan`, :data:`PLANS` — the
  composable strategy plans behind every system (partition × storage ×
  index × aggregation).
- :func:`horizontal_to_vertical` — Vero's transformation pipeline.
- :func:`recommend` — the data-management advisor (Section 6's open
  problem): pick a quadrant from workload shape + environment.
- :func:`save_ensemble` / :func:`load_ensemble`,
  :func:`feature_importance` — model persistence and introspection.
- :func:`compile_ensemble`, :class:`ModelRegistry`,
  :class:`MicroBatcher`, :class:`ReplicaSet` — the serving subsystem:
  compiled batch inference, versioned hot-swap, replicated serving over
  the simulated cluster.
"""

from .config import ClusterConfig, NetworkModel, TrainConfig
from .core.exact import ExactGBDT
from .core.gbdt import GBDT, TrainResult
from .core.importance import feature_importance, top_features
from .core.metrics import accuracy, auc, logloss, multiclass_accuracy, rmse
from .core.serialize import load_ensemble, save_ensemble
from .core.validation import cross_validate
from .data.catalog import CATALOG, load as load_catalog
from .data.dataset import BinnedDataset, Dataset, bin_dataset
from .data.io import read_libsvm, write_libsvm
from .data.synthetic import make_classification, make_regression
from .cluster.transform import horizontal_to_vertical
from .serve import (BatchPolicy, CompiledEnsemble, MicroBatcher,
                    ModelRegistry, ModelServer, ReplicaSet,
                    compile_ensemble, synthetic_trace)
from .systems import (DimBoostStyle, DistTrainResult, ExecutionPlan,
                      LightGBMStyle, LightGBMFeatureParallel, PLANS,
                      PlanExecutor, Vero, XGBoostStyle, YggdrasilStyle,
                      get_plan, make_system, plan_keys, recommend)
from .systems.costmodel import WorkloadShape

__version__ = "1.0.0"

__all__ = [
    "BatchPolicy",
    "BinnedDataset",
    "CompiledEnsemble",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "ReplicaSet",
    "compile_ensemble",
    "synthetic_trace",
    "ExactGBDT",
    "cross_validate",
    "WorkloadShape",
    "feature_importance",
    "load_ensemble",
    "recommend",
    "save_ensemble",
    "top_features",
    "CATALOG",
    "ClusterConfig",
    "Dataset",
    "DimBoostStyle",
    "DistTrainResult",
    "ExecutionPlan",
    "GBDT",
    "LightGBMFeatureParallel",
    "LightGBMStyle",
    "NetworkModel",
    "PLANS",
    "PlanExecutor",
    "TrainConfig",
    "TrainResult",
    "Vero",
    "XGBoostStyle",
    "YggdrasilStyle",
    "accuracy",
    "auc",
    "bin_dataset",
    "get_plan",
    "horizontal_to_vertical",
    "load_catalog",
    "plan_keys",
    "logloss",
    "make_classification",
    "make_regression",
    "make_system",
    "multiclass_accuracy",
    "read_libsvm",
    "rmse",
    "write_libsvm",
]
