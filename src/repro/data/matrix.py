"""Sparse matrix substrate: CSR (row-store) and CSC (column-store).

The paper's storage-pattern axis (Section 2.2.2) is exactly the choice
between these two layouts.  We implement both from scratch on top of numpy
arrays so the quadrant implementations can share one code base:

* :class:`CSRMatrix` — each row is a run of ``(col_index, value)`` pairs;
  this is the row-store used by QD2 and QD4 (Vero).
* :class:`CSCMatrix` — each column is a run of ``(row_index, value)`` pairs;
  this is the column-store used by QD1 (XGBoost) and QD3 (Yggdrasil).

Values are stored as ``float64`` when holding raw feature values and as
integer bin indexes after the quantization step of Section 4.2.1; both
classes are dtype-agnostic.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np


class CSRMatrix:
    """Compressed Sparse Row matrix.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_rows + 1``; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        column index of each stored value, non-decreasing within a row.
    values:
        stored values, aligned with ``indices``.
    num_cols:
        logical width of the matrix (columns may be entirely empty).
    """

    __slots__ = ("indptr", "indices", "values", "num_cols",
                 "_row_lengths", "_row_of", "_hist_keys")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        num_cols: int,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices)
        values = np.asarray(values)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError(
                "indptr must start at 0 and end at len(indices); got "
                f"[{indptr[0]}, {indptr[-1]}] for {indices.size} entries"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size != values.size:
            raise ValueError("indices and values must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= num_cols):
            raise ValueError(
                f"column indices out of range [0, {num_cols})"
            )
        self.indptr = indptr
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.values = np.ascontiguousarray(values)
        self.num_cols = int(num_cols)
        # lazily-built invariants used by the histogram hot path; the
        # backing arrays are treated as immutable after construction
        self._row_lengths: "np.ndarray | None" = None
        self._row_of: "np.ndarray | None" = None
        self._hist_keys: dict = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a 2-D dense array, treating exact zeros as missing."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        mask = dense != 0
        counts = mask.sum(axis=1)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        rows, cols = np.nonzero(mask)
        return cls(indptr, cols.astype(np.int32), dense[rows, cols],
                   dense.shape[1])

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[Tuple[int, float]]],
        num_cols: int,
        dtype=np.float64,
    ) -> "CSRMatrix":
        """Build from a list of rows, each a list of ``(col, value)``."""
        counts = [len(r) for r in rows]
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int32)
        values = np.empty(nnz, dtype=dtype)
        pos = 0
        for row in rows:
            for col, val in sorted(row):
                indices[pos] = col
                values[pos] = val
                pos += 1
        return cls(indptr, indices, values, num_cols)

    # -- basic properties --------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def nnz(self) -> int:
        return self.values.size

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def nbytes(self) -> int:
        """Bytes held by the three backing arrays (memory accounting)."""
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes

    def row_lengths(self) -> np.ndarray:
        """Number of stored values in each row (cached)."""
        if self._row_lengths is None:
            self._row_lengths = np.diff(self.indptr)
        return self._row_lengths

    def row_of_entries(self) -> np.ndarray:
        """Row id of every stored entry, in storage order (cached).

        This is the expansion ``repeat(arange(num_rows), row_lengths)``
        that the histogram kernels would otherwise rebuild per call.
        """
        if self._row_of is None:
            self._row_of = np.repeat(
                np.arange(self.num_rows, dtype=np.int32),
                self.row_lengths(),
            )
        return self._row_of

    def hist_keys(self, num_bins: int) -> np.ndarray:
        """``feature * num_bins + bin`` per entry, for binned matrices.

        Cached per ``num_bins``: these composite scatter keys are invariant
        for the life of a binned shard, so the root-node histogram build can
        skip the whole gather+key computation (the values *are* the bins).
        """
        keys = self._hist_keys.get(num_bins)
        if keys is None:
            keys = self.indices.astype(np.int64) * num_bins
            keys += self.values
            self._hist_keys[num_bins] = keys
        return keys

    # -- access -------------------------------------------------------------

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(column_indices, values)`` of row ``i`` (views, no copy)."""
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} out of range [0, {self.num_rows})")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row_id, column_indices, values)`` for each row."""
        for i in range(self.num_rows):
            cols, vals = self.row(i)
            yield i, cols, vals

    def select_rows(self, row_ids: np.ndarray) -> "CSRMatrix":
        """New CSR containing only ``row_ids``, in the given order."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.size and (row_ids.min() < 0
                             or row_ids.max() >= self.num_rows):
            raise IndexError("row id out of range")
        lengths = self.row_lengths()[row_ids]
        indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int32)
        values = np.empty(nnz, dtype=self.values.dtype)
        # Gather positions of all selected entries in one vectorized pass.
        starts = self.indptr[row_ids]
        if nnz:
            offsets = np.arange(nnz) - np.repeat(indptr[:-1], lengths)
            src = np.repeat(starts, lengths) + offsets
            indices[:] = self.indices[src]
            values[:] = self.values[src]
        return CSRMatrix(indptr, indices, values, self.num_cols)

    def select_cols(self, col_ids: np.ndarray,
                    renumber: bool = True) -> "CSRMatrix":
        """New CSR keeping only columns in ``col_ids``.

        With ``renumber=True`` (the default) the kept columns are renamed
        ``0..len(col_ids)-1`` in the order given — this is the column
        grouping step of the horizontal-to-vertical transformation.
        """
        col_ids = np.asarray(col_ids, dtype=np.int64)
        remap = np.full(self.num_cols, -1, dtype=np.int64)
        remap[col_ids] = np.arange(col_ids.size) if renumber else col_ids
        keep = remap[self.indices] >= 0
        new_indices = remap[self.indices[keep]].astype(np.int32)
        new_values = self.values[keep]
        row_of = self.row_of_entries()
        counts = np.bincount(row_of[keep], minlength=self.num_rows)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        width = col_ids.size if renumber else self.num_cols
        return CSRMatrix(indptr, new_indices, new_values, width)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        row_of = self.row_of_entries()
        dense[row_of, self.indices] = self.values
        return dense

    def to_csc(self) -> "CSCMatrix":
        """Convert to column-store (stable within each column)."""
        row_of = np.repeat(
            np.arange(self.num_rows, dtype=np.int32), np.diff(self.indptr)
        )
        order = np.argsort(self.indices, kind="stable")
        col_counts = np.bincount(self.indices, minlength=self.num_cols)
        indptr = np.concatenate(([0], np.cumsum(col_counts))).astype(np.int64)
        return CSCMatrix(
            indptr, row_of[order], self.values[order], self.num_rows
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.values.dtype})"
        )


class CSCMatrix:
    """Compressed Sparse Column matrix (see :class:`CSRMatrix`)."""

    __slots__ = ("indptr", "indices", "values", "num_rows",
                 "_col_lengths", "_col_of", "_hist_keys")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        num_rows: int,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices)
        values = np.asarray(values)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size != values.size:
            raise ValueError("indices and values must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
            raise ValueError(f"row indices out of range [0, {num_rows})")
        self.indptr = indptr
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.values = np.ascontiguousarray(values)
        self.num_rows = int(num_rows)
        self._col_lengths: "np.ndarray | None" = None
        self._col_of: "np.ndarray | None" = None
        self._hist_keys: dict = {}

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        return CSRMatrix.from_dense(np.asarray(dense)).to_csc()

    @property
    def num_cols(self) -> int:
        return self.indptr.size - 1

    @property
    def nnz(self) -> int:
        return self.values.size

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_indices, values)`` of column ``j`` (views, no copy)."""
        if not 0 <= j < self.num_cols:
            raise IndexError(f"column {j} out of range [0, {self.num_cols})")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def iter_cols(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        for j in range(self.num_cols):
            rows, vals = self.col(j)
            yield j, rows, vals

    def col_lengths(self) -> np.ndarray:
        """Number of stored values in each column (cached)."""
        if self._col_lengths is None:
            self._col_lengths = np.diff(self.indptr)
        return self._col_lengths

    def col_of_entries(self) -> np.ndarray:
        """Column id of every stored entry, in storage order (cached)."""
        if self._col_of is None:
            self._col_of = np.repeat(
                np.arange(self.num_cols, dtype=np.int32),
                self.col_lengths(),
            )
        return self._col_of

    def hist_keys(self, num_bins: int) -> np.ndarray:
        """``column * num_bins + bin`` per entry, for binned matrices
        (cached per ``num_bins``; see :meth:`CSRMatrix.hist_keys`)."""
        keys = self._hist_keys.get(num_bins)
        if keys is None:
            keys = self.col_of_entries().astype(np.int64) * num_bins
            keys += self.values
            self._hist_keys[num_bins] = keys
        return keys

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        col_of = np.repeat(np.arange(self.num_cols), np.diff(self.indptr))
        dense[self.indices, col_of] = self.values
        return dense

    def to_csr(self) -> CSRMatrix:
        col_of = np.repeat(
            np.arange(self.num_cols, dtype=np.int32), np.diff(self.indptr)
        )
        order = np.argsort(self.indices, kind="stable")
        row_counts = np.bincount(self.indices, minlength=self.num_rows)
        indptr = np.concatenate(([0], np.cumsum(row_counts))).astype(np.int64)
        return CSRMatrix(
            indptr, col_of[order], self.values[order], self.num_cols
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSCMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.values.dtype})"
        )
