"""Synthetic dataset generator (Section 5.2 of the paper).

Datasets are drawn from random linear models: a ``D x C`` weight matrix
``W`` with an *informative ratio* ``p`` of nonzero feature rows; each
instance is a sparse ``D``-dimensional vector with density ``phi``; its
label is ``argmax(x^T W)`` (classification) or ``x^T w`` plus noise
(regression).  The paper fixes ``p = phi = 0.2`` for the quadrant
assessment; our defaults follow suit, with density overridable so the
high-dimensional sparse surrogates of Table 2 can be produced.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .matrix import CSRMatrix


def _sparse_rows(
    rng: np.random.Generator,
    num_instances: int,
    num_features: int,
    density: float,
) -> CSRMatrix:
    """Random sparse matrix with ~``density`` nonzeros per row.

    Column positions are sampled with replacement and deduplicated within
    each row, so realized density is marginally below the target for dense
    targets — irrelevant for the regimes studied.
    """
    per_row = max(int(round(density * num_features)), 1)
    per_row = min(per_row, num_features)
    if per_row == num_features:
        # fully dense: all columns present
        cols = np.tile(np.arange(num_features, dtype=np.int32),
                       num_instances)
        vals = rng.standard_normal(cols.size)
        indptr = np.arange(0, cols.size + 1, num_features, dtype=np.int64)
        return CSRMatrix(indptr, cols, vals, num_features)
    raw = rng.integers(0, num_features, size=(num_instances, per_row))
    raw.sort(axis=1)
    keep = np.concatenate(
        [np.ones((num_instances, 1), dtype=bool),
         raw[:, 1:] != raw[:, :-1]],
        axis=1,
    )
    counts = keep.sum(axis=1)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    cols = raw[keep].astype(np.int32)
    vals = rng.standard_normal(cols.size)
    return CSRMatrix(indptr, cols, vals, num_features)


def _scores(features: CSRMatrix, weights: np.ndarray) -> np.ndarray:
    """``X @ W`` for sparse X, dense ``(D, C)`` weights."""
    num_classes = weights.shape[1]
    scores = np.zeros((features.num_rows, num_classes), dtype=np.float64)
    row_of = np.repeat(
        np.arange(features.num_rows), np.diff(features.indptr)
    )
    contrib = weights[features.indices] * features.values[:, None]
    np.add.at(scores, row_of, contrib)
    return scores


def _merge_informative(
    rng: np.random.Generator,
    background: CSRMatrix,
    informative: np.ndarray,
    informative_density: float,
) -> CSRMatrix:
    """Overlay denser entries for the informative features.

    Real high-dimensional sparse datasets (e.g. RCV1) carry their signal
    in features that occur far more often than the long tail; without
    this, a surrogate's signal is spread over thousands of rare features
    and no learner can pick it up at laptop scale.
    """
    num_rows = background.num_rows
    present = rng.random((num_rows, informative.size)) < \
        informative_density
    inf_rows, inf_pos = np.nonzero(present)
    inf_cols = informative[inf_pos].astype(np.int32)
    inf_vals = rng.standard_normal(inf_cols.size)
    bg_rows = np.repeat(
        np.arange(num_rows, dtype=np.int64),
        np.diff(background.indptr),
    )
    rows = np.concatenate([bg_rows, inf_rows])
    cols = np.concatenate([background.indices, inf_cols])
    vals = np.concatenate([background.values, inf_vals])
    # sort by (row, col), stable, and drop duplicate coordinates —
    # informative entries were appended last, so the background value
    # wins on collision (the choice is immaterial)
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    keep = np.concatenate(
        ([True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1]))
    )
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    counts = np.bincount(rows, minlength=num_rows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return CSRMatrix(indptr, cols, vals, background.num_cols)


def make_classification(
    num_instances: int,
    num_features: int,
    num_classes: int = 2,
    density: float = 0.2,
    informative_ratio: float = 0.2,
    noise: float = 0.5,
    seed: int = 0,
    name: str = "synthetic",
    num_informative: int = None,
    informative_density: float = None,
) -> Dataset:
    """Random linear-model classification dataset (Section 5.2 recipe).

    ``noise`` is the standard deviation of Gaussian noise added to the
    class scores before the argmax, keeping the task learnable but not
    trivially separable.  By default ``informative_ratio * D`` features
    carry weight (the paper's setup); passing ``num_informative``
    overrides the count, and ``informative_density`` makes those features
    occur at the given per-row probability regardless of the background
    ``density`` — concentrating the signal the way real sparse corpora do.
    """
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if not 0.0 < informative_ratio <= 1.0:
        raise ValueError(
            f"informative_ratio must be in (0, 1], got {informative_ratio}"
        )
    if informative_density is not None and not \
            0.0 < informative_density <= 1.0:
        raise ValueError("informative_density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    features = _sparse_rows(rng, num_instances, num_features, density)
    if num_informative is None:
        num_informative = max(int(round(informative_ratio * num_features)),
                              1)
    num_informative = min(num_informative, num_features)
    informative = rng.choice(num_features, size=num_informative,
                             replace=False)
    if informative_density is not None:
        features = _merge_informative(rng, features, informative,
                                      informative_density)
    weights = np.zeros((num_features, num_classes), dtype=np.float64)
    weights[informative] = rng.standard_normal(
        (num_informative, num_classes)
    )
    scores = _scores(features, weights)
    if noise > 0:
        scores = scores + noise * rng.standard_normal(scores.shape)
    labels = scores.argmax(axis=1).astype(np.int64)
    task = "binary" if num_classes == 2 else "multiclass"
    return Dataset(features, labels, task=task, num_classes=num_classes,
                   name=name)


def make_regression(
    num_instances: int,
    num_features: int,
    density: float = 0.2,
    informative_ratio: float = 0.2,
    noise: float = 0.1,
    seed: int = 0,
    name: str = "synthetic-reg",
) -> Dataset:
    """Random linear-model regression dataset."""
    rng = np.random.default_rng(seed)
    features = _sparse_rows(rng, num_instances, num_features, density)
    num_informative = max(int(round(informative_ratio * num_features)), 1)
    informative = rng.choice(num_features, size=num_informative,
                             replace=False)
    weights = np.zeros((num_features, 1), dtype=np.float64)
    weights[informative, 0] = rng.standard_normal(num_informative)
    labels = _scores(features, weights).ravel()
    if noise > 0:
        labels = labels + noise * rng.standard_normal(labels.shape)
    return Dataset(features, labels, task="regression", name=name)
