"""Dataset substrate: sparse matrices, binning, generators, catalog, I/O."""
