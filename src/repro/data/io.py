"""LibSVM-format text I/O.

The datasets the paper evaluates are distributed in libsvm format; this
module round-trips :class:`~repro.data.dataset.Dataset` objects through it
so users can plug in their own data files.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from .dataset import Dataset
from .matrix import CSRMatrix


def write_libsvm(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write ``label idx:value ...`` lines, one instance per line.

    Feature indexes are written 1-based per the libsvm convention.
    """
    path = Path(path)
    with path.open("w") as handle:
        for i, cols, vals in dataset.features.iter_rows():
            label = dataset.labels[i]
            if dataset.task == "regression":
                label_str = repr(float(label))
            else:
                label_str = str(int(label))
            pairs = " ".join(
                f"{int(c) + 1}:{float(v):.17g}"
                for c, v in zip(cols, vals)
            )
            handle.write(f"{label_str} {pairs}\n".rstrip() + "\n")


def read_libsvm(
    path: Union[str, Path],
    num_features: int = None,
    task: str = "binary",
    num_classes: int = 2,
    name: str = None,
) -> Dataset:
    """Read a libsvm file into a :class:`Dataset`.

    ``num_features`` widens the matrix beyond the highest index seen
    (useful when a test split lacks the tail features of the train split).
    """
    path = Path(path)
    labels: List[float] = []
    rows: List[Tuple[np.ndarray, np.ndarray]] = []
    max_col = -1
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_no}: bad label {parts[0]!r}"
                ) from exc
            cols = np.empty(len(parts) - 1, dtype=np.int32)
            vals = np.empty(len(parts) - 1, dtype=np.float64)
            for k, pair in enumerate(parts[1:]):
                try:
                    idx_str, val_str = pair.split(":", 1)
                    cols[k] = int(idx_str) - 1
                    vals[k] = float(val_str)
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{line_no}: bad pair {pair!r}"
                    ) from exc
            if cols.size and cols.min() < 0:
                raise ValueError(
                    f"{path}:{line_no}: feature indexes must be >= 1"
                )
            order = np.argsort(cols, kind="stable")
            rows.append((cols[order], vals[order]))
            if cols.size:
                max_col = max(max_col, int(cols.max()))
    width = max_col + 1 if num_features is None else num_features
    if width < max_col + 1:
        raise ValueError(
            f"num_features={width} smaller than max index {max_col + 1}"
        )
    counts = [c.size for c, _ in rows]
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    if rows:
        indices = np.concatenate([c for c, _ in rows])
        values = np.concatenate([v for _, v in rows])
    else:
        indices = np.empty(0, dtype=np.int32)
        values = np.empty(0, dtype=np.float64)
    features = CSRMatrix(indptr, indices, values, max(width, 1))
    label_arr = np.asarray(labels)
    if task in ("binary", "multiclass"):
        label_arr = label_arr.astype(np.int64)
    return Dataset(features, label_arr, task=task, num_classes=num_classes,
                   name=name or path.stem)
