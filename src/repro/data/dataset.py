"""Dataset abstraction and the quantile binning step.

A :class:`Dataset` couples a raw sparse feature matrix (CSR) with labels.
Before training, features are quantized into histogram-bin indexes against
per-feature candidate splits (Section 2.1.2); the result is a
:class:`BinnedDataset`, the representation every trainer operates on — the
paper's transformation (Section 4.2.1 step 3) ships exactly these bin
indexes over the network.

Exact zeros in the sparse matrix are treated as *missing* values, matching
the sparse-dataset convention of the paper; dense datasets simply store all
entries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..sketch.proposer import propose_candidates, propose_candidates_exact
from ..sketch.quantile import MergingSketch
from .matrix import CSCMatrix, CSRMatrix


class Dataset:
    """Raw features + labels.

    ``task`` is one of ``"binary"`` (labels in {0, 1}), ``"multiclass"``
    (labels in {0..C-1}) or ``"regression"`` (float labels).
    """

    def __init__(
        self,
        features: CSRMatrix,
        labels: np.ndarray,
        task: str = "binary",
        num_classes: int = 2,
        name: str = "dataset",
    ) -> None:
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.size != features.num_rows:
            raise ValueError(
                f"labels must be 1-D with length {features.num_rows}"
            )
        if task not in ("binary", "multiclass", "regression"):
            raise ValueError(f"unknown task: {task!r}")
        if task == "binary" and not np.isin(labels, (0, 1)).all():
            raise ValueError("binary task requires labels in {0, 1}")
        if task == "multiclass":
            if num_classes < 3:
                raise ValueError("multiclass task requires num_classes >= 3")
            if labels.min() < 0 or labels.max() >= num_classes:
                raise ValueError(
                    f"multiclass labels must lie in [0, {num_classes})"
                )
        self.features = features
        self.labels = labels
        self.task = task
        self.num_classes = num_classes if task == "multiclass" else 2
        self.name = name
        self._csc: Optional[CSCMatrix] = None

    @property
    def num_instances(self) -> int:
        return self.features.num_rows

    @property
    def num_features(self) -> int:
        return self.features.num_cols

    @property
    def density(self) -> float:
        total = self.num_instances * self.num_features
        return self.features.nnz / total if total else 0.0

    def csc(self) -> CSCMatrix:
        """Column-store view of the raw features (cached; prediction path)."""
        if self._csc is None:
            self._csc = self.features.to_csc()
        return self._csc

    def split(self, train_fraction: float,
              seed: int = 0) -> Tuple["Dataset", "Dataset"]:
        """Shuffled train/validation split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.num_instances)
        cut = int(round(train_fraction * self.num_instances))
        train_ids, valid_ids = np.sort(order[:cut]), np.sort(order[cut:])
        make = lambda ids, suffix: Dataset(  # noqa: E731
            self.features.select_rows(ids), self.labels[ids], self.task,
            self.num_classes, f"{self.name}-{suffix}"
        )
        return make(train_ids, "train"), make(valid_ids, "valid")

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, N={self.num_instances}, "
            f"D={self.num_features}, task={self.task}, "
            f"classes={self.num_classes}, density={self.density:.4f})"
        )


class BinnedDataset:
    """Features quantized to histogram-bin indexes.

    ``binned`` stores ``int32`` bin indexes as CSR values; ``cuts[f]`` is
    the strictly increasing array of interior cut points of feature ``f``
    (``bins_per_feature[f] == len(cuts[f]) + 1``).  ``num_bins`` is the
    uniform histogram width ``q`` — features with fewer distinct values
    leave their trailing bins empty.
    """

    def __init__(
        self,
        binned: CSRMatrix,
        cuts: List[np.ndarray],
        labels: np.ndarray,
        num_bins: int,
        task: str,
        num_classes: int,
        name: str = "binned",
    ) -> None:
        if len(cuts) != binned.num_cols:
            raise ValueError("one cuts array per feature required")
        self.binned = binned
        self.cuts = cuts
        self.labels = np.asarray(labels)
        self.num_bins = num_bins
        self.task = task
        self.num_classes = num_classes
        self.name = name
        self.bins_per_feature = np.array(
            [c.size + 1 for c in cuts], dtype=np.int64
        )
        if self.bins_per_feature.max(initial=1) > num_bins:
            raise ValueError("a feature has more bins than num_bins")
        self._csc: Optional[CSCMatrix] = None
        self._search_keys: Optional[np.ndarray] = None

    @property
    def num_instances(self) -> int:
        return self.binned.num_rows

    @property
    def num_features(self) -> int:
        return self.binned.num_cols

    def csc(self) -> CSCMatrix:
        """Column-store copy of the binned matrix (cached)."""
        if self._csc is None:
            self._csc = self.binned.to_csc()
        return self._csc

    def search_keys(self) -> np.ndarray:
        """Cached composite keys for O(log nnz) (row, feature) lookups
        during node splitting (see
        :func:`repro.core.placement.rowstore_search_keys`)."""
        if self._search_keys is None:
            from ..core.placement import rowstore_search_keys

            self._search_keys = rowstore_search_keys(self.binned)
        return self._search_keys

    def threshold_of(self, feature: int, bin_id: int) -> float:
        """Raw cut value of a split "bins <= bin_id go left"."""
        cuts = self.cuts[feature]
        if not 0 <= bin_id < cuts.size:
            raise ValueError(
                f"bin {bin_id} is not a valid split of feature {feature}"
            )
        return float(cuts[bin_id])

    def select_features(self, feature_ids: np.ndarray,
                        name: Optional[str] = None) -> "BinnedDataset":
        """Vertical slice keeping ``feature_ids`` renumbered from 0 —
        the per-worker column group of vertical partitioning."""
        feature_ids = np.asarray(feature_ids, dtype=np.int64)
        return BinnedDataset(
            self.binned.select_cols(feature_ids),
            [self.cuts[int(f)] for f in feature_ids],
            self.labels,
            self.num_bins,
            self.task,
            self.num_classes,
            name or f"{self.name}-cols",
        )

    def select_instances(self, row_ids: np.ndarray,
                         name: Optional[str] = None) -> "BinnedDataset":
        """Horizontal slice keeping ``row_ids`` — the per-worker shard of
        horizontal partitioning."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        return BinnedDataset(
            self.binned.select_rows(row_ids),
            self.cuts,
            self.labels[row_ids],
            self.num_bins,
            self.task,
            self.num_classes,
            name or f"{self.name}-rows",
        )

    def __repr__(self) -> str:
        return (
            f"BinnedDataset({self.name!r}, N={self.num_instances}, "
            f"D={self.num_features}, q={self.num_bins})"
        )


def apply_cuts(csr: CSRMatrix, cuts: List[np.ndarray]) -> CSRMatrix:
    """Quantize a raw CSR matrix into bin indexes against ``cuts``.

    Vectorized: the per-feature cut arrays are padded to a ``(D, q-1)``
    matrix with ``+inf`` and each entry's bin is the count of cuts strictly
    below its value (equivalent to ``searchsorted`` side='left').
    """
    if len(cuts) != csr.num_cols:
        raise ValueError("one cuts array per feature required")
    max_cuts = max((c.size for c in cuts), default=0)
    binned_vals = np.zeros(csr.nnz, dtype=np.int32)
    if max_cuts > 0 and csr.nnz > 0:
        cut_matrix = np.full((csr.num_cols, max_cuts), np.inf)
        for j, c in enumerate(cuts):
            cut_matrix[j, : c.size] = c
        chunk = 1 << 20
        for lo in range(0, csr.nnz, chunk):
            hi = min(lo + chunk, csr.nnz)
            rows_cuts = cut_matrix[csr.indices[lo:hi]]
            binned_vals[lo:hi] = (
                rows_cuts < csr.values[lo:hi, None]
            ).sum(axis=1)
    return CSRMatrix(csr.indptr.copy(), csr.indices.copy(), binned_vals,
                     csr.num_cols)


def bin_dataset(
    dataset: Dataset,
    num_bins: int,
    method: str = "exact",
    sketch_eps: float = 0.005,
) -> BinnedDataset:
    """Quantize a dataset into at most ``num_bins`` bins per feature.

    ``method="exact"`` computes true quantiles per feature (the oracle
    path); ``method="sketch"`` routes every feature through a
    :class:`MergingSketch`, exercising the same code the distributed
    transformation uses.
    """
    if method not in ("exact", "sketch"):
        raise ValueError(f"unknown binning method: {method!r}")
    csc = dataset.csc()
    cuts: List[np.ndarray] = []
    for j in range(csc.num_cols):
        _, vals = csc.col(j)
        if method == "exact" or vals.size == 0:
            cuts.append(propose_candidates_exact(vals, num_bins))
        else:
            sketch = MergingSketch(eps=sketch_eps)
            sketch.update(vals)
            cuts.append(propose_candidates(sketch, num_bins))
    binned = apply_cuts(dataset.features, cuts)
    return BinnedDataset(
        binned, cuts, dataset.labels, num_bins, dataset.task,
        dataset.num_classes, name=dataset.name,
    )
