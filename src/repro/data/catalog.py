"""Surrogates for the paper's evaluation datasets (Table 2 and Section 6).

The paper's public datasets (SUSY, Higgs, Criteo, Epsilon, RCV1, the
Synthesis pair) and the Tencent industrial datasets (Gender, Age, Taste)
are not shippable here, so each is replaced by a synthetic surrogate with
the same *shape* — the N : D : C : density regime that drives every
conclusion of the paper — geometrically scaled down to laptop size.  The
scaling factors are recorded per entry and surfaced in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .dataset import Dataset
from .synthetic import make_classification


@dataclass(frozen=True)
class CatalogEntry:
    """Shape of one surrogate dataset.

    ``paper_shape`` records the original ``(N, D, C)`` for documentation;
    ``kind`` follows Table 2: LD (low-dimensional dense), HS
    (high-dimensional sparse), MC (multi-class) or IND (industrial, §6).
    """

    name: str
    num_instances: int
    num_features: int
    num_classes: int
    density: float
    kind: str
    paper_shape: Tuple[int, int, int]
    seed: int


# Scaled surrogates.  Relative ordering of N and D across entries matches
# Table 2; multi-class widths are reduced (RCV1-multi 53 -> 8 classes,
# Taste 100 -> 10) to keep pure-Python gradients tractable while keeping
# C > 2 so the multi-class effects remain visible.
CATALOG: Dict[str, CatalogEntry] = {
    e.name: e
    for e in (
        CatalogEntry("susy", 40_000, 18, 2, 1.0, "LD",
                     (5_000_000, 18, 2), 101),
        CatalogEntry("higgs", 44_000, 28, 2, 1.0, "LD",
                     (11_000_000, 28, 2), 102),
        CatalogEntry("criteo", 50_000, 39, 2, 1.0, "LD",
                     (45_000_000, 39, 2), 103),
        CatalogEntry("epsilon", 6_000, 400, 2, 1.0, "LD",
                     (500_000, 2_000, 2), 104),
        CatalogEntry("rcv1", 7_000, 4_700, 2, 0.008, "HS",
                     (697_000, 47_000, 2), 105),
        CatalogEntry("synthesis", 40_000, 10_000, 2, 0.002, "HS",
                     (50_000_000, 100_000, 2), 106),
        CatalogEntry("rcv1-multi", 5_500, 4_700, 8, 0.008, "MC",
                     (534_000, 47_000, 53), 107),
        CatalogEntry("synthesis-multi", 25_000, 2_500, 10, 0.008, "MC",
                     (50_000_000, 25_000, 10), 108),
        CatalogEntry("gender", 90_000, 3_300, 2, 0.004, "IND",
                     (122_000_000, 330_000, 2), 109),
        CatalogEntry("age", 36_000, 3_300, 9, 0.004, "IND",
                     (48_000_000, 330_000, 9), 110),
        CatalogEntry("taste", 9_000, 150, 10, 0.15, "IND",
                     (10_000_000, 15_000, 100), 111),
    )
}


def load(name: str, scale: float = 1.0) -> Dataset:
    """Generate a surrogate dataset by catalog name.

    ``scale`` multiplies the instance count (useful for quick tests:
    ``load("rcv1", scale=0.1)``).
    """
    entry = CATALOG.get(name)
    if entry is None:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    num_instances = max(int(round(entry.num_instances * scale)), 64)
    # Sparse surrogates concentrate their signal in a handful of frequent
    # features, as real text/behaviour corpora do — otherwise no learner
    # could recover the diffuse linear signal at laptop scale.
    concentrated = entry.density < 0.5
    return make_classification(
        num_instances=num_instances,
        num_features=entry.num_features,
        num_classes=entry.num_classes,
        density=entry.density,
        informative_ratio=0.2,
        num_informative=40 if concentrated else None,
        informative_density=0.25 if concentrated else None,
        noise=0.5,
        seed=entry.seed,
        name=entry.name,
    )


def names(kind: str = None) -> Tuple[str, ...]:
    """Catalog names, optionally filtered by Table 2 kind."""
    if kind is None:
        return tuple(CATALOG)
    return tuple(e.name for e in CATALOG.values() if e.kind == kind)
