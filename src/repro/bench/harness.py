"""Experiment harness: run a system on a workload, collect the paper's
measurements (per-tree computation/communication time, traffic, memory
breakdown, convergence curves) and aggregate them into figure-ready rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig, TrainConfig
from ..data.dataset import BinnedDataset, Dataset, bin_dataset
from ..systems import make_system
from ..systems.plans import ExecutionPlan


@dataclass
class ExperimentPoint:
    """One bar/point of a paper figure: a (system, workload) measurement."""

    system: str
    label: str
    comp_seconds: float
    comm_seconds: float
    comp_std: float
    comm_std: float
    comm_bytes_per_tree: float
    data_bytes: int
    histogram_bytes: int
    evals: List = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.comp_seconds + self.comm_seconds


def run_point(
    system_name: "str | ExecutionPlan",
    binned: BinnedDataset,
    config: TrainConfig,
    cluster: ClusterConfig,
    num_trees: Optional[int] = None,
    valid: Optional[Dataset] = None,
    label: str = "",
    faults: Optional[str] = None,
    **system_kwargs,
) -> ExperimentPoint:
    """Train and condense the run into one :class:`ExperimentPoint`.

    ``system_name`` is a system/plan registry name (any
    :func:`~repro.systems.make_system` spelling, including plan keys
    like ``"qd3-pure"``) or an :class:`ExecutionPlan` object — so the
    harness can measure custom strategy compositions that have no
    registry entry.  ``num_trees`` overrides ``config.num_trees`` so
    sweeps can measure a few trees of an otherwise long schedule (the
    paper reports mean and standard deviation of per-tree time).
    ``faults`` overrides ``config.faults`` so a sweep can measure the
    same workload fault-free and under a seeded fault schedule.
    """
    if faults is not None:
        config = replace(config, faults=faults)
    if isinstance(system_name, ExecutionPlan):
        if system_kwargs:
            raise TypeError(
                "system kwargs only apply to named systems; derive a "
                "custom ExecutionPlan instead"
            )
        system = system_name.build(config, cluster)
        system_name = system_name.key
    else:
        system = make_system(system_name, config, cluster,
                             **system_kwargs)
    result = system.fit(binned, valid=valid, num_trees=num_trees)
    reports = result.tree_reports
    return ExperimentPoint(
        system=system_name,
        label=label,
        comp_seconds=float(np.mean([r.comp_seconds for r in reports])),
        comm_seconds=float(np.mean([r.comm_seconds for r in reports])),
        comp_std=float(np.std([r.comp_seconds for r in reports])),
        comm_std=float(np.std([r.comm_seconds for r in reports])),
        comm_bytes_per_tree=(
            float(np.mean([r.comm_bytes for r in reports]))
        ),
        data_bytes=result.memory.data_bytes,
        histogram_bytes=result.memory.histogram_bytes,
        evals=list(result.evals),
    )


def sweep(
    system_name: "str | ExecutionPlan",
    workloads: Dict[str, BinnedDataset],
    config: TrainConfig,
    cluster: ClusterConfig,
    num_trees: int = 3,
    **system_kwargs,
) -> List[ExperimentPoint]:
    """One point per labelled workload, e.g. ``{"N=5M": binned, ...}``."""
    return [
        run_point(system_name, binned, config, cluster,
                  num_trees=num_trees, label=label, **system_kwargs)
        for label, binned in workloads.items()
    ]


def binned_cache() -> "BinnedCache":
    return BinnedCache()


class BinnedCache:
    """Memoized exact binning keyed by dataset identity, so sweeps that
    reuse a dataset across systems only pay quantization once.

    The cache pins a strong reference to each key dataset: ``id()`` keys
    are only unique among *live* objects, so letting a key be collected
    would allow a later dataset to reuse its id and silently receive the
    wrong binned data.
    """

    def __init__(self) -> None:
        self._cache: Dict[tuple, Tuple[Dataset, BinnedDataset]] = {}

    def get(self, dataset: Dataset, num_bins: int) -> BinnedDataset:
        key = (id(dataset), num_bins)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is dataset:
            return hit[1]
        binned = bin_dataset(dataset, num_bins)
        self._cache[key] = (dataset, binned)
        return binned
