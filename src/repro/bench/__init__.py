"""Benchmark harness: experiment runner and paper-style report formatting."""
