"""Formatting of experiment results as the paper's tables and figures.

Figures become text tables whose rows are the figure's series; tables keep
the paper's row/column structure.  Every bench prints through here so the
output is directly comparable with the paper (EXPERIMENTS.md records the
side-by-side).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .harness import ExperimentPoint


def _fmt_seconds(value: float, std: float = None) -> str:
    if std is None:
        return f"{value:9.4f}s"
    return f"{value:9.4f}s ±{std:7.4f}"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024 or unit == "GB":
            return f"{value:8.1f}{unit}"
        value /= 1024
    return f"{value:8.1f}GB"


def figure10_table(
    title: str, points_by_system: Dict[str, List[ExperimentPoint]]
) -> str:
    """Time-breakdown table mirroring one panel of Figure 10."""
    lines = [title, "-" * len(title)]
    header = (
        f"{'system':<14} {'workload':<12} {'comp/tree':<22} "
        f"{'comm/tree':<22} {'wire/tree':>12}"
    )
    lines.append(header)
    for system, points in points_by_system.items():
        for p in points:
            lines.append(
                f"{system:<14} {p.label:<12} "
                f"{_fmt_seconds(p.comp_seconds, p.comp_std):<22} "
                f"{_fmt_seconds(p.comm_seconds, p.comm_std):<22} "
                f"{_fmt_bytes(p.comm_bytes_per_tree):>12}"
            )
    return "\n".join(lines)


def memory_table(
    title: str, points_by_system: Dict[str, List[ExperimentPoint]]
) -> str:
    """Memory-breakdown table mirroring Figure 10(e)/(f)."""
    lines = [title, "-" * len(title)]
    lines.append(
        f"{'system':<14} {'workload':<12} {'data':>12} {'histogram':>12}"
    )
    for system, points in points_by_system.items():
        for p in points:
            lines.append(
                f"{system:<14} {p.label:<12} "
                f"{_fmt_bytes(p.data_bytes):>12} "
                f"{_fmt_bytes(p.histogram_bytes):>12}"
            )
    return "\n".join(lines)


def scaled_runtime_table(
    title: str,
    rows: Dict[str, Dict[str, float]],
    baseline: str,
) -> str:
    """Table 3 style: per-tree time scaled by a baseline system."""
    systems = sorted({s for row in rows.values() for s in row})
    # show the baseline last, like the paper
    if baseline in systems:
        systems.remove(baseline)
        systems.append(baseline)
    lines = [title, "-" * len(title)]
    lines.append(
        f"{'dataset':<18}" + "".join(f"{s:>16}" for s in systems)
    )
    for dataset, row in rows.items():
        base = row.get(baseline)
        cells = []
        for system in systems:
            value = row.get(system)
            if value is None or base is None or base == 0:
                cells.append(f"{'-':>16}")
            else:
                cells.append(f"{value / base:>15.1f}x")
        lines.append(f"{dataset:<18}" + "".join(cells))
    return "\n".join(lines)


def convergence_series(
    title: str, evals_by_system: Dict[str, Sequence]
) -> str:
    """Figure 11/12 style: metric vs cumulative simulated seconds."""
    lines = [title, "-" * len(title)]
    for system, evals in evals_by_system.items():
        if not evals:
            continue
        samples = list(evals)
        stride = max(len(samples) // 8, 1)
        picked = samples[::stride]
        if picked[-1] is not samples[-1]:
            picked.append(samples[-1])
        series = "  ".join(
            f"({e.elapsed_seconds:7.2f}s, {e.metric_value:.4f})"
            for e in picked
        )
        lines.append(f"{system:<14} {samples[0].metric_name}: {series}")
    return "\n".join(lines)


def simple_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Generic aligned table used by the appendix benches."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(cells) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    lines = [title, "-" * len(title), fmt(header)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
