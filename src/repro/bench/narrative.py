"""Human-readable run summaries.

Turns a :class:`~repro.systems.base.DistTrainResult` into the compact
narrative report the examples and CLI print: per-tree cost, computation
phase breakdown (Section 3.2.4 vocabulary), traffic by kind, memory
split, and the convergence tail.
"""

from __future__ import annotations

from typing import List

from ..systems.base import DistTrainResult


def _human_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024 or unit == "GB":
            return f"{value:.2f} {unit}"
        value /= 1024
    return f"{value:.2f} GB"


def run_summary(result: DistTrainResult, title: str = "run") -> str:
    """Multi-line narrative summary of one distributed training run."""
    lines: List[str] = [title, "=" * len(title)]
    num_trees = max(len(result.tree_reports), 1)
    lines.append(
        f"trees: {len(result.tree_reports)}  |  per tree: "
        f"comp {result.mean_comp_seconds() * 1e3:.1f} ms, "
        f"comm {result.mean_comm_seconds() * 1e3:.1f} ms "
        f"(+/- {result.std_tree_seconds() * 1e3:.1f} ms)"
    )

    # computation phase breakdown, averaged over trees
    phases: dict = {}
    for report in result.tree_reports:
        for phase, seconds in report.phase_seconds.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
    if phases:
        total = sum(phases.values()) or 1.0
        parts = ", ".join(
            f"{phase} {seconds / num_trees * 1e3:.1f} ms "
            f"({seconds / total:.0%})"
            for phase, seconds in sorted(phases.items(),
                                         key=lambda kv: -kv[1])
        )
        lines.append(f"computation phases: {parts}")

    # traffic by kind
    if result.comm.bytes_by_kind:
        parts = ", ".join(
            f"{kind} {_human_bytes(nbytes / num_trees)}/tree"
            for kind, nbytes in sorted(result.comm.bytes_by_kind.items(),
                                       key=lambda kv: -kv[1])
        )
        lines.append(f"traffic: {parts}")

    lines.append(
        f"peak worker memory: data {_human_bytes(result.memory.data_bytes)}"
        f", histograms {_human_bytes(result.memory.histogram_bytes)}"
    )

    if result.evals:
        first, last = result.evals[0], result.evals[-1]
        lines.append(
            f"convergence: {first.metric_name} "
            f"{first.metric_value:.4f} -> {last.metric_value:.4f} "
            f"in {last.elapsed_seconds:.2f} simulated seconds"
        )
    return "\n".join(lines)
