"""Run-report persistence and pretty-printing (``repro ledger``).

A run report is the JSON-serializable record of one distributed
training run: the per-kind wire ledger (including the ``migrate:``,
``retry:``, ``recovery:`` and ``codec:`` dimensions), the per-phase
compute breakdown, peak memory, and — for adaptive sessions — the full
migration and decision trail.  ``repro train --report-out`` saves one;
``repro ledger`` renders it; ``repro advise --adaptive --report``
recalibrates the cost model against it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List

import numpy as np

SCHEMA = "repro-run-report/v1"

#: schema tag of serving-scenario reports (``repro scenarios``)
SCENARIO_SCHEMA = "scenario-report/v1"

#: schema tag of deployment decision logs (``repro deploy``)
DEPLOY_SCHEMA = "deploy-report/v1"

#: prefixes that carve the ledger into reporting dimensions, in display
#: order; kinds matching none of these are base training traffic
DIMENSION_PREFIXES = ("migrate:", "retry:", "recovery:")


def run_report(result, system: str = "", dataset: str = "",
               codec: str = "", backend: str = "") -> dict:
    """The JSON-ready report of one :class:`DistTrainResult`."""
    comm = result.comm
    phases: Dict[str, float] = {}
    for report in result.tree_reports:
        for phase, seconds in report.phase_seconds.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
    decisions: List[dict] = []
    for decision in result.decisions:
        if hasattr(decision, "payload"):
            decisions.append(decision.payload())
        else:
            decisions.append(dataclasses.asdict(decision))
    return {
        "schema": SCHEMA,
        "system": system,
        "dataset": dataset,
        "codec": codec,
        "backend": backend,
        "num_trees": len(result.tree_reports),
        "plan_history": list(result.plan_history),
        "total_modeled_seconds": result.total_modeled_seconds(),
        "comp_seconds": sum(r.comp_seconds for r in result.tree_reports),
        "comm_seconds": sum(r.comm_seconds for r in result.tree_reports),
        "phase_seconds": phases,
        "comm": {
            "total_bytes": comm.total_bytes,
            "total_seconds": comm.total_seconds,
            "bytes_by_kind": dict(comm.bytes_by_kind),
            "seconds_by_kind": dict(comm.seconds_by_kind),
            "codec_savings_by_kind": comm.codec_savings_by_kind(),
        },
        "memory": {
            "data_bytes": result.memory.data_bytes,
            "histogram_bytes": result.memory.histogram_bytes,
        },
        "migrations": [dataclasses.asdict(m) for m in result.migrations],
        "decisions": decisions,
        "tree_seconds": [r.total_seconds for r in result.tree_reports],
    }


def save_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path} is not a run report (schema {schema!r}, "
            f"expected {SCHEMA!r})"
        )
    return report


def percentile_summary(values) -> Dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample, in seconds.

    The one shared definition of a latency percentile: ``batcher``'s
    :class:`LatencyStats`, the per-tenant scenario tables and the deploy
    reports all call this, so "p99" means the same thing everywhere
    (``np.percentile`` linear interpolation, zeros for empty samples).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return {"p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
                "mean_s": 0.0, "max_s": 0.0}
    p50, p95, p99 = np.percentile(values, [50.0, 95.0, 99.0])
    return {
        "p50_s": float(p50),
        "p95_s": float(p95),
        "p99_s": float(p99),
        "mean_s": float(values.mean()),
        "max_s": float(values.max()),
    }


def report_bytes(report: dict) -> bytes:
    """The canonical byte encoding of any report dict.

    Sorted keys, two-space indent, trailing newline — the exact bytes
    the save functions write and the determinism conformance tests
    compare, so "byte-identical reports" means what it says.
    """
    return (json.dumps(report, indent=2, sort_keys=True) + "\n").encode()


def scenario_report_bytes(report: dict) -> bytes:
    """The canonical byte encoding of a scenario report."""
    return report_bytes(report)


def save_scenario_report(report: dict, path: str) -> None:
    if report.get("schema") != SCENARIO_SCHEMA:
        raise ValueError(
            f"not a scenario report (schema {report.get('schema')!r}, "
            f"expected {SCENARIO_SCHEMA!r})"
        )
    with open(path, "wb") as fh:
        fh.write(scenario_report_bytes(report))


def load_scenario_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != SCENARIO_SCHEMA:
        raise ValueError(
            f"{path} is not a scenario report (schema {schema!r}, "
            f"expected {SCENARIO_SCHEMA!r})"
        )
    return report


def format_scenario_report(report: dict) -> str:
    """Human-readable rendering of a ``scenario-report/v1``."""
    lines: List[str] = []
    totals = report["totals"]
    lines.append(f"scenario report — {report['scenario']} "
                 f"(seed {report['seed']})")
    if report.get("description"):
        lines.append(f"  {report['description']}")
    lines.append(
        f"  arrivals: {totals['arrivals']:,}   served: "
        f"{totals['served']:,}   dropped: {totals['dropped']:,} "
        f"({totals['drop_rate']:.1%})   batches: {totals['batches']:,}"
    )
    lines.append(
        f"  latency: p50 {totals['p50_s'] * 1e3:.2f} ms   "
        f"p95 {totals['p95_s'] * 1e3:.2f} ms   "
        f"p99 {totals['p99_s'] * 1e3:.2f} ms   "
        f"max {totals['max_s'] * 1e3:.2f} ms"
    )
    lines.append(
        f"  throughput: {totals['throughput_rps']:,.0f} req/s over "
        f"{totals['makespan_s']:.3f} s   SLO violations: "
        f"{totals['slo_violations']:,} "
        f"({totals['slo_violation_rate']:.1%})"
    )
    lines.append("")
    lines.append(f"  {'tenant':<12} {'pri':>3} {'arrivals':>8} "
                 f"{'drop%':>6} {'p50 ms':>8} {'p99 ms':>8} "
                 f"{'SLO ms':>7} {'viol%':>6}")
    for name, t in sorted(report["tenants"].items()):
        lines.append(
            f"  {name:<12} {t['priority']:>3} {t['arrivals']:>8,} "
            f"{t['drop_rate']:>6.1%} {t['p50_s'] * 1e3:>8.2f} "
            f"{t['p99_s'] * 1e3:>8.2f} {t['slo_s'] * 1e3:>7.1f} "
            f"{t['slo_violation_rate']:>6.1%}"
        )
    cache = report.get("cache")
    if cache is not None:
        lines.append("")
        lines.append(
            f"  cache: {cache['hit_rate']:.1%} hit rate "
            f"({cache['hits']:,} hits / {cache['misses']:,} misses), "
            f"{cache['evictions']:,} evictions, "
            f"{cache['invalidations']} invalidations"
        )
    wire = report.get("wire") or {}
    if wire:
        lines.append("")
        lines.append(
            f"  wire: deploy {_fmt_bytes(wire['deploy_bytes'])} "
            f"(raw {_fmt_bytes(wire['deploy_raw_bytes'])}), "
            f"retries {_fmt_bytes(wire['retry_bytes'])}"
        )
    lines.append(
        f"  versions served: {report['versions_served']}   invariants: "
        + ", ".join(f"{k}={'ok' if v else 'VIOLATED'}"
                    for k, v in sorted(report["invariants"].items()))
    )
    return "\n".join(lines)


def save_deploy_report(report: dict, path: str) -> None:
    if report.get("schema") != DEPLOY_SCHEMA:
        raise ValueError(
            f"not a deploy report (schema {report.get('schema')!r}, "
            f"expected {DEPLOY_SCHEMA!r})"
        )
    with open(path, "wb") as fh:
        fh.write(report_bytes(report))


def load_deploy_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != DEPLOY_SCHEMA:
        raise ValueError(
            f"{path} is not a deploy report (schema {schema!r}, "
            f"expected {DEPLOY_SCHEMA!r})"
        )
    return report


def _fmt_metric(value) -> str:
    return "n/a" if value is None else f"{value:.4f}"


def format_deploy_report(report: dict) -> str:
    """Human-readable rendering of a ``deploy-report/v1``."""
    lines: List[str] = []
    versions = report["versions"]
    lines.append(
        f"deploy report — {report['scenario']} (seed {report['seed']}, "
        f"{report['canary_model']} canary, "
        f"{'shadow' if report['mode'] == 'shadow' else 'serve'} mode)"
    )
    lines.append(
        f"  verdict: {report['verdict']}   incumbent v"
        f"{versions['incumbent']}   canary v{versions['canary']}"
        + (f"   retrained v{versions['retrained']}"
           if versions.get("retrained") is not None else "")
    )
    lines.append("")
    lines.append("  decision log")
    for d in report["decisions"]:
        lines.append(
            f"    t={d['at_s']:8.4f}s  batch {d['batch_seq']:>5}  "
            f"{d['kind']:<12} v{d['version']}  "
            f"{_fmt_bytes(d['wire_bytes']):>10}  {d['reason']}"
        )
    lines.append("")
    lines.append("  drift monitor (rolling window)")
    for version, m in sorted(report["monitor"].items(),
                             key=lambda kv: int(kv[0])):
        lines.append(
            f"    v{version}: {m['labels']:>6,} labels  "
            f"logloss {_fmt_metric(m['logloss'])}  "
            f"auc {_fmt_metric(m['auc'])}"
        )
    split = report["split"]
    lines.append("")
    lines.append(
        f"  split: target {split['target_fraction']:.1%}   observed "
        f"{split['observed_fraction']:.1%} ({split['canary_batches']} "
        f"canary of {split['window_batches']} batches in window)"
    )
    serving = report["serving"]
    lines.append(
        f"  serving: {serving['arrivals']:,} arrivals   "
        f"{serving['served']:,} served   {serving['dropped']:,} dropped"
        f"   p50 {serving['p50_s'] * 1e3:.2f} ms   "
        f"p99 {serving['p99_s'] * 1e3:.2f} ms over "
        f"{serving['makespan_s']:.3f} s"
    )
    wire = report["wire"]
    deploy_kinds = sorted(k for k in wire["bytes_by_kind"]
                          if k.startswith("deploy:"))
    parts = [f"{kind} {_fmt_bytes(wire['bytes_by_kind'][kind])}"
             for kind in deploy_kinds]
    lines.append(
        f"  wire: {'   '.join(parts)}   retries "
        f"{_fmt_bytes(wire['retry_bytes'])}"
    )
    lines.append(
        "  invariants: "
        + ", ".join(f"{k}={'ok' if v else 'VIOLATED'}"
                    for k, v in sorted(report["invariants"].items()))
    )
    return "\n".join(lines)


def _fmt_bytes(nbytes: float) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return (f"{value:,.0f} {unit}" if unit == "B"
                    else f"{value:,.1f} {unit}")
        value /= 1024.0
    return f"{value:,.1f} GiB"


def _dimension_of(kind: str) -> str:
    for prefix in DIMENSION_PREFIXES:
        if kind.startswith(prefix):
            return prefix
    return "base"


def format_report(report: dict) -> str:
    """Human-readable rendering of a run report."""
    lines: List[str] = []
    head = report.get("system") or "/".join(report.get("plan_history", []))
    title = f"run report — {head}" if head else "run report"
    if report.get("dataset"):
        title += f" on {report['dataset']}"
    lines.append(title)
    lines.append(
        f"  trees: {report['num_trees']}"
        f"   plans: {' -> '.join(report['plan_history']) or '?'}"
    )
    extras = [f"{key}={report[key]}" for key in ("codec", "backend")
              if report.get(key)]
    if extras:
        lines.append(f"  {'   '.join(extras)}")
    lines.append(
        f"  modeled time: {report['total_modeled_seconds']:.4f} s"
        f"  (compute {report['comp_seconds']:.4f} s"
        f" + network {report['comm_seconds']:.4f} s"
        + (
            f" + migration "
            f"{sum(m['seconds'] for m in report['migrations']):.4f} s"
            if report.get("migrations") else ""
        )
        + ")"
    )

    phases = report.get("phase_seconds") or {}
    if phases:
        lines.append("")
        lines.append("compute phases")
        for phase, seconds in sorted(phases.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(f"  {phase:<12} {seconds:10.4f} s")

    comm = report["comm"]
    bytes_by_kind = comm.get("bytes_by_kind") or {}
    seconds_by_kind = comm.get("seconds_by_kind") or {}
    groups: Dict[str, List[str]] = {}
    for kind in bytes_by_kind:
        groups.setdefault(_dimension_of(kind), []).append(kind)
    lines.append("")
    lines.append(
        f"wire ledger — {_fmt_bytes(comm['total_bytes'])} in "
        f"{comm['total_seconds']:.4f} s"
    )
    for dimension in ("base",) + DIMENSION_PREFIXES:
        kinds = groups.get(dimension)
        if not kinds:
            continue
        label = "training" if dimension == "base" \
            else dimension.rstrip(":")
        subtotal = sum(bytes_by_kind[k] for k in kinds)
        lines.append(f"  [{label}] {_fmt_bytes(subtotal)}")
        for kind in sorted(kinds, key=lambda k: -bytes_by_kind[k]):
            lines.append(
                f"    {kind:<28} {_fmt_bytes(bytes_by_kind[kind]):>12}"
                f"  {seconds_by_kind.get(kind, 0.0):10.4f} s"
            )
    savings = comm.get("codec_savings_by_kind") or {}
    if savings:
        total_saved = sum(savings.values())
        lines.append(f"  [codec] {_fmt_bytes(total_saved)} saved")
        for kind in sorted(savings, key=lambda k: -savings[k]):
            lines.append(
                f"    {kind:<28} {_fmt_bytes(savings[kind]):>12}"
            )

    memory = report.get("memory") or {}
    if memory:
        lines.append("")
        lines.append(
            "peak memory per worker: "
            f"data {_fmt_bytes(memory.get('data_bytes', 0))}, "
            f"histograms {_fmt_bytes(memory.get('histogram_bytes', 0))}"
        )

    migrations = report.get("migrations") or []
    if migrations:
        lines.append("")
        lines.append("migrations")
        for m in migrations:
            wire = (m["checkpoint_bytes"] + m["reshard_bytes"]
                    + m["label_bytes"] + m["decision_bytes"])
            extra = f", {m['crashes']} crash(es) replayed" \
                if m.get("crashes") else ""
            lines.append(
                f"  tree {m['tree_index']}: {m['source_plan']} -> "
                f"{m['target_plan']}  {_fmt_bytes(wire)} in "
                f"{m['seconds']:.4f} s{extra}"
            )

    decisions = report.get("decisions") or []
    if decisions:
        lines.append("")
        lines.append("adaptive decisions")
        for d in decisions:
            verdict = "migrate" if d.get("migrate") else "stay"
            lines.append(
                f"  tree {d.get('tree')}: {verdict} "
                f"[{d.get('source')} -> {d.get('target')}] "
                f"scan_rate={d.get('scan_rate'):,.0f}/s "
                f"comm_scale={d.get('comm_scale'):.3f}"
            )
            lines.append(
                f"    savings {d.get('projected_savings_seconds'):.4f} s"
                f" vs bill {d.get('migration_seconds'):.4f} s"
                f" over {d.get('trees_remaining')} trees"
                f" — {d.get('reason')}"
            )
    return "\n".join(lines)
