"""Command-line interface.

Five subcommands cover the everyday workflows:

* ``repro datagen`` — generate a synthetic or catalog dataset to libsvm;
* ``repro train``   — train any quadrant system on a libsvm file or a
  catalog surrogate, optionally saving the model;
* ``repro predict`` — score a libsvm file with a saved model (served
  through the compiled predictor, using the model's own objective
  metadata);
* ``repro serve-bench`` — replay a seeded request trace through the
  serving stack: compiled-vs-naive speedup, micro-batching latency
  percentiles, and a mid-traffic hot-swap with deploy accounting;
* ``repro advise``  — run the data-management advisor on a workload
  description (Section 6's open problem); ``--adaptive`` recalibrates
  the cost model against an observed run and prints the
  calibrated-vs-prior cost of every execution plan;
* ``repro ledger``  — pretty-print a saved run report (``repro train
  --report-out``): per-kind wire bytes and seconds including the
  ``migrate:``/``codec:`` dimensions, compute phases, and the adaptive
  decision trail;
* ``repro scenarios`` — list/run/report the seeded traffic scenarios
  (diurnal, flash-crowd, heavy-tail multi-tenant, hot-swap-under-fire):
  replays the full serving stack on the simulated clock and prints the
  per-tenant SLO/latency/drop table from the ``scenario-report/v1``;
* ``repro deploy``  — run a closed-loop canary deployment episode:
  incumbent rollout, canary slice (or shadow scoring), delayed-label
  drift monitoring, auto-rollback + retrain or promotion, with the
  full decision log printed from the ``deploy-report/v1``;
* ``repro doctor``  — report detected kernel backends (numba/LLVM
  versions) and run a per-backend bit-identity self-check; exits
  nonzero on a backend that imports but miscompares.

``repro train --plan auto-adapt`` trains through an adaptive
:class:`~repro.systems.executor.TrainingSession` that recalibrates
every ``--adapt-every`` trees and migrates execution plans mid-run when
the projected savings beat the migration bill.

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import ClusterConfig, NetworkModel, TrainConfig
from .core.serialize import load_ensemble, save_ensemble
from .data import catalog
from .data.io import read_libsvm, write_libsvm
from .data.synthetic import make_classification
from .systems import make_system
from .systems.advisor import recommend
from .systems.costmodel import WorkloadShape


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed GBDT data-management testbed "
                    "(VLDB 2019 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("datagen", help="generate a dataset to libsvm")
    gen.add_argument("output", help="output libsvm path")
    gen.add_argument("--catalog", help="catalog surrogate name "
                                       f"({', '.join(catalog.CATALOG)})")
    gen.add_argument("--instances", type=int, default=10_000)
    gen.add_argument("--features", type=int, default=100)
    gen.add_argument("--classes", type=int, default=2)
    gen.add_argument("--density", type=float, default=0.2)
    gen.add_argument("--scale", type=float, default=1.0,
                     help="instance-count multiplier for --catalog")
    gen.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="train a quadrant system")
    train.add_argument("--data", help="libsvm training file")
    train.add_argument("--catalog", help="or: catalog surrogate name")
    train.add_argument("--scale", type=float, default=1.0)
    train.add_argument("--system", default="vero",
                       help="qd1/xgboost, qd2/lightgbm, dimboost, "
                            "qd3/yggdrasil, qd4/vero, lightgbm-fp")
    train.add_argument("--plan",
                       help="execution-plan registry key (e.g. qd2-ps, "
                            "qd3-pure, qd4-blocked) or 'auto-adapt' for "
                            "mid-run re-planning; overrides --system")
    train.add_argument("--adapt-every", type=int, default=4,
                       help="with --plan auto-adapt: recalibrate the "
                            "cost model every N trees (default 4)")
    train.add_argument("--report-out",
                       help="save the run report (ledger, phases, "
                            "decisions) as JSON for `repro ledger`")
    train.add_argument("--trees", type=int, default=20)
    train.add_argument("--layers", type=int, default=6)
    train.add_argument("--candidates", type=int, default=20)
    train.add_argument("--learning-rate", type=float, default=0.3)
    train.add_argument("--classes", type=int, default=2)
    train.add_argument("--workers", type=int, default=8)
    train.add_argument("--bandwidth-gbps", type=float, default=1.0)
    train.add_argument("--valid-fraction", type=float, default=0.2)
    train.add_argument("--model-out", help="save the model as JSON")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--faults", default="", metavar="SEED:SPEC",
                       help="seeded fault schedule, e.g. "
                            "'42:crash=2,drop=0.05,timeout=0.01' "
                            "(keys: crash, drop, timeout, backoff, "
                            "timeout-s, retries)")
    train.add_argument("--codec", default="none",
                       choices=("none", "sparse", "delta", "f32", "f16"),
                       help="wire-format codec for inter-worker payloads "
                            "(sparse/delta are lossless; f32/f16 "
                            "quantize histograms)")
    train.add_argument("--backend", default="",
                       help="kernel backend for the histogram hot loops "
                            "(numpy/numba/pyloop/auto; default numpy — "
                            "all backends train bit-identical models)")

    predict = sub.add_parser("predict",
                             help="score a libsvm file with a model")
    predict.add_argument("model", help="model JSON from `repro train`")
    predict.add_argument("data", help="libsvm file to score")
    predict.add_argument("--output", help="write predictions here "
                                          "(default: stdout)")

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the serving stack on a synthetic trace",
    )
    serve.add_argument("--model", help="model JSON to serve (default: "
                                       "train one in-process)")
    serve.add_argument("--requests", type=int, default=2000)
    serve.add_argument("--rate", type=float, default=5000.0,
                       help="mean arrival rate (requests/s)")
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--max-delay-ms", type=float, default=2.0)
    serve.add_argument("--serve-workers", type=int, default=4)
    serve.add_argument("--shards", type=int, default=1,
                       help="tree-shard the fleet into S groups: each "
                            "replica row holds one worker per shard and "
                            "partial scores reduce over the wire "
                            "(scores stay bit-identical; workers round "
                            "up to a multiple of S)")
    serve.add_argument("--balancer", default="least-loaded",
                       choices=("round-robin", "least-loaded"))
    serve.add_argument("--trees", type=int, default=20,
                       help="in-process model size (ignored with --model)")
    serve.add_argument("--layers", type=int, default=8)
    serve.add_argument("--features", type=int, default=50)
    serve.add_argument("--instances", type=int, default=4000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--smoke", action="store_true",
                       help="tiny run for CI (seconds, not minutes)")
    serve.add_argument("--backend", default="",
                       help="kernel backend for the compiled predictor "
                            "(numpy/numba/pyloop/auto; default numpy)")
    serve.add_argument("--quantized", action="store_true",
                       help="also benchmark the uint8 bin-quantized "
                            "predictor (in-process models only)")

    advise = sub.add_parser(
        "advise", help="recommend a data-management quadrant"
    )
    advise.add_argument("--instances", type=int, required=True)
    advise.add_argument("--features", type=int, required=True)
    advise.add_argument("--classes", type=int, default=2)
    advise.add_argument("--nnz-per-instance", type=float, required=True)
    advise.add_argument("--workers", type=int, default=8)
    advise.add_argument("--layers", type=int, default=8)
    advise.add_argument("--candidates", type=int, default=20)
    advise.add_argument("--bandwidth-gbps", type=float, default=1.0)
    advise.add_argument("--memory-budget-gb", type=float)
    advise.add_argument("--crash-rate", type=float, default=0.0,
                        help="expected worker crashes per tree; adds an "
                             "expected-recovery-cost term to the ranking")
    advise.add_argument("--codec", default="none",
                        choices=("none", "sparse", "f32", "f16"),
                        help="price horizontal aggregation with this "
                             "codec's encoded bytes")
    advise.add_argument("--backend", default="",
                        help="price compute for this kernel backend "
                             "(numpy/numba/pyloop; default numpy)")
    advise.add_argument("--adaptive", action="store_true",
                        help="calibrate the cost model against observed "
                             "trees and print the calibrated-vs-prior "
                             "per-plan cost table")
    advise.add_argument("--report",
                        help="with --adaptive: calibrate against this "
                             "saved run report (`repro train "
                             "--report-out`; shape flags must match the "
                             "run) instead of an in-process probe")

    ledger = sub.add_parser(
        "ledger", help="pretty-print a saved run report"
    )
    ledger.add_argument("report",
                        help="run report JSON from `repro train "
                             "--report-out`")

    scenarios = sub.add_parser(
        "scenarios",
        help="list/run/report seeded traffic scenarios",
    )
    scen_sub = scenarios.add_subparsers(dest="scenario_command",
                                        required=True)
    scen_sub.add_parser("list", help="list the shipped scenarios")
    scen_run = scen_sub.add_parser(
        "run", help="replay scenarios through the serving stack"
    )
    scen_run.add_argument("names", nargs="*",
                          help="scenario names (default: all shipped)")
    scen_run.add_argument("--scale", type=float, default=1.0,
                          help="time-scale factor (shrinks the window, "
                               "keeps rates; e.g. 0.25 for a quick run)")
    scen_run.add_argument("--smoke", action="store_true",
                          help="tiny CI run: every scenario at "
                               "--scale 0.2, invariants enforced")
    scen_run.add_argument("--shards", type=int, default=0,
                          help="override every selected scenario to "
                               "serve tree-sharded with S shard groups "
                               "(workers round up to a multiple of S; "
                               "disables the prediction cache)")
    scen_run.add_argument("--report-out",
                          help="save the scenario report JSON here "
                               "(single scenario) or under this "
                               "directory (multiple)")
    scen_report = scen_sub.add_parser(
        "report", help="pretty-print a saved scenario report"
    )
    scen_report.add_argument("report",
                             help="scenario-report/v1 JSON from "
                                  "`repro scenarios run --report-out`")

    deploy = sub.add_parser(
        "deploy",
        help="run a closed-loop canary deployment episode",
    )
    deploy.add_argument("--scenario", default="canary-under-fire",
                        help="traffic scenario to deploy under "
                             "(default: canary-under-fire)")
    deploy.add_argument("--canary", choices=("healthy", "degraded"),
                        default="degraded",
                        help="candidate model: a half-size retrain "
                             "('healthy', should promote) or a "
                             "sign-flipped incumbent ('degraded', "
                             "must roll back)")
    deploy.add_argument("--fraction", type=float, default=0.25,
                        help="fraction of batches routed to the canary "
                             "slice (ignored with --shadow)")
    deploy.add_argument("--canary-workers", type=int, default=1,
                        help="workers in the canary slice")
    deploy.add_argument("--shadow", action="store_true",
                        help="shadow mode: the canary scores every "
                             "batch off the serving path; the "
                             "incumbent serves everything")
    deploy.add_argument("--scale", type=float, default=1.0,
                        help="time-scale factor for the scenario")
    deploy.add_argument("--smoke", action="store_true",
                        help="CI run: both canary models at "
                             "--scale 0.25; verdicts and invariants "
                             "enforced")
    deploy.add_argument("--report-out",
                        help="save the deploy-report/v1 JSON here")
    deploy.add_argument("--show", metavar="REPORT",
                        help="pretty-print a saved deploy report "
                             "instead of running an episode")

    doctor = sub.add_parser(
        "doctor",
        help="report kernel backends and self-check bit-identity",
    )
    doctor.add_argument("--skip-selfcheck", action="store_true",
                        help="only report detection, skip the "
                             "bit-identity battery")

    return parser


def _load_training_data(args):
    if bool(args.data) == bool(args.catalog):
        raise SystemExit("specify exactly one of --data or --catalog")
    if args.catalog:
        return catalog.load(args.catalog, scale=args.scale)
    task = "multiclass" if args.classes > 2 else "binary"
    return read_libsvm(args.data, task=task, num_classes=args.classes)


def cmd_datagen(args) -> int:
    if args.catalog:
        dataset = catalog.load(args.catalog, scale=args.scale)
    else:
        dataset = make_classification(
            args.instances, args.features, num_classes=args.classes,
            density=args.density, seed=args.seed,
        )
    write_libsvm(dataset, args.output)
    print(f"wrote {dataset.num_instances} x {dataset.num_features} "
          f"({dataset.features.nnz} nonzeros) to {args.output}")
    return 0


def cmd_train(args) -> int:
    dataset = _load_training_data(args)
    num_classes = max(args.classes, dataset.num_classes)
    multiclass = dataset.task == "multiclass"
    adaptive = args.plan == "auto-adapt"
    config = TrainConfig(
        num_trees=args.trees,
        num_layers=args.layers,
        num_candidates=args.candidates,
        learning_rate=args.learning_rate,
        objective="multiclass" if multiclass else "binary",
        num_classes=num_classes if multiclass else 2,
        plan="" if adaptive else (args.plan or ""),
        faults=args.faults,
        codec=args.codec,
        backend=args.backend,
        adapt=args.adapt_every if adaptive else 0,
    )
    cluster = ClusterConfig(
        num_workers=args.workers,
        network=NetworkModel(bandwidth_gbps=args.bandwidth_gbps),
    )
    train, valid = dataset.split(1.0 - args.valid_fraction,
                                 seed=args.seed)
    from .core.kernels import resolve_backend_name

    if adaptive:
        from .systems import make_adaptive_session

        session = make_adaptive_session(config, cluster, train,
                                        valid=valid)
        print(f"auto-adapt: starting with plan "
              f"{session.state.plan_key} (recalibrating every "
              f"{config.adapt} trees)")
        result = session.run()
        system = session.system
    else:
        system = make_system(config.plan or args.system, config, cluster)
        result = system.fit(train, valid=valid)
    last = result.evals[-1]
    print(f"system={system.name} quadrant={system.quadrant} "
          f"plan={system.plan.key} workers={args.workers} "
          f"backend={resolve_backend_name(config.backend)}")
    if len(result.plan_history) > 1:
        print(f"plan history: {' -> '.join(result.plan_history)} "
              f"({len(result.migrations)} migration(s), "
              f"total modeled time "
              f"{result.total_modeled_seconds():.2f}s)")
        for m in result.migrations:
            print(f"  tree {m.tree_index}: {m.source_plan} -> "
                  f"{m.target_plan}, {m.wire_bytes / 1e6:.2f}MB "
                  f"migrated in {m.seconds * 1e3:.1f}ms")
    for decision in result.decisions:
        verdict = "migrate" if decision.migrate else "stay"
        print(f"  adapt @ tree {decision.tree_index}: {verdict} — "
              f"{decision.reason}")
    print(f"final {last.metric_name}={last.metric_value:.4f} after "
          f"{len(result.ensemble)} trees "
          f"({last.elapsed_seconds:.2f}s simulated)")
    wire_mb = result.comm.total_bytes / len(result.ensemble) / 1e6
    print(f"per tree: comp={result.mean_comp_seconds() * 1e3:.1f}ms "
          f"comm={result.mean_comm_seconds() * 1e3:.1f}ms "
          f"wire={wire_mb:.2f}MB")
    savings = result.comm.codec_savings_by_kind()
    if savings:
        saved = sum(savings.values())
        ratio = (result.comm.total_bytes + saved) \
            / max(result.comm.total_bytes, 1)
        kinds = ", ".join(k.split(":", 1)[1] for k in sorted(savings))
        print(f"codec={args.codec}: saved {saved / 1e6:.2f}MB on the "
              f"wire ({ratio:.2f}x total reduction; {kinds})")
    print(f"peak worker memory: data="
          f"{result.memory.data_bytes / 1e6:.2f}MB histograms="
          f"{result.memory.histogram_bytes / 1e6:.2f}MB")
    injector = getattr(system, "injector", None)
    if injector is not None:
        counters = injector.counters
        fault_kinds = [
            (kind, nbytes)
            for kind, nbytes in sorted(result.comm.bytes_by_kind.items())
            if kind.startswith(("retry:", "recovery:"))
        ]
        fault_mb = sum(nbytes for _, nbytes in fault_kinds) / 1e6
        print(f"faults injected ({injector.plan.describe()}): "
              f"crashes={counters.crashes} drops={counters.drops} "
              f"timeouts={counters.timeouts}; "
              f"retry/recovery traffic={fault_mb:.2f}MB")
        for record in system.recovery_log:
            print(f"  recovered worker {record.worker} (tree "
                  f"{record.tree}, layer {record.layer}) via "
                  f"{record.policy}: "
                  f"{record.restore_bytes / 1e6:.2f}MB restored")
    if args.model_out:
        save_ensemble(result.ensemble, args.model_out,
                      objective=config.objective,
                      num_classes=config.num_classes)
        print(f"model saved to {args.model_out}")
    if args.report_out:
        from .ledger import run_report, save_report

        save_report(
            run_report(result, system=system.name,
                       dataset=args.catalog or args.data or "",
                       codec=args.codec, backend=config.backend),
            args.report_out,
        )
        print(f"run report saved to {args.report_out} "
              f"(view with `repro ledger {args.report_out}`)")
    return 0


def cmd_predict(args) -> int:
    from .core.loss import make_loss
    from .serve import compile_ensemble

    ensemble = load_ensemble(args.model)
    dataset = read_libsvm(args.data, task="regression")
    # the model file carries its own objective metadata; fall back on
    # the gradient dimension for pre-metadata model files
    objective = ensemble.objective or (
        "multiclass" if ensemble.gradient_dim > 1 else "binary"
    )
    num_classes = ensemble.num_classes or max(ensemble.gradient_dim, 2)
    loss = make_loss(objective, num_classes)
    scores = compile_ensemble(ensemble).raw_scores(dataset.csc())
    preds = loss.predict(scores)
    if preds.ndim == 1:
        lines = [f"{p:.6f}" for p in preds]
    else:
        lines = [
            " ".join(f"{p:.6f}" for p in row) for row in preds
        ]
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(lines)} predictions to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_serve_bench(args) -> int:
    import time as _time

    from .serve import (BatchPolicy, MicroBatcher, ModelRegistry,
                        ReplicaSet, synthetic_trace)

    if args.smoke:
        args.requests = min(args.requests, 200)
        args.instances = min(args.instances, 600)
        args.trees = min(args.trees, 5)
        args.layers = min(args.layers, 5)
        args.features = min(args.features, 20)
        args.serve_workers = min(args.serve_workers, 2)
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.serve_workers % args.shards:
        args.serve_workers = (args.serve_workers // args.shards
                              + 1) * args.shards

    registry = ModelRegistry()
    if args.model:
        entry = registry.publish_file(args.model)
        ensembles = {entry.version: load_ensemble(args.model)}
    else:
        config = TrainConfig(
            num_trees=args.trees, num_layers=args.layers,
            objective="binary", learning_rate=0.3,
        )
        dataset = make_classification(
            args.instances, args.features, seed=args.seed,
        )
        from .core.gbdt import GBDT

        first = GBDT(config).fit(dataset).ensemble
        entry = registry.publish(first, source="in-process v1")
        # the hot-swap candidate: same data, half the trees
        retrain = TrainConfig(
            num_trees=max(args.trees // 2, 1), num_layers=args.layers,
            objective="binary", learning_rate=0.3,
        )
        second = GBDT(retrain).fit(dataset).ensemble
        registry.publish(second, source="in-process v2")
        ensembles = {1: first, 2: second}
    compiled = entry.compiled
    if args.backend:
        from .serve import compile_ensemble as _compile

        source = ensembles.get(entry.version)
        if source is not None:
            compiled = _compile(source, backend=args.backend)
    print(f"serving {entry} from {args.serve_workers} workers "
          f"({args.balancer}, backend={compiled.backend.name})")

    trace = synthetic_trace(
        args.requests, max(compiled.num_features, 1), args.rate,
        seed=args.seed,
    )

    # compiled vs naive on the full trace, exactness checked
    naive_ensemble = ensembles.get(entry.version)
    if naive_ensemble is not None:
        csc = trace.csc()
        began = _time.perf_counter()
        naive = naive_ensemble.raw_scores(csc)
        naive_s = _time.perf_counter() - began
        began = _time.perf_counter()
        fast = compiled.raw_scores(trace.features)
        fast_s = _time.perf_counter() - began
        exact = bool((naive == fast).all())
        print(f"batch of {trace.num_requests}: naive={naive_s * 1e3:.1f}ms "
              f"compiled={fast_s * 1e3:.1f}ms "
              f"({naive_s / max(fast_s, 1e-12):.2f}x), exact={exact}")
        if args.quantized and not args.model:
            from .data.dataset import bin_dataset
            from .serve import quantize_ensemble

            # the same binning fit() used, so every split threshold
            # sits exactly on the quantizer's bin grid
            train_binned = bin_dataset(dataset, config.num_candidates)
            quant = quantize_ensemble(compiled, train_binned.cuts)
            binned_batch = quant.bin_batch(trace.features)
            began = _time.perf_counter()
            qscores = quant.raw_scores_binned(binned_batch)
            quant_s = _time.perf_counter() - began
            qexact = bool((naive == qscores).all())
            print(f"quantized (uint8 bins): {quant_s * 1e3:.1f}ms "
                  f"({fast_s / max(quant_s, 1e-12):.2f}x vs compiled), "
                  f"exact={qexact}")

    if args.shards > 1:
        from .serve import ShardedReplicaSet

        replicas = ShardedReplicaSet(
            registry, ClusterConfig(num_workers=args.serve_workers),
            num_shards=args.shards, balancer=args.balancer,
        )
        print(f"tree-sharded fleet: {args.shards} shard groups x "
              f"{replicas.num_rows} replica rows")
    else:
        replicas = ReplicaSet(
            registry, ClusterConfig(num_workers=args.serve_workers),
            balancer=args.balancer,
        )
    replicas.deploy()
    swaps = []
    if len(registry) > 1:
        swap_at = float(trace.arrivals[trace.num_requests // 2])
        swaps.append((swap_at, replicas.deployer(2)))
    batcher = MicroBatcher(replicas, BatchPolicy(
        max_batch_size=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
    ))
    report = batcher.run(trace, swaps=swaps)
    stats = report.latency_stats()
    print(f"served {stats.count} requests in {len(report.batches)} "
          f"batches: p50={stats.p50_s * 1e3:.2f}ms "
          f"p95={stats.p95_s * 1e3:.2f}ms p99={stats.p99_s * 1e3:.2f}ms "
          f"throughput={stats.throughput_rps:.0f}rps")
    if swaps:
        single = all(
            len({r.model_version for r in report.records
                 if r.batch_id == b.batch_id}) == 1
            for b in report.batches
        )
        print(f"hot-swap at t={swaps[0][0] * 1e3:.1f}ms: versions served "
              f"{report.versions_served()}, "
              f"single-version batches={single}")
    if args.shards > 1:
        import numpy as _np

        from .serve import reduce_shard_scores
        from .systems.costmodel import (price_serving_layouts,
                                        recommend_serving_layout)

        shards = registry.shards(entry.version, args.shards)
        chained = reduce_shard_scores(
            [shard.compiled for shard in shards], trace.features)
        direct = registry.get(entry.version).compiled.raw_scores(
            trace.features)
        exact = bool(_np.array_equal(chained, direct))
        print(f"sharded scores bit-identical to the full predictor: "
              f"{exact}")
        # same rollouts (v1 plus the hot-swap) priced replicated
        replicated = sum(registry.get(v).nbytes
                         for v in range(1, len(registry) + 1)) \
            * args.serve_workers
        print(f"deploy:shard traffic: {replicas.deploy_bytes} bytes "
              f"(replicated would ship {replicated} bytes); per-worker "
              f"model footprint {replicas.model_bytes_per_worker()} "
              f"of {entry.nbytes}")
        print(f"score reduction traffic: serve:partial="
              f"{replicas.partial_bytes} serve:reduce="
              f"{replicas.reduce_bytes} bytes over "
              f"{len(report.batches)} batches")
        network = NetworkModel()
        layouts = price_serving_layouts(
            entry.nbytes,
            {1: [entry.nbytes],
             args.shards: [s.nbytes for s in shards]},
            args.serve_workers, args.max_batch,
            shards[0].compiled.gradient_dim,
            network.bytes_per_second, network.latency_s,
        )
        pick = recommend_serving_layout(layouts)
        print(f"cost model recommends S={pick['num_shards']} "
              f"({pick['model_bytes_per_worker']} bytes/worker, "
              f"{pick['reduction_seconds_per_batch'] * 1e3:.2f}ms "
              f"reduction/batch)")
    else:
        print(f"deploy:model traffic: {replicas.deploy_bytes} bytes "
              f"({len(registry)} deploys x {args.serve_workers} workers)")
    return 0


def cmd_advise(args) -> int:
    shape = WorkloadShape(
        num_instances=args.instances,
        num_features=args.features,
        num_workers=args.workers,
        num_layers=args.layers,
        num_candidates=args.candidates,
        num_classes=args.classes if args.classes > 2 else 1,
    )
    budget = (args.memory_budget_gb * 2**30
              if args.memory_budget_gb else None)
    rec = recommend(
        shape, args.nnz_per_instance,
        network=NetworkModel(bandwidth_gbps=args.bandwidth_gbps),
        memory_budget_bytes=budget,
        crash_rate=args.crash_rate,
        codec=args.codec,
        backend=args.backend,
    )
    print(f"recommendation: {rec.best.quadrant} "
          f"({rec.best.description})")
    print(f"plan: {rec.plan_key} — run it with "
          f"`repro train --plan {rec.plan_key}`")
    for reason in rec.reasons:
        print(f"  - {reason}")
    print("\nper-quadrant estimates (per tree):")
    for est in rec.ranking:
        print(f"  {est.quadrant}: comp={est.comp_seconds * 1e3:9.1f}ms "
              f"comm={est.comm_seconds * 1e3:9.1f}ms "
              f"hist-mem={est.histogram_memory_bytes / 2**30:7.2f}GiB")
    print("\nprojected histogram-aggregation byte reduction by codec:")
    for codec, ratio in sorted(rec.codec_projections.items()):
        lossless = codec == "sparse"
        tag = "lossless" if lossless else "lossy, opt-in"
        print(f"  {codec}: {ratio:6.2f}x ({tag})")
    if args.adaptive:
        _advise_adaptive(args, shape, rec)
    return 0


def _advise_adaptive(args, shape: WorkloadShape, rec) -> None:
    """The ``advise --adaptive`` table: prior vs calibrated plan costs.

    Constants come from a saved run report when ``--report`` names one,
    else from a small in-process probe of the prior-recommended plan
    (the scan rate and wire scale are ratios, so they transfer from the
    capped probe shape to the full workload shape).
    """
    from types import SimpleNamespace

    from .systems.advisor import calibrate_constants, price_plans
    from .systems.costmodel import migration_seconds
    from .systems.plans import PLANS, get_plan

    network = NetworkModel(bandwidth_gbps=args.bandwidth_gbps)
    if args.report:
        from .ledger import load_report

        report = load_report(args.report)
        if not report["plan_history"] or not report["num_trees"]:
            raise SystemExit(f"{args.report} records no trained trees")
        plan = get_plan(report["plan_history"][-1])
        mean_comp = report["comp_seconds"] / report["num_trees"]
        mean_comm = report["comm_seconds"] / report["num_trees"]
        observed = [
            SimpleNamespace(comp_seconds=mean_comp,
                            comm_seconds=mean_comm)
        ] * report["num_trees"]
        constants = calibrate_constants(
            shape, args.nnz_per_instance, plan, observed, network,
            codec=args.codec)
        source = (f"{report['num_trees']} trees of {plan.key} from "
                  f"{args.report}")
    else:
        from .data.dataset import bin_dataset
        from .data.synthetic import make_classification

        plan = get_plan(rec.plan_key)
        probe_n = min(args.instances, 4000)
        density = min(args.nnz_per_instance / args.features, 1.0)
        probe = bin_dataset(
            make_classification(
                probe_n, args.features,
                num_classes=max(args.classes, 2), density=density,
                seed=0,
            ),
            args.candidates,
        )
        probe_shape = WorkloadShape(
            num_instances=probe.num_instances,
            num_features=probe.num_features,
            num_workers=args.workers,
            num_layers=args.layers,
            num_candidates=args.candidates,
            num_classes=shape.num_classes,
        )
        probe_nnz = probe.binned.nnz / probe.num_instances
        config = TrainConfig(
            num_trees=2, num_layers=args.layers,
            num_candidates=args.candidates,
            objective="multiclass" if args.classes > 2 else "binary",
            num_classes=args.classes if args.classes > 2 else 2,
            codec="" if args.codec == "none" else args.codec,
            backend=args.backend,
        )
        cluster = ClusterConfig(num_workers=args.workers,
                                network=network)
        result = plan.build(config, cluster).fit(probe)
        constants = calibrate_constants(
            probe_shape, probe_nnz, plan, result.tree_reports, network,
            codec=args.codec)
        source = (f"in-process probe: {len(result.tree_reports)} trees "
                  f"of {plan.key} on {probe_n} instances")
    print(f"\ncalibration ({source}):")
    print(f"  scan rate: {constants.scan_rate:,.0f} accesses/s "
          f"(prior {constants.prior_scan_rate:,.0f})")
    print(f"  wire scale: {constants.comm_scale:.3f}x the modeled "
          f"network time")
    prior = price_plans(shape, args.nnz_per_instance, network,
                        codec=args.codec)
    calibrated = price_plans(shape, args.nnz_per_instance, network,
                             constants, codec=args.codec)
    print("\nper-plan cost, prior vs calibrated (per tree):")
    print(f"  {'plan':<12} {'prior':>12} {'calibrated':>12} "
          f"{'migration bill':>15}")
    for key in sorted(calibrated,
                      key=lambda k: calibrated[k].total_seconds):
        bill = migration_seconds(
            shape, args.nnz_per_instance, plan.partition,
            PLANS[key].partition, network.bytes_per_second,
            latency_s=network.latency_s,
        ) if key != plan.key else 0.0
        marker = "  <- calibrating plan" if key == plan.key else ""
        print(f"  {key:<12} {prior[key].total_seconds:11.4f}s "
              f"{calibrated[key].total_seconds:11.4f}s "
              f"{bill:14.4f}s{marker}")


def cmd_ledger(args) -> int:
    from .ledger import format_report, load_report

    print(format_report(load_report(args.report)))
    return 0


def cmd_scenarios(args) -> int:
    """``repro scenarios list|run|report``."""
    import os

    from .ledger import (format_scenario_report, load_scenario_report,
                         save_scenario_report)
    from .serve.scenarios import SCENARIOS, ScenarioRunner, get_scenario

    if args.scenario_command == "list":
        for name in SCENARIOS:
            scenario = SCENARIOS[name]()
            print(f"{name:<22} seed={scenario.seed:<6} "
                  f"tenants={len(scenario.tenants)} "
                  f"window={scenario.duration_s:.2f}s")
            if scenario.description:
                print(f"    {scenario.description}")
        return 0

    if args.scenario_command == "report":
        print(format_scenario_report(load_scenario_report(args.report)))
        return 0

    names = args.names or list(SCENARIOS)
    scale = 0.2 if args.smoke else args.scale
    if args.shards < 0:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    failed = False
    for position, name in enumerate(names):
        scenario = get_scenario(name, scale=scale)
        if args.shards > 1:
            import dataclasses

            workers = scenario.num_workers
            if workers % args.shards:
                workers = (workers // args.shards + 1) * args.shards
            # the cache holds full-model scores; sharded rows only ever
            # compute partials, so the override drops it
            scenario = dataclasses.replace(
                scenario, num_shards=args.shards, num_workers=workers,
                cache_capacity=0)
        report = ScenarioRunner(scenario).run()
        print(format_scenario_report(report))
        if position + 1 < len(names):
            print()
        if not all(report["invariants"].values()):
            failed = True
        if args.report_out:
            if len(names) == 1:
                path = args.report_out
            else:
                os.makedirs(args.report_out, exist_ok=True)
                path = os.path.join(args.report_out, f"{name}.json")
            save_scenario_report(report, path)
    if failed:
        print("FAIL: a scenario violated a ledger invariant "
              "(see above)")
        return 1
    return 0


def cmd_deploy(args) -> int:
    """``repro deploy`` — one closed-loop canary deployment episode."""
    from .ledger import (format_deploy_report, load_deploy_report,
                         save_deploy_report)
    from .serve.deploy import CanaryPolicy, DeployController
    from .serve.scenarios import get_scenario

    if args.show:
        print(format_deploy_report(load_deploy_report(args.show)))
        return 0

    if args.smoke:
        # CI mode: the sign-flipped canary must be condemned, the
        # retrain must be cleared, and every ledger invariant must hold
        # under both verdicts.
        expected = {"degraded": "rollback", "healthy": "promote"}
        failed = False
        for model, want in expected.items():
            scenario = get_scenario(args.scenario, scale=0.25)
            report = DeployController(scenario,
                                      canary_model=model).run()
            print(format_deploy_report(report))
            print()
            if report["verdict"] != want:
                print(f"FAIL: {model} canary ended "
                      f"{report['verdict']!r}, expected {want!r}")
                failed = True
            if not all(report["invariants"].values()):
                print(f"FAIL: {model} episode violated a ledger "
                      "invariant (see above)")
                failed = True
        return 1 if failed else 0

    scenario = get_scenario(args.scenario, scale=args.scale)
    policy = CanaryPolicy(fraction=args.fraction,
                          canary_workers=args.canary_workers,
                          shadow=args.shadow)
    report = DeployController(scenario, canary=policy,
                              canary_model=args.canary).run()
    print(format_deploy_report(report))
    if args.report_out:
        save_deploy_report(report, args.report_out)
    if not all(report["invariants"].values()):
        print("FAIL: the episode violated a ledger invariant "
              "(see above)")
        return 1
    return 0


def cmd_doctor(args) -> int:
    """Backend detection report plus the bit-identity battery.

    Exit status: 0 when every available backend is bit-identical to the
    numpy baseline, 1 when a backend imports but miscompares (or its
    battery crashes) — the failure mode worse than a missing install.
    """
    from .core.kernels import DISABLE_ENV, detect_backends
    from .selfcheck import check_backend

    print("kernel backends:")
    infos = detect_backends()
    for info in infos:
        print(f"  {info.describe()}")
    disabled = [i.name for i in infos
                if not i.available and DISABLE_ENV in i.version]
    if disabled:
        print(f"  ({DISABLE_ENV} is masking: {', '.join(disabled)})")
    if args.skip_selfcheck:
        return 0
    print("bit-identity self-check (vs numpy baseline):")
    failed = False
    for info in infos:
        if not info.available:
            print(f"  {info.name}: skipped (not available)")
            continue
        result = check_backend(info.name)
        print(f"  {result.describe()}")
        failed = failed or not result.passed
    if failed:
        print("FAIL: a backend imports but does not reproduce the "
              "numpy baseline bit-for-bit — do not train with it")
        return 1
    print("all available backends are bit-identical")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datagen": cmd_datagen,
        "train": cmd_train,
        "predict": cmd_predict,
        "serve-bench": cmd_serve_bench,
        "advise": cmd_advise,
        "ledger": cmd_ledger,
        "scenarios": cmd_scenarios,
        "deploy": cmd_deploy,
        "doctor": cmd_doctor,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
