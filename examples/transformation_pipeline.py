"""Walk through the horizontal-to-vertical transformation (Section 4.2.1).

Shows each of the five steps on a sparse dataset and the effect of the two
optimizations (pair compression, blockify) on the repartition cost —
Appendix A / Table 5 in miniature — then verifies the two-phase index of
Figure 9 resolves instances correctly.

Usage::

    python examples/transformation_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, load_catalog
from repro.cluster.transform import horizontal_to_vertical


def main() -> None:
    dataset = load_catalog("rcv1", scale=0.4)
    cluster = ClusterConfig(num_workers=8)
    print(f"dataset: {dataset}")
    print(f"cluster: {cluster.num_workers} workers, "
          f"{cluster.network.bandwidth_gbps:g} Gbps")

    result = horizontal_to_vertical(dataset, cluster, num_candidates=20)
    report = result.report

    print("\nstep costs (simulated + measured):")
    print(f"  load data          : {report.load_data_seconds:8.3f}s")
    print(f"  get splits         : {report.get_splits_seconds:8.3f}s "
          f"(sketch traffic {report.sketch_bytes / 1e3:.1f} KB)")
    for encoding in ("naive", "compressed", "blockified"):
        print(f"  repartition [{encoding:<11}]: "
              f"{report.repartition_seconds[encoding]:8.3f}s  "
              f"{report.repartition_bytes[encoding] / 1e6:6.2f} MB")
    print(f"  broadcast labels   : "
          f"{report.broadcast_label_seconds:8.3f}s "
          f"({report.broadcast_label_bytes / 1e6:.2f} MB)")
    print(f"\npair compression: {report.compression_ratio:.1f}x "
          f"(12-byte raw pairs -> encoded feature id + bin index)")

    print("\ncolumn groups (greedy load balancing, Section 4.2.3):")
    loads = [shard.binned.nnz for shard in result.shards]
    for worker, (group, load) in enumerate(zip(result.groups, loads)):
        print(f"  worker {worker}: {group.size:5d} features, "
              f"{load:8d} key-value pairs")
    imbalance = max(loads) / (sum(loads) / len(loads))
    print(f"  imbalance (max/mean): {imbalance:.3f}")

    print("\ntwo-phase index check (Figure 9):")
    blocked = result.blocked_groups[0]
    shard = result.shards[0]
    for instance in (0, dataset.num_instances // 2,
                     dataset.num_instances - 1):
        cols, bins = blocked.lookup(instance)
        ref_cols, _ = shard.binned.row(instance)
        ok = np.array_equal(np.sort(cols), np.sort(ref_cols))
        print(f"  instance {instance:6d}: {cols.size:3d} pairs in "
              f"{blocked.num_blocks} blocks -> "
              f"{'consistent' if ok else 'MISMATCH'}")


if __name__ == "__main__":
    main()
