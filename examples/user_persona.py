"""Industrial scenario: multi-class user-persona modelling (Section 6).

The paper's production workloads at Tencent classify users into age
bands / taste tags — large, sparse, multi-class problems on a 10 Gbps
cluster.  This example trains the scaled "age" surrogate (9 age classes)
with Vero and an XGBoost-style baseline under the production network
profile, and prints the convergence race of Figure 12.

Usage::

    python examples/user_persona.py
"""

from __future__ import annotations

from repro import (ClusterConfig, NetworkModel, TrainConfig, load_catalog,
                   make_system)
from repro.data.dataset import bin_dataset


def main() -> None:
    dataset = load_catalog("age", scale=0.35)
    train, valid = dataset.split(train_fraction=0.85, seed=0)
    print(f"dataset: {dataset}  (scaled surrogate of the Tencent Age "
          f"workload: 48M x 330K x 9 in the paper)")

    config = TrainConfig(
        num_trees=8,
        num_layers=6,
        num_candidates=20,
        learning_rate=0.3,
        objective="multiclass",
        num_classes=dataset.num_classes,
    )
    # Section 6 environment: 10 Gbps production Ethernet.
    cluster = ClusterConfig(num_workers=8,
                            network=NetworkModel.production())
    binned = bin_dataset(train, config.num_candidates)

    results = {}
    for name in ("xgboost", "vero"):
        system = make_system(name, config, cluster)
        results[name] = system.fit(binned, valid=valid)

    print(f"\n{'system':<10} {'time/tree':>12} {'final acc':>10} "
          f"{'wire/tree':>12}")
    for name, result in results.items():
        wire_mb = result.comm.total_bytes / len(result.ensemble) / 1e6
        print(f"{name:<10} {result.mean_tree_seconds() * 1e3:>10.1f}ms "
              f"{result.evals[-1].metric_value:>10.4f} "
              f"{wire_mb:>10.2f}MB")

    print("\nconvergence race (accuracy vs simulated seconds):")
    for name, result in results.items():
        series = "  ".join(
            f"({e.elapsed_seconds:6.2f}s {e.metric_value:.3f})"
            for e in result.evals[::2]
        )
        print(f"  {name:<10} {series}")

    speedup = (results["xgboost"].mean_tree_seconds()
               / results["vero"].mean_tree_seconds())
    print(f"\nVero per-tree speedup over the XGBoost-style baseline: "
          f"{speedup:.1f}x (the paper reports 8.3x on the full-size Age "
          f"dataset)")


if __name__ == "__main__":
    main()
