"""Tour of the data-management advisor (the paper's future work).

Section 6 leaves open how to pick a data-management strategy from the
dataset's shape (N, D, C) and the environment (bandwidth, workers,
memory).  `repro.recommend` answers with the Section 3 cost model; this
example walks the paper's own scenarios through it and then cross-checks
one recommendation against the simulator.

Usage::

    python examples/advisor_tour.py
"""

from __future__ import annotations

from repro import (ClusterConfig, NetworkModel, TrainConfig,
                   WorkloadShape, make_classification, make_system,
                   recommend)
from repro.data.dataset import bin_dataset

SCENARIOS = {
    # name: (shape, avg nnz/instance, network, memory budget GiB)
    "SUSY (low-dim, many instances)": (
        WorkloadShape(5_000_000, 18, 5, 8, 20), 18,
        NetworkModel.laboratory(), None,
    ),
    "RCV1 (high-dim sparse)": (
        WorkloadShape(697_000, 47_000, 5, 8, 20), 74,
        NetworkModel.laboratory(), None,
    ),
    "Age (multi-class industrial, 30 GiB/worker)": (
        WorkloadShape(48_000_000, 330_000, 8, 8, 20, 9), 50,
        NetworkModel.production(), 30.0,
    ),
}


def main() -> None:
    for name, (shape, nnz, network, budget_gb) in SCENARIOS.items():
        budget = budget_gb * 2**30 if budget_gb else None
        rec = recommend(shape, nnz, network=network,
                        memory_budget_bytes=budget)
        print(f"\n{name}")
        print(f"  N={shape.num_instances:,} D={shape.num_features:,} "
              f"C={shape.num_classes} W={shape.num_workers} "
              f"{network.bandwidth_gbps:g} Gbps")
        print(f"  -> {rec.best.quadrant} ({rec.best.description})")
        for reason in rec.reasons:
            print(f"     {reason}")

    # Cross-check the high-dimensional recommendation on the simulator.
    print("\ncross-check on the simulator (scaled RCV1 shape):")
    dataset = make_classification(5_000, 4_700, density=0.015, seed=17,
                                  num_informative=40,
                                  informative_density=0.25)
    cfg = TrainConfig(num_trees=3, num_layers=6, num_candidates=20)
    cluster = ClusterConfig(num_workers=5)
    binned = bin_dataset(dataset, cfg.num_candidates)
    measured = {}
    for quadrant, system in (("QD2", "qd2"), ("QD4", "vero")):
        result = make_system(system, cfg, cluster).fit(binned)
        measured[quadrant] = result.mean_tree_seconds()
        print(f"  {quadrant}: {measured[quadrant] * 1e3:7.1f} ms/tree "
              f"(simulated)")
    rec = recommend(
        WorkloadShape(5_000, 4_700, 5, 6, 20),
        dataset.features.nnz / dataset.num_instances,
    )
    winner = min(measured, key=measured.get)
    verdict = "agrees" if rec.best.quadrant == winner else "disagrees"
    print(f"  advisor says {rec.best.quadrant}; simulator says {winner} "
          f"-> {verdict}")


if __name__ == "__main__":
    main()
