"""Quickstart: train distributed GBDT with Vero on a surrogate dataset.

Runs the full pipeline a user of the library would: generate (or load) a
dataset, split it, train Vero on a simulated 8-worker cluster, and inspect
quality, per-tree cost breakdown, and traffic — the quantities the paper's
evaluation revolves around.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, TrainConfig, Vero, load_catalog


def main() -> None:
    # The "rcv1" surrogate: high-dimensional sparse binary classification,
    # the regime where the paper shows vertical partitioning shines.
    dataset = load_catalog("rcv1", scale=0.5)
    train, valid = dataset.split(train_fraction=0.8, seed=0)
    print(f"dataset: {dataset}")

    config = TrainConfig(
        num_trees=10,
        num_layers=6,
        num_candidates=20,
        learning_rate=0.3,
    )
    cluster = ClusterConfig(num_workers=8)

    vero = Vero(config, cluster)
    # fit_from_raw runs the horizontal-to-vertical transformation
    # (Section 4.2.1) before training and reports its cost.
    result, transform = vero.fit_from_raw(train, valid=valid)

    print("\ntransformation (Section 4.2.1):")
    report = transform.report
    print(f"  compression ratio : {report.compression_ratio:.1f}x")
    print(f"  repartition       : "
          f"{report.repartition_seconds['blockified'] * 1e3:.1f} ms "
          f"({report.repartition_bytes['blockified'] / 1e6:.2f} MB on "
          f"the wire)")
    print(f"  label broadcast   : "
          f"{report.broadcast_label_seconds * 1e3:.1f} ms")

    print("\nconvergence (valid AUC vs simulated time):")
    for record in result.evals:
        print(f"  tree {record.tree_index:2d}  "
              f"t={record.elapsed_seconds:6.2f}s  "
              f"auc={record.metric_value:.4f}")

    print("\nper-tree cost:")
    print(f"  computation   : {result.mean_comp_seconds() * 1e3:8.1f} ms")
    print(f"  communication : {result.mean_comm_seconds() * 1e3:8.1f} ms")
    print(f"  traffic       : "
          f"{result.comm.total_bytes / len(result.ensemble) / 1e6:8.3f} "
          f"MB/tree")
    print(f"  peak worker memory: "
          f"data {result.memory.data_bytes / 1e6:.2f} MB, "
          f"histograms {result.memory.histogram_bytes / 1e6:.2f} MB")

    # Predictions on new data use the raw (un-binned) feature values.
    preds = vero.predict(result.ensemble, valid)
    print(f"\nfirst five validation probabilities: "
          f"{[round(float(p), 3) for p in preds[:5]]}")


if __name__ == "__main__":
    main()
