"""Compare the four data-management quadrants on one workload.

Reproduces the methodology of Section 5.2 in miniature: the same binned
dataset is trained by QD1 (horizontal+column, XGBoost style), QD2
(horizontal+row, LightGBM style), QD3 (vertical+column, Yggdrasil style)
and QD4 (vertical+row, Vero), and the per-tree computation/communication
breakdown plus the memory split are printed side by side.  Finish with the
Table 1 recommendation for the workload's regime.

Usage::

    python examples/quadrant_comparison.py [--high-dim | --low-dim |
                                            --multiclass]
"""

from __future__ import annotations

import argparse

from repro import ClusterConfig, TrainConfig, make_classification
from repro.bench.harness import run_point
from repro.data.dataset import bin_dataset

WORKLOADS = {
    # name: (N, D, C, density, description)
    "low-dim": (60_000, 50, 2, 1.0,
                "many instances, few features (SUSY/Higgs regime)"),
    "high-dim": (8_000, 8_000, 2, 0.01,
                 "high-dimensional sparse (RCV1/Synthesis regime)"),
    "multiclass": (10_000, 1_500, 8, 0.02,
                   "multi-classification (RCV1-multi regime)"),
}

QUADRANTS = [
    ("qd1", "QD1 horiz+col"),
    ("qd2", "QD2 horiz+row"),
    ("qd3", "QD3 vert+col"),
    ("qd4", "QD4 vert+row"),
]


def recommend(num_instances: int, num_features: int,
              num_classes: int) -> str:
    """Table 1 advice for a workload's regime."""
    if num_features >= 1000 or num_classes > 2:
        return ("QD4 (Vero): vertical partitioning avoids huge histogram "
                "aggregation; row-store keeps construction cheap.")
    if num_instances >= num_features * 100:
        return ("QD2 (LightGBM style): low dimensionality keeps "
                "histograms small, so horizontal aggregation is cheap "
                "and instances spread across workers.")
    return "QD4 or QD2 — the regimes are close; measure both."


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group()
    for name in WORKLOADS:
        group.add_argument(f"--{name}", dest="workload",
                           action="store_const", const=name)
    parser.set_defaults(workload="high-dim")
    args = parser.parse_args()

    n, d, c, density, description = WORKLOADS[args.workload]
    print(f"workload: {args.workload} — {description}")
    print(f"  N={n:,}  D={d:,}  C={c}  density={density}")

    objective = "multiclass" if c > 2 else "binary"
    dataset = make_classification(n, d, num_classes=c, density=density,
                                  seed=7, name=args.workload)
    config = TrainConfig(num_trees=3, num_layers=6, num_candidates=20,
                         objective=objective, num_classes=c)
    cluster = ClusterConfig(num_workers=8)
    binned = bin_dataset(dataset, config.num_candidates)

    print(f"\n{'quadrant':<16} {'comp/tree':>12} {'comm/tree':>12} "
          f"{'total':>12} {'wire/tree':>12} {'hist mem':>12}")
    rows = []
    for system_name, label in QUADRANTS:
        point = run_point(system_name, binned, config, cluster,
                          num_trees=config.num_trees, label=label)
        rows.append((label, point))
        print(f"{label:<16} {point.comp_seconds * 1e3:>10.1f}ms "
              f"{point.comm_seconds * 1e3:>10.1f}ms "
              f"{point.total_seconds * 1e3:>10.1f}ms "
              f"{point.comm_bytes_per_tree / 1e6:>10.2f}MB "
              f"{point.histogram_bytes / 1e6:>10.2f}MB")

    winner = min(rows, key=lambda r: r[1].total_seconds)[0]
    print(f"\nfastest on this workload: {winner}")
    print(f"Table 1 recommendation  : {recommend(n, d, c)}")


if __name__ == "__main__":
    main()
