"""Legacy setup shim: environments without the `wheel` package cannot build
PEP 660 editable wheels, so `pip install -e . --no-build-isolation
--no-use-pep517` uses this file instead."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
