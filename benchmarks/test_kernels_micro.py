"""Micro-benchmarks of the four histogram construction kernels.

These use pytest-benchmark's real measurement machinery (multiple rounds)
on a fixed workload, giving the per-kernel throughput numbers behind the
Section 3.2 storage-pattern analysis: the row-store kernel sets the
baseline, the layer-wise column kernel pays for scanning retired rows,
the hybrid kernel pays search/filter overheads, and the column-wise
kernel is fast to *read* but pays at index update time (benchmarked
separately)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import (ColumnwiseIndex,
                                  build_colstore_columnwise,
                                  build_colstore_hybrid,
                                  build_colstore_layer, build_rowstore)
from repro.data.dataset import bin_dataset
from repro.data.synthetic import make_classification

NUM_BINS = 20


@pytest.fixture(scope="module")
def kernel_workload():
    dataset = make_classification(20_000, 500, density=0.1, seed=99)
    binned = bin_dataset(dataset, NUM_BINS)
    rng = np.random.default_rng(0)
    grad = rng.standard_normal((20_000, 1))
    hess = rng.random((20_000, 1))
    node_of = rng.integers(0, 2, size=20_000).astype(np.int64)
    rows = np.flatnonzero(node_of == 1)
    return binned, grad, hess, node_of, rows


def test_kernel_rowstore(benchmark, kernel_workload):
    binned, grad, hess, _, rows = kernel_workload
    hist, touched = benchmark(
        build_rowstore, binned.binned, rows, grad, hess, NUM_BINS,
    )
    assert touched > 0


def test_kernel_colstore_layer(benchmark, kernel_workload):
    binned, grad, hess, node_of, _ = kernel_workload
    csc = binned.csc()
    hists, touched = benchmark(
        build_colstore_layer, csc, node_of, 2, grad, hess, NUM_BINS,
    )
    assert touched == csc.nnz


def test_kernel_colstore_hybrid(benchmark, kernel_workload):
    binned, grad, hess, node_of, rows = kernel_workload
    csc = binned.csc()
    hist, scanned, searched = benchmark(
        build_colstore_hybrid, csc, rows, node_of, 1, grad, hess,
        NUM_BINS,
    )
    assert scanned + searched > 0


def test_kernel_colstore_columnwise_read(benchmark, kernel_workload):
    binned, grad, hess, node_of, _ = kernel_workload
    index = ColumnwiseIndex(binned.csc())
    index.update_after_split(node_of, [0, 1])
    hist, touched = benchmark(
        build_colstore_columnwise, index, 1, grad, hess, NUM_BINS,
    )
    assert touched > 0


def test_kernel_columnwise_index_update(benchmark, kernel_workload):
    """The hidden cost of the Yggdrasil index: reordering every column."""
    binned, _, _, node_of, _ = kernel_workload
    csc = binned.csc()

    def update():
        index = ColumnwiseIndex(csc)
        return index.update_after_split(node_of, [0, 1])

    moved = benchmark(update)
    assert moved == csc.nnz


def test_kernel_subtraction(benchmark, kernel_workload):
    """Deriving a sibling histogram is orders of magnitude cheaper than
    building it (the Section 2.1.2 speedup)."""
    binned, grad, hess, node_of, rows = kernel_workload
    parent, _ = build_rowstore(binned.binned,
                               np.arange(binned.num_instances), grad,
                               hess, NUM_BINS)
    child, _ = build_rowstore(binned.binned, rows, grad, hess, NUM_BINS)
    sibling = benchmark(parent.subtract, child)
    assert sibling.grad.shape == parent.grad.shape
