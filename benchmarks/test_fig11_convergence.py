"""Figure 11: end-to-end convergence (validation metric vs time).

All systems are trained with identical hyper-parameters on the same
binned data, so they reach near-identical model quality per tree; what
differs is the simulated time axis.  The paper's observation: every
system converges to comparable accuracy, and the per-tree time ordering
of Table 3 determines who gets there first.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, load_catalog
from repro.bench.report import convergence_series
from repro.systems import make_system

TREES = 8
SCALE = 0.2

CASES = {
    # dataset: (workers, systems)
    "susy": (5, ("xgboost", "lightgbm", "dimboost", "vero")),
    "epsilon": (5, ("xgboost", "lightgbm", "dimboost", "vero")),
    "rcv1": (5, ("xgboost", "lightgbm", "dimboost", "vero")),
    "rcv1-multi": (8, ("xgboost", "lightgbm", "vero")),
}


@pytest.mark.parametrize("dataset_name", list(CASES))
def test_fig11_convergence(benchmark, binned_cache, record_table,
                           dataset_name):
    workers, systems = CASES[dataset_name]
    dataset = load_catalog(dataset_name, scale=SCALE)
    train, valid = dataset.split(0.8, seed=0)
    multiclass = dataset.num_classes > 2
    cfg = TrainConfig(
        num_trees=TREES, num_layers=6, num_candidates=20,
        learning_rate=0.3,
        objective="multiclass" if multiclass else "binary",
        num_classes=dataset.num_classes,
    )
    binned = binned_cache.get(train, cfg.num_candidates)

    def run():
        out = {}
        for system_name in systems:
            system = make_system(system_name, cfg,
                                 ClusterConfig(num_workers=workers))
            out[system_name] = system.fit(binned, valid=valid)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        f"fig11_{dataset_name}",
        convergence_series(
            f"Figure 11 ({dataset_name}) — validation metric vs "
            f"simulated seconds, {workers} workers",
            {name: r.evals for name, r in results.items()},
        ),
    )
    finals = {name: r.evals[-1].metric_value
              for name, r in results.items()}
    # same algorithm, same data: near-identical final quality everywhere
    assert max(finals.values()) - min(finals.values()) < 0.03, finals
    # the model improves over its own first tree
    for name, result in results.items():
        assert result.evals[-1].metric_value > \
            result.evals[0].metric_value - 0.01, name
    # time-to-quality ordering matches Table 3 on the HS/MC datasets
    if dataset_name in ("rcv1", "rcv1-multi"):
        times = {name: r.evals[-1].elapsed_seconds
                 for name, r in results.items()}
        assert times["vero"] < times["xgboost"]


#: maximum final-AUC delta the lossy f16 histogram codec may cost
F16_AUC_EPSILON = 1e-3
#: trees for the codec case: enough boosting rounds that both runs
#: converge and the quantization noise washes out of the final metric
F16_TREES = 32


def test_fig11_f16_codec_auc_within_epsilon(binned_cache):
    """The opt-in f16 histogram codec (DimBoost-style low precision)
    quarters aggregation bytes at a bounded convergence cost: the final
    validation AUC on the Figure 11 sparse workload stays within
    ``F16_AUC_EPSILON`` of the dense run."""
    dataset = load_catalog("rcv1", scale=SCALE)
    train, valid = dataset.split(0.8, seed=0)
    binned = binned_cache.get(train, 20)
    results = {}
    for codec in ("none", "f16"):
        cfg = TrainConfig(num_trees=F16_TREES, num_layers=6,
                          num_candidates=20, learning_rate=0.3,
                          codec=codec)
        system = make_system("qd2", cfg, ClusterConfig(num_workers=5))
        results[codec] = system.fit(binned, valid=valid)
    final = {codec: r.evals[-1] for codec, r in results.items()}
    assert final["none"].metric_name == "auc"
    assert abs(final["none"].metric_value
               - final["f16"].metric_value) <= F16_AUC_EPSILON, final
    # the quality trade bought real wire savings
    assert results["f16"].comm.total_bytes < \
        results["none"].comm.total_bytes / 2
    # lossy codecs are strictly opt-in: the default config ships dense
    assert TrainConfig().codec == ""
