"""Shared benchmark fixtures.

Every benchmark prints the paper-style table it regenerates AND writes it
to ``bench_results/<name>.txt`` so EXPERIMENTS.md can quote actual runs.
Benchmarks double as regression tests of the reproduction: each asserts
the *shape* the paper reports (who wins, how costs scale), not absolute
numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir, request):
    """Callable: print a table and persist it for EXPERIMENTS.md."""

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n", file=sys.stderr)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return _record


@pytest.fixture(scope="session")
def binned_cache():
    """Session-wide exact-binning cache shared by all benchmarks."""
    from repro.bench.harness import BinnedCache

    return BinnedCache()
