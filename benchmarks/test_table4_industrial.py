"""Table 4 / Figure 12: the industrial workloads (Section 6).

Scaled surrogates of the Tencent datasets run under the production
network profile (10 Gbps).  Paper's shape: Vero beats XGBoost by large
factors on Age (multi-class, 8.3x) and Taste (4.5x); on Gender — extreme
instance count, low-ish dimensionality, fast network — DimBoost
(horizontal) wins over Vero, which still beats XGBoost by ~5.5x.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, NetworkModel, TrainConfig, load_catalog
from repro.bench.harness import run_point
from repro.bench.report import convergence_series, simple_table

TREES = 2
SCALE = 0.3

CASES = {
    "gender": ("xgboost", "dimboost", "vero"),
    "age": ("xgboost", "vero"),
    "taste": ("xgboost", "vero"),
}


@pytest.fixture(scope="module")
def industrial_rows(binned_cache):
    cluster = ClusterConfig(num_workers=8,
                            network=NetworkModel.production())
    rows = {}
    for name, systems in CASES.items():
        dataset = load_catalog(name, scale=SCALE)
        multiclass = dataset.num_classes > 2
        cfg = TrainConfig(
            num_trees=TREES, num_layers=8, num_candidates=20,
            objective="multiclass" if multiclass else "binary",
            num_classes=dataset.num_classes,
        )
        binned = binned_cache.get(dataset, cfg.num_candidates)
        rows[name] = {
            system: run_point(system, binned, cfg, cluster,
                              num_trees=TREES, label=name)
            for system in systems
        }
    return rows


def test_table4_industrial_runtimes(benchmark, industrial_rows,
                                    record_table):
    rows = benchmark.pedantic(lambda: industrial_rows, rounds=1,
                              iterations=1)
    table_rows = []
    for name, points in rows.items():
        for system, point in points.items():
            table_rows.append([
                name, system,
                f"{point.total_seconds * 1e3:.1f}ms",
                f"{point.comp_seconds * 1e3:.1f}ms",
                f"{point.comm_seconds * 1e3:.1f}ms",
                f"{point.comm_bytes_per_tree / 1e6:.2f}MB",
            ])
    record_table(
        "table4",
        simple_table(
            "Table 4 — industrial surrogates, per-tree time "
            "(10 Gbps production profile, W=8, "
            f"{SCALE:.0%} scale)",
            ["dataset", "system", "time/tree", "comp", "comm", "wire"],
            table_rows,
        ),
    )
    # Vero decisively beats XGBoost on the multi-class workloads
    assert rows["age"]["vero"].total_seconds * 2 < \
        rows["age"]["xgboost"].total_seconds
    assert rows["taste"]["vero"].total_seconds < \
        rows["taste"]["xgboost"].total_seconds
    # Gender: Vero still beats XGBoost (paper: 5.5x)
    assert rows["gender"]["vero"].total_seconds < \
        rows["gender"]["xgboost"].total_seconds
