"""Table 6 (Appendix B): scalability of Vero with cluster size.

Two subsets of the Synthesis surrogate — one instance-heavy
("Synthesis-N" in the paper), one feature-heavy ("Synthesis-D") — are
trained with 2, 4, 6 and 8 workers.  Paper's shape: more machines help,
but speedup is sublinear, and the instance-heavy subset scales worse
because node splitting (O(N) on every worker) does not parallelize.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, make_classification
from repro.bench.harness import run_point
from repro.bench.report import simple_table

WORKERS = (2, 4, 6, 8)
TREES = 2


@pytest.fixture(scope="module")
def scalability_rows(binned_cache):
    cfg = TrainConfig(num_trees=TREES, num_layers=7, num_candidates=20)
    subsets = {
        # instance-heavy: many rows, modest dimensionality
        "synthesis-N": make_classification(
            60_000, 2_000, density=0.01, seed=71, name="syn-n",
            num_informative=40, informative_density=0.25,
        ),
        # feature-heavy: fewer rows, high dimensionality
        "synthesis-D": make_classification(
            10_000, 12_000, density=0.005, seed=72, name="syn-d",
            num_informative=40, informative_density=0.25,
        ),
    }
    rows = {}
    for name, dataset in subsets.items():
        binned = binned_cache.get(dataset, cfg.num_candidates)
        rows[name] = {
            w: run_point("vero", binned, cfg, ClusterConfig(w),
                         num_trees=TREES, label=f"W={w}")
            for w in WORKERS
        }
    return rows


def test_table6_scalability(benchmark, scalability_rows, record_table):
    rows = benchmark.pedantic(lambda: scalability_rows, rounds=1,
                              iterations=1)
    table_rows = []
    for name, by_w in rows.items():
        base = by_w[WORKERS[0]].total_seconds
        for w in WORKERS:
            point = by_w[w]
            table_rows.append([
                name, f"W={w}",
                f"{point.total_seconds * 1e3:.1f}ms",
                f"{base / point.total_seconds:.2f}x",
            ])
    record_table(
        "table6",
        simple_table(
            "Table 6 — Vero scalability (run time per tree and speedup "
            "over W=2)",
            ["dataset", "workers", "time/tree", "speedup"],
            table_rows,
        ),
    )
    for name, by_w in rows.items():
        times = [by_w[w].total_seconds for w in WORKERS]
        # more workers help overall...
        assert times[-1] < times[0], name
        # ...but speedup is sublinear (paper: 2.6x / 1.6x at 4x machines)
        speedup = times[0] / times[-1]
        assert speedup < WORKERS[-1] / WORKERS[0] * 1.5, name
    # the feature-heavy subset scales at least as well as the
    # instance-heavy one (node splitting dominates when N is large)
    speedup_n = (rows["synthesis-N"][2].total_seconds
                 / rows["synthesis-N"][8].total_seconds)
    speedup_d = (rows["synthesis-D"][2].total_seconds
                 / rows["synthesis-D"][8].total_seconds)
    assert speedup_d > 0.6 * speedup_n
