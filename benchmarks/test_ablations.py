"""Ablation benches for the design choices DESIGN.md calls out:

* histogram subtraction on/off (Section 2.1.2) — identical models, less
  computation;
* column grouping strategy (Section 4.2.3) — greedy LPT vs round-robin vs
  hash: balance of per-worker key-value pairs;
* bitmap vs 4-byte-id placement encoding (Section 4.2.2) — 32x traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig, make_classification, \
    make_system
from repro.bench.report import simple_table

CLUSTER = ClusterConfig(num_workers=8)


@pytest.fixture(scope="module")
def ablation_binned(binned_cache):
    dataset = make_classification(
        20_000, 4_000, density=0.01, seed=81, name="ablation",
        num_informative=40, informative_density=0.25,
    )
    return binned_cache.get(dataset, 20)


def test_ablation_subtraction(benchmark, ablation_binned, record_table):
    """Subtraction halves+ the entries scanned below the root; the model
    is bit-identical with and without it."""
    cfg = TrainConfig(num_trees=2, num_layers=7, num_candidates=20)

    def run():
        out = {}
        for enabled in (True, False):
            system = make_system("vero", cfg, CLUSTER)
            system.use_subtraction = enabled
            out[enabled] = system.fit(ablation_binned, num_trees=2)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    on, off = results[True], results[False]
    record_table(
        "ablation_subtraction",
        simple_table(
            "Ablation — histogram subtraction (Vero, N=20K, D=4K, L=7)",
            ["variant", "comp/tree", "comm/tree"],
            [
                ["subtraction on", f"{on.mean_comp_seconds() * 1e3:.1f}ms",
                 f"{on.mean_comm_seconds() * 1e3:.1f}ms"],
                ["subtraction off",
                 f"{off.mean_comp_seconds() * 1e3:.1f}ms",
                 f"{off.mean_comm_seconds() * 1e3:.1f}ms"],
            ],
        ),
    )
    # identical models
    for t_on, t_off in zip(on.ensemble.trees, off.ensemble.trees):
        assert set(t_on.nodes) == set(t_off.nodes)
    # identical traffic (subtraction is computation-only)
    assert on.comm.total_bytes == off.comm.total_bytes
    # strictly less computation with subtraction
    assert on.mean_comp_seconds() < off.mean_comp_seconds()


def test_ablation_grouping(benchmark, ablation_binned, record_table):
    """Greedy grouping balances key-value pairs across workers at least
    as well as round-robin and hash (the straggler-avoidance argument of
    Section 4.2.3)."""
    cfg = TrainConfig(num_trees=1, num_layers=5, num_candidates=20)

    def run():
        out = {}
        for strategy in ("greedy", "round-robin", "hash"):
            system = make_system("vero", cfg, CLUSTER)
            system.grouping = strategy
            system._binned = ablation_binned
            system._setup(ablation_binned)
            loads = np.array(
                [shard.binned.nnz for shard in system.shards],
                dtype=np.float64,
            )
            out[strategy] = float(loads.max() / loads.mean())
        return out

    imbalance = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_grouping",
        simple_table(
            "Ablation — column grouping strategy (max/mean key-value "
            "pairs per worker; 1.0 = perfect balance)",
            ["strategy", "imbalance"],
            [[s, f"{v:.4f}"] for s, v in imbalance.items()],
        ),
    )
    assert imbalance["greedy"] <= imbalance["round-robin"] + 1e-9
    assert imbalance["greedy"] <= imbalance["hash"] + 1e-9
    assert imbalance["greedy"] < 1.05  # near-perfect balance


def test_ablation_bitmap_encoding(benchmark, ablation_binned,
                                  record_table):
    """Placement bitmaps vs shipping 4-byte instance ids: the recorded
    bitmap traffic, scaled by 32, is what the naive encoding would cost
    (Section 4.2.2's 32x claim)."""
    cfg = TrainConfig(num_trees=2, num_layers=7, num_candidates=20)

    def run():
        system = make_system("vero", cfg, CLUSTER)
        return system.fit(ablation_binned, num_trees=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    bitmap_bytes = result.comm.bytes_by_kind["placement-bitmap"]
    naive_bytes = bitmap_bytes * 32
    total_with_naive = (result.comm.total_bytes - bitmap_bytes
                        + naive_bytes)
    record_table(
        "ablation_bitmap",
        simple_table(
            "Ablation — placement encoding (Vero, 2 trees)",
            ["encoding", "placement bytes", "total bytes"],
            [
                ["bitmap (1 bit/instance)", f"{bitmap_bytes:,}",
                 f"{result.comm.total_bytes:,}"],
                ["instance ids (4 B/instance)", f"{naive_bytes:,}",
                 f"{total_with_naive:,}"],
            ],
        ),
    )
    assert bitmap_bytes > 0
    # with bitmaps, placement traffic dominates but stays small; the
    # naive encoding would multiply total vertical traffic several-fold
    assert total_with_naive > 5 * result.comm.total_bytes
