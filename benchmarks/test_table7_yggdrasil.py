"""Table 7 (Appendix C): Yggdrasil vs our QD3 vs Vero on low-dimensional
datasets.

Yggdrasil is QD3 with a pure column-wise node-to-instance index (paying a
full per-column reorder at every layer); the paper's own QD3 uses the
hybrid instance-to-node / binary-search plan and beats it; Vero's
row-store beats both.  Expected ordering of per-tree time:
``vero <= qd3-hybrid <= yggdrasil``.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, load_catalog
from repro.bench.harness import run_point
from repro.bench.report import simple_table

TREES = 4
SCALE = 0.15
DATASETS = ("epsilon", "susy", "higgs")


@pytest.fixture(scope="module")
def table7_rows(binned_cache):
    cfg = TrainConfig(num_trees=TREES, num_layers=8, num_candidates=20)
    cluster = ClusterConfig(num_workers=5)
    rows = {}
    for name in DATASETS:
        dataset = load_catalog(name, scale=SCALE)
        binned = binned_cache.get(dataset, cfg.num_candidates)
        rows[name] = {
            "yggdrasil": run_point("qd3", binned, cfg, cluster,
                                   num_trees=TREES, label=name,
                                   index_mode="columnwise"),
            "qd3-hybrid": run_point("qd3", binned, cfg, cluster,
                                    num_trees=TREES, label=name,
                                    index_mode="hybrid"),
            "vero": run_point("vero", binned, cfg, cluster,
                              num_trees=TREES, label=name),
        }
    return rows


def test_table7_yggdrasil_comparison(benchmark, table7_rows,
                                     record_table):
    rows = benchmark.pedantic(lambda: table7_rows, rounds=1,
                              iterations=1)
    table_rows = []
    for name, points in rows.items():
        for system, point in points.items():
            table_rows.append([
                name, system,
                f"{point.total_seconds * 1e3:.1f}ms",
                f"{point.comp_seconds * 1e3:.1f}ms",
            ])
    record_table(
        "table7",
        simple_table(
            "Table 7 — Yggdrasil (columnwise index) vs QD3 (hybrid) vs "
            f"Vero, per-tree time ({SCALE:.0%} scale, W=5)",
            ["dataset", "system", "time/tree", "comp/tree"],
            table_rows,
        ),
    )
    # The paper's margins on these low-dimensional datasets come partly
    # from JVM-implementation details (Yggdrasil 137s vs QD3 24s vs Vero
    # 5s on Epsilon); our same-code-base kernels reproduce the *ordering*
    # with narrower margins, so the assertions are directional.
    for name, points in rows.items():
        # the hybrid index plan never loses meaningfully to the pure
        # column-wise index ...
        assert points["qd3-hybrid"].comp_seconds < \
            1.3 * points["yggdrasil"].comp_seconds, name
        # ... and row-store stays within a small constant of (or beats)
        # the hybrid even on the tiniest-D dataset (SUSY, D=18), where
        # per-node kernel overheads dominate at laptop scale
        assert points["vero"].comp_seconds < \
            2.0 * points["qd3-hybrid"].comp_seconds, name
    # on the highest-dimensional of the three (Epsilon), row-store wins
    # outright
    eps = rows["epsilon"]
    assert eps["vero"].comp_seconds < eps["qd3-hybrid"].comp_seconds
    assert eps["vero"].comp_seconds < eps["yggdrasil"].comp_seconds
    # Vero beats pure Yggdrasil on the majority of datasets
    wins = sum(
        points["vero"].comp_seconds < points["yggdrasil"].comp_seconds
        for points in rows.values()
    )
    assert wins >= 2
