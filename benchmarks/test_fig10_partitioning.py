"""Figure 10(a)-(d): partitioning-scheme comparison, QD2 vs QD4.

Each panel sweeps one workload dimension and reports the per-tree
computation / communication breakdown of horizontal+row (QD2) and
vertical+row (QD4).  Workloads are geometrically scaled versions of the
paper's (Section 5.2); the asserted properties are the paper's observed
shapes.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, make_classification
from repro.bench.harness import run_point
from repro.bench.report import figure10_table

CLUSTER = ClusterConfig(num_workers=8)
TREES = 2


def sweep_points(system, workloads, config_of, binned_cache):
    points = []
    for label, dataset, config in workloads:
        binned = binned_cache.get(dataset, config.num_candidates)
        points.append(
            run_point(system, binned, config, CLUSTER, num_trees=TREES,
                      label=label)
        )
    return points


@pytest.fixture(scope="module")
def fig10a_workloads():
    # Low-dim regime scaled so the paper's N-crossover (vertical placement
    # traffic overtaking horizontal histogram traffic) is reachable at
    # laptop N: small histograms (D=20, q=10, L=5) and N up to 160K.
    cfg = TrainConfig(num_trees=TREES, num_layers=5, num_candidates=10)
    return [
        (f"N={n // 1000}K",
         make_classification(n, 20, density=0.5, seed=61, name=f"a{n}"),
         cfg)
        for n in (40_000, 80_000, 120_000, 160_000)
    ]


def test_fig10a_impact_of_instance_number(benchmark, fig10a_workloads,
                                          binned_cache, record_table):
    """Fig 10(a): low-dim. QD2 comm is constant in N; QD4 comm grows
    proportionally with N (placement broadcast) and eventually exceeds
    QD2's, making horizontal the right choice."""
    def run():
        return {
            system: sweep_points(system, fig10a_workloads, None,
                                 binned_cache)
            for system in ("qd2", "qd4")
        }

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10a",
        figure10_table(
            "Figure 10(a) — impact of instance number "
            "(D=20, C=2, L=5, q=10, W=8)", points,
        ),
    )
    qd2, qd4 = points["qd2"], points["qd4"]
    # QD4 placement traffic grows with N
    comm4 = [p.comm_bytes_per_tree for p in qd4]
    assert comm4 == sorted(comm4)
    assert comm4[-1] > 2.5 * comm4[0]
    # QD2 histogram traffic is independent of N
    comm2 = [p.comm_bytes_per_tree for p in qd2]
    assert max(comm2) < 1.2 * min(comm2)
    # low dimensionality: horizontal moves less data than vertical at
    # the largest N
    assert comm2[-1] < comm4[-1]


@pytest.fixture(scope="module")
def fig10b_workloads():
    cfg = TrainConfig(num_trees=TREES, num_layers=6, num_candidates=20)
    return [
        (f"D={d // 1000}K",
         make_classification(15_000, d, density=0.01, seed=62,
                             name=f"b{d}"),
         cfg)
        for d in (2_500, 5_000, 7_500, 10_000)
    ]


def test_fig10b_impact_of_dimensionality(benchmark, fig10b_workloads,
                                         binned_cache, record_table):
    """Fig 10(b): QD2 comm grows linearly with D; QD4 comm unaffected."""
    def run():
        return {
            system: sweep_points(system, fig10b_workloads, None,
                                 binned_cache)
            for system in ("qd2", "qd4")
        }

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10b",
        figure10_table(
            "Figure 10(b) — impact of dimensionality "
            "(N=15K, C=2, L=6, W=8)", points,
        ),
    )
    qd2, qd4 = points["qd2"], points["qd4"]
    comm2 = [p.comm_bytes_per_tree for p in qd2]
    assert comm2 == sorted(comm2)
    assert comm2[-1] > 3.0 * comm2[0]      # ~linear in D (4x dims)
    comm4 = [p.comm_bytes_per_tree for p in qd4]
    assert max(comm4) < 1.2 * min(comm4)   # flat in D
    assert comm4[-1] < comm2[-1] / 20      # vertical wins big at high D


@pytest.fixture(scope="module")
def fig10c_workloads():
    dataset = make_classification(15_000, 5_000, density=0.01, seed=63,
                                  name="c")
    return [
        (f"L={layers}",
         dataset,
         TrainConfig(num_trees=TREES, num_layers=layers,
                     num_candidates=20))
        for layers in (5, 7, 9)
    ]


def test_fig10c_impact_of_tree_depth(benchmark, fig10c_workloads,
                                     binned_cache, record_table):
    """Fig 10(c): QD2 comm grows ~exponentially with L (node count),
    QD4 comm grows linearly (one placement round per layer)."""
    def run():
        out = {}
        for system in ("qd2", "qd4"):
            pts = []
            for label, dataset, config in fig10c_workloads:
                binned = binned_cache.get(dataset, config.num_candidates)
                pts.append(run_point(system, binned, config, CLUSTER,
                                     num_trees=TREES, label=label))
            out[system] = pts
        return out

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10c",
        figure10_table(
            "Figure 10(c) — impact of tree depth "
            "(N=15K, D=5K, C=2, W=8)", points,
        ),
    )
    qd2, qd4 = points["qd2"], points["qd4"]
    comm2 = [p.comm_bytes_per_tree for p in qd2]
    comm4 = [p.comm_bytes_per_tree for p in qd4]
    # horizontal: two more layers multiplies the (incomplete) node count;
    # super-linear growth, ~4x for complete trees
    assert comm2[1] > 1.8 * comm2[0]
    assert comm2[2] > 1.6 * comm2[1]
    assert comm2[2] > 3.0 * comm2[0]
    # vertical: two more layers adds a constant per layer (< 2x)
    assert comm4[1] < 2.0 * comm4[0]
    assert comm4[2] < 2.0 * comm4[1]


@pytest.fixture(scope="module")
def fig10d_workloads():
    return [
        (f"C={classes}",
         make_classification(15_000, 2_500, num_classes=classes,
                             density=0.01, seed=64, name=f"d{classes}"),
         TrainConfig(num_trees=TREES, num_layers=6, num_candidates=20,
                     objective="multiclass", num_classes=classes))
        for classes in (3, 5, 10)
    ]


def test_fig10d_impact_of_multiclass(benchmark, fig10d_workloads,
                                     binned_cache, record_table):
    """Fig 10(d): QD2 comm proportional to C; QD4 comm unchanged."""
    def run():
        return {
            system: sweep_points(system, fig10d_workloads, None,
                                 binned_cache)
            for system in ("qd2", "qd4")
        }

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10d",
        figure10_table(
            "Figure 10(d) — impact of multi-class "
            "(N=15K, D=2.5K, L=6, W=8)", points,
        ),
    )
    qd2, qd4 = points["qd2"], points["qd4"]
    comm2 = [p.comm_bytes_per_tree for p in qd2]
    comm4 = [p.comm_bytes_per_tree for p in qd4]
    # C: 3 -> 10 should scale horizontal traffic ~3.3x
    assert comm2[2] > 2.5 * comm2[0]
    assert max(comm4) < 1.3 * min(comm4)
