"""Figure 10(e)/(f): memory breakdown (data vs histograms), QD2 vs QD4.

The paper reports per-worker memory split into dataset storage and
gradient histograms: horizontal partitioning pays ~W times more histogram
memory, and in multi-class tasks histograms dominate everything else.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, make_classification
from repro.bench.harness import run_point
from repro.bench.report import memory_table

CLUSTER = ClusterConfig(num_workers=8)


def test_fig10e_memory_vs_dimensionality(benchmark, binned_cache,
                                         record_table):
    """Fig 10(e): histogram memory grows with D; QD4 holds ~1/W of QD2's."""
    cfg = TrainConfig(num_trees=2, num_layers=6, num_candidates=20)
    workloads = [
        (f"D={d // 1000}K",
         make_classification(10_000, d, density=0.01, seed=65,
                             name=f"e{d}"))
        for d in (2_500, 5_000, 7_500, 10_000)
    ]

    def run():
        out = {}
        for system in ("qd2", "qd4"):
            out[system] = [
                run_point(system, binned_cache.get(ds, 20), cfg, CLUSTER,
                          num_trees=2, label=label)
                for label, ds in workloads
            ]
        return out

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10e",
        memory_table(
            "Figure 10(e) — memory breakdown vs dimensionality "
            "(N=10K, C=2, L=6, W=8)", points,
        ),
    )
    qd2, qd4 = points["qd2"], points["qd4"]
    for p2, p4 in zip(qd2, qd4):
        ratio = p2.histogram_bytes / p4.histogram_bytes
        # expected ~W = 8; grouping slack and tree-shape drift between
        # the two systems keep it within roughly [W/2, 1.6 W]
        assert 3.0 <= ratio <= 13.0
        # data shards are similar (QD4 adds full labels)
        assert p4.data_bytes < 2.5 * p2.data_bytes
    # histogram memory grows with D for both
    hist2 = [p.histogram_bytes for p in qd2]
    assert hist2 == sorted(hist2)


def test_fig10f_memory_vs_classes(benchmark, binned_cache, record_table):
    """Fig 10(f): multi-class histograms dominate QD2's memory, growing
    linearly with C, while QD4 stays modest."""
    workloads = [
        (f"C={c}",
         make_classification(10_000, 2_500, num_classes=c, density=0.01,
                             seed=66, name=f"f{c}"),
         TrainConfig(num_trees=2, num_layers=6, num_candidates=20,
                     objective="multiclass", num_classes=c))
        for c in (3, 5, 10)
    ]

    def run():
        out = {}
        for system in ("qd2", "qd4"):
            out[system] = [
                run_point(system, binned_cache.get(ds, 20), cfg, CLUSTER,
                          num_trees=2, label=label)
                for label, ds, cfg in workloads
            ]
        return out

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10f",
        memory_table(
            "Figure 10(f) — memory breakdown vs classes "
            "(N=10K, D=2.5K, L=6, W=8)", points,
        ),
    )
    qd2, qd4 = points["qd2"], points["qd4"]
    hist2 = [p.histogram_bytes for p in qd2]
    # C: 3 -> 10 scales histogram memory ~3.3x
    assert hist2[2] > 2.8 * hist2[0]
    # at C=10 histograms dominate QD2's data memory (paper's OOM story)
    assert qd2[2].histogram_bytes > qd2[2].data_bytes
    # QD4 keeps histogram memory ~W times lower
    for p2, p4 in zip(qd2, qd4):
        assert p2.histogram_bytes / p4.histogram_bytes >= 3.0
