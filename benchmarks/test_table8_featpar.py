"""Table 8 (Appendix D): LightGBM data-parallel vs feature-parallel vs
Vero on small datasets.

Feature-parallel LightGBM avoids histogram aggregation entirely (like
vertical partitioning) at the price of a full dataset copy per worker;
the paper measures FP faster than DP, with Vero fastest.  We assert the
FP < DP ordering and FP's W-fold memory cost; Vero's standing against FP
is recorded (at laptop scale the placement-broadcast saving FP enjoys is
small).
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, load_catalog
from repro.bench.harness import run_point
from repro.bench.report import simple_table

TREES = 2
SCALE = 0.2
DATASETS = ("rcv1", "rcv1-multi")

SYSTEMS = {
    "lightgbm-dp": "lightgbm",
    "lightgbm-fp": "lightgbm-fp",
    "vero": "vero",
}


@pytest.fixture(scope="module")
def table8_rows(binned_cache):
    cluster = ClusterConfig(num_workers=5)
    rows = {}
    for name in DATASETS:
        dataset = load_catalog(name, scale=SCALE)
        multiclass = dataset.num_classes > 2
        cfg = TrainConfig(
            num_trees=TREES, num_layers=8, num_candidates=20,
            objective="multiclass" if multiclass else "binary",
            num_classes=dataset.num_classes,
        )
        binned = binned_cache.get(dataset, cfg.num_candidates)
        rows[name] = {
            label: run_point(system, binned, cfg, cluster,
                             num_trees=TREES, label=name)
            for label, system in SYSTEMS.items()
        }
    return rows


def test_table8_feature_parallel(benchmark, table8_rows, record_table):
    rows = benchmark.pedantic(lambda: table8_rows, rounds=1,
                              iterations=1)
    table_rows = []
    for name, points in rows.items():
        for system, point in points.items():
            table_rows.append([
                name, system,
                f"{point.total_seconds * 1e3:.1f}ms",
                f"{point.comm_bytes_per_tree / 1e3:.1f}KB",
                f"{point.data_bytes / 1e6:.2f}MB",
            ])
    record_table(
        "table8",
        simple_table(
            "Table 8 — LightGBM data-parallel vs feature-parallel vs "
            f"Vero ({SCALE:.0%} scale, W=5)",
            ["dataset", "system", "time/tree", "wire/tree",
             "data-mem/worker"],
            table_rows,
        ),
    )
    for name, points in rows.items():
        # FP avoids histogram aggregation: much faster than DP
        assert points["lightgbm-fp"].total_seconds < \
            points["lightgbm-dp"].total_seconds, name
        # and moves far fewer bytes
        assert points["lightgbm-fp"].comm_bytes_per_tree < \
            points["lightgbm-dp"].comm_bytes_per_tree / 10, name
        # but stores the whole dataset on every worker
        assert points["lightgbm-fp"].data_bytes > \
            2.5 * points["vero"].data_bytes, name
        # Vero also beats DP on these vertical-friendly datasets
        assert points["vero"].total_seconds < \
            points["lightgbm-dp"].total_seconds, name
