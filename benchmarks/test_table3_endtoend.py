"""Table 3: average run time per tree scaled by Vero, across the eight
public/synthetic surrogate datasets and four systems.

Paper's shape: LightGBM fastest on the low-dimensional dense datasets
(Vero suffers there); Vero fastest on the high-dimensional sparse and
multi-class datasets, with XGBoost slowest by an order of magnitude.
DimBoost skips multi-class (unsupported).
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, load_catalog
from repro.bench.harness import run_point
from repro.bench.report import scaled_runtime_table

TREES = 2

#: dataset -> (worker count per the paper, kind, instance scale).
#: The LD surrogates run at a larger scale (N ~ 100-125K): vertical
#: partitioning's O(N)-per-worker costs — the mechanism behind the
#: paper's LightGBM-wins-on-low-dim result — only become visible beyond
#: N ~ 1e5 (see EXPERIMENTS.md).
DATASETS = {
    "susy": (5, "LD", 2.5),
    "higgs": (5, "LD", 4.0),
    "criteo": (5, "LD", 4.0),
    "epsilon": (5, "LD", 2.5),
    "rcv1": (5, "HS", 0.25),
    "synthesis": (8, "HS", 0.25),
    "rcv1-multi": (8, "MC", 0.25),
    "synthesis-multi": (8, "MC", 0.25),
}

SYSTEMS = ("xgboost", "lightgbm", "dimboost", "vero")


@pytest.fixture(scope="module")
def table3_rows(binned_cache):
    rows = {}
    for name, (workers, kind, scale) in DATASETS.items():
        dataset = load_catalog(name, scale=scale)
        multiclass = dataset.num_classes > 2
        cfg = TrainConfig(
            num_trees=TREES, num_layers=8, num_candidates=20,
            objective="multiclass" if multiclass else "binary",
            num_classes=dataset.num_classes,
        )
        binned = binned_cache.get(dataset, cfg.num_candidates)
        cluster = ClusterConfig(num_workers=workers)
        row = {}
        for system in SYSTEMS:
            if system == "dimboost" and multiclass:
                continue  # unsupported, as in the paper
            point = run_point(system, binned, cfg, cluster,
                              num_trees=TREES, label=name)
            row[system] = point.total_seconds
        rows[name] = row
    return rows


def test_table3_scaled_runtimes(benchmark, table3_rows, record_table):
    rows = benchmark.pedantic(lambda: table3_rows, rounds=1, iterations=1)
    record_table(
        "table3",
        scaled_runtime_table(
            "Table 3 — average run time per tree scaled by Vero "
            f"({TREES} trees; LD surrogates at 250-400% scale, "
            "HS/MC at 25%)",
            rows, baseline="vero",
        ),
    )
    # Paper shape 1: Vero is the fastest system on every high-dimensional
    # sparse and multi-class dataset.
    for name in ("rcv1", "synthesis", "rcv1-multi", "synthesis-multi"):
        row = rows[name]
        assert row["vero"] == min(row.values()), name
    # Paper shape 2: XGBoost trails Vero by a large factor on HS/MC.
    for name in ("rcv1", "synthesis", "rcv1-multi", "synthesis-multi"):
        assert rows[name]["xgboost"] > 3.0 * rows[name]["vero"], name
    # Paper shape 3: on the lowest-dimensional datasets the horizontal
    # row-store systems beat Vero.
    for name in ("susy", "higgs", "criteo"):
        assert rows[name]["lightgbm"] < rows[name]["vero"], name
