"""Ablation: number of candidate splits ``q`` vs the exact greedy ceiling.

The paper fixes ``q = 20`` (Section 5.1).  This bench sweeps ``q`` and
compares model quality and per-tree cost against the exact greedy
algorithm, showing the tradeoff that makes a small ``q`` the right
choice: quality saturates quickly while histogram size — and with it the
horizontal quadrants' communication (``Sizehist ∝ q``) — keeps growing.
"""

from __future__ import annotations

import time

import pytest

from repro import ClusterConfig, GBDT, TrainConfig, make_classification, \
    make_system
from repro.bench.report import simple_table
from repro.core.exact import ExactGBDT
from repro.data.dataset import bin_dataset

TREES = 5
Q_SWEEP = (2, 4, 8, 20, 64)


def test_ablation_candidate_splits(benchmark, record_table):
    dataset = make_classification(6_000, 150, density=0.4, seed=83)
    train, valid = dataset.split(0.8, seed=84)

    def run():
        out = {}
        for q in Q_SWEEP:
            cfg = TrainConfig(num_trees=TREES, num_layers=6,
                              num_candidates=q, learning_rate=0.3)
            binned = bin_dataset(train, q)
            start = time.perf_counter()
            result = GBDT(cfg).fit(train, valid, binned=binned)
            seconds = time.perf_counter() - start
            comm = make_system("qd2", cfg, ClusterConfig(4)).fit(
                binned, num_trees=1).comm.total_bytes
            out[f"q={q}"] = (result.evals[-1].metric_value, seconds,
                             comm)
        cfg = TrainConfig(num_trees=TREES, num_layers=6,
                          learning_rate=0.3)
        start = time.perf_counter()
        result = ExactGBDT(cfg).fit(train, valid)
        out["exact"] = (result.evals[-1].metric_value,
                        time.perf_counter() - start, None)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (auc_value, seconds, comm) in results.items():
        rows.append([
            label, f"{auc_value:.4f}", f"{seconds:.2f}s",
            "-" if comm is None else f"{comm / 1e6:.2f}MB",
        ])
    record_table(
        "ablation_candidates",
        simple_table(
            "Ablation — candidate splits q vs exact greedy "
            f"(N=6K, D=150, {TREES} trees; comm = QD2 wire for 1 tree)",
            ["method", "valid AUC", "train time", "QD2 wire/tree"],
            rows,
        ),
    )
    aucs = {label: v[0] for label, v in results.items()}
    # quality saturates: q=20 sits within a point of exact greedy
    assert aucs["q=20"] >= aucs["exact"] - 0.01
    # but a starved q costs real accuracy
    assert aucs["q=2"] < aucs["q=20"]
    # while communication keeps growing linearly with q
    comms = {label: v[2] for label, v in results.items()
             if v[2] is not None}
    assert comms["q=64"] > 2.5 * comms["q=20"]
