"""Figure 10(g)/(h): storage-pattern comparison, QD3 vs QD4.

Both quadrants partition vertically, so their communication is identical;
only computation differs (Section 5.2.2).  Panel (g) is the few-instance /
high-dimension niche; panel (h) sweeps instance count, where the paper
measures QD3 spending 3-4x more computation with high variance (binary
searches and branch penalties).
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, make_classification
from repro.bench.harness import run_point
from repro.bench.report import figure10_table

CLUSTER = ClusterConfig(num_workers=8)
TREES = 3


def test_fig10g_impact_of_dimensionality(benchmark, binned_cache,
                                         record_table):
    """Fig 10(g): tiny N, growing D — both systems' comm stays flat;
    computation grows with D."""
    cfg = TrainConfig(num_trees=TREES, num_layers=6, num_candidates=20)
    workloads = [
        (f"D={d // 1000}K",
         make_classification(2_000, d, density=0.05, seed=67,
                             name=f"g{d}"))
        for d in (2_000, 4_000, 6_000, 8_000)
    ]

    def run():
        out = {}
        for system in ("qd3", "qd4"):
            out[system] = [
                run_point(system, binned_cache.get(ds, 20), cfg, CLUSTER,
                          num_trees=TREES, label=label)
                for label, ds in workloads
            ]
        return out

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10g",
        figure10_table(
            "Figure 10(g) — impact of dimensionality, few instances "
            "(N=2K, C=2, L=6, W=8)", points,
        ),
    )
    qd3, qd4 = points["qd3"], points["qd4"]
    for p3, p4 in zip(qd3, qd4):
        # vertical partitioning on both sides: identical traffic
        assert p3.comm_bytes_per_tree == p4.comm_bytes_per_tree
    # column-store computation grows with D (per-column bookkeeping)
    assert qd3[-1].comp_seconds > qd3[0].comp_seconds


def test_fig10h_impact_of_instance_number(benchmark, binned_cache,
                                          record_table):
    """Fig 10(h): growing N — QD3 spends several times QD4's computation
    (column-store indexing overheads), while their traffic is identical
    and grows linearly with N."""
    cfg = TrainConfig(num_trees=TREES, num_layers=6, num_candidates=20)
    workloads = [
        (f"N={n // 1000}K",
         make_classification(n, 2_500, density=0.01, seed=68,
                             name=f"h{n}"))
        for n in (5_000, 10_000, 20_000, 40_000)
    ]

    def run():
        out = {}
        for system in ("qd3", "qd4"):
            out[system] = [
                run_point(system, binned_cache.get(ds, 20), cfg, CLUSTER,
                          num_trees=TREES, label=label)
                for label, ds in workloads
            ]
        return out

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig10h",
        figure10_table(
            "Figure 10(h) — impact of instance number "
            "(D=2.5K, C=2, L=6, W=8)", points,
        ),
    )
    qd3, qd4 = points["qd3"], points["qd4"]
    # identical traffic, growing with N
    comm4 = [p.comm_bytes_per_tree for p in qd4]
    assert comm4 == sorted(comm4)
    for p3, p4 in zip(qd3, qd4):
        assert p3.comm_bytes_per_tree == p4.comm_bytes_per_tree
    # the paper's headline: column-store costs several times more
    # compute.  Wall-clock ratios at single points are noisy, so assert
    # on the sweep-aggregate ratio (paper: 3-4x) and require every point
    # to at least lean QD4's way.
    total3 = sum(p.comp_seconds for p in qd3[1:])
    total4 = sum(p.comp_seconds for p in qd4[1:])
    assert total3 > 1.8 * total4
    for p3, p4 in zip(qd3[1:], qd4[1:]):
        assert p3.comp_seconds > p4.comp_seconds
