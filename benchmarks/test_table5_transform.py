"""Table 5 (Appendix A): horizontal-to-vertical transformation costs.

Per dataset: data loading, candidate-split computation, the repartition
under three encodings (naive 12-byte pairs / compressed pairs /
compressed + blockified = Vero), and the label broadcast.  Paper's shape:
compression and blockify each shave a substantial slice off repartition,
and the whole transformation is a small fraction of data loading +
sketching.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, load_catalog
from repro.bench.report import simple_table
from repro.cluster.transform import horizontal_to_vertical

DATASETS = ("rcv1", "rcv1-multi", "synthesis")
SCALE = 0.25


@pytest.fixture(scope="module")
def transform_reports():
    cluster = ClusterConfig(num_workers=8)
    reports = {}
    for name in DATASETS:
        dataset = load_catalog(name, scale=SCALE)
        result = horizontal_to_vertical(dataset, cluster,
                                        num_candidates=20)
        reports[name] = result.report
    return reports


def test_table5_transformation_cost(benchmark, transform_reports,
                                    record_table):
    reports = benchmark.pedantic(lambda: transform_reports, rounds=1,
                                 iterations=1)
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            f"{report.load_data_seconds:.3f}s",
            f"{report.get_splits_seconds:.3f}s",
            f"{report.repartition_seconds['naive']:.4f}s",
            f"{report.repartition_seconds['compressed']:.4f}s",
            f"{report.repartition_seconds['blockified']:.4f}s",
            f"{report.broadcast_label_seconds:.4f}s",
        ])
    record_table(
        "table5",
        simple_table(
            "Table 5 — transformation cost "
            f"(W=8, surrogates at {SCALE:.0%} scale)",
            ["dataset", "load", "get-splits", "repart-naive",
             "repart-compress", "repart-vero", "bcast-label"],
            rows,
        ),
    )
    for name, report in reports.items():
        seconds = report.repartition_seconds
        # each optimization helps: naive > compressed > blockified
        assert seconds["naive"] > seconds["compressed"], name
        assert seconds["compressed"] > seconds["blockified"], name
        # the compression is ~4x (Section 4.2.1)
        assert report.compression_ratio >= 4.0, name
        # the extra steps of vertical partitioning stay a modest share of
        # load + sketch time (Appendix A: 10-24% on the real datasets)
        extra = seconds["blockified"] + report.broadcast_label_seconds
        base = report.load_data_seconds + report.get_splits_seconds
        assert extra < 0.5 * base, name
