"""Histogram-kernel regression benchmark: seed kernels vs the builder.

Measures ops/sec of every construction kernel on the
``benchmarks/test_kernels_micro.py`` workload — once with the pinned
seed kernels (``bench/seed_kernels.py``), once with the
:class:`~repro.core.histogram.HistogramBuilder` engine — plus an
end-to-end reference-trainer run on a Table-3-small-style config, and
writes ``BENCH_kernels.json`` with before/after throughput per kernel.

Usage::

    PYTHONPATH=src python bench/kernel_bench.py            # full workload
    PYTHONPATH=src python bench/kernel_bench.py --quick    # CI-sized
    PYTHONPATH=src python bench/kernel_bench.py --check    # enforce targets

Targets (from the perf-overhaul issue): >=1.5x on root-node
``build_rowstore``; no kernel below 0.95x of seed throughput.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

import seed_kernels as seed
from repro.config import TrainConfig
from repro.core.gbdt import GBDT
from repro.core.histogram import ColumnwiseIndex, HistogramBuilder
from repro.data.dataset import bin_dataset
from repro.data.synthetic import make_classification

NUM_BINS = 20
ROOT_TARGET = 1.5
FLOOR = 0.95


def time_ops(fn, min_seconds: float, max_reps: int = 2000,
             windows: int = 3) -> float:
    """Best-of-``windows`` ops/sec of ``fn``.

    Each window runs for at least ``min_seconds``; the fastest window
    wins, so a scheduler hiccup during one window cannot tank the
    reading for either engine.
    """
    fn()  # warmup (also primes lazy caches, as in steady-state training)
    best = 0.0
    for _ in range(windows):
        reps = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_seconds and reps < max_reps:
            fn()
            reps += 1
            elapsed = time.perf_counter() - start
        best = max(best, reps / elapsed)
    return best


def kernel_workload(quick: bool):
    if quick:
        num_rows, num_features = 4_000, 120
    else:
        num_rows, num_features = 20_000, 500
    dataset = make_classification(num_rows, num_features, density=0.1,
                                  seed=99)
    binned = bin_dataset(dataset, NUM_BINS)
    rng = np.random.default_rng(0)
    grad = rng.standard_normal((num_rows, 1))
    hess = rng.random((num_rows, 1))
    node_of = rng.integers(0, 2, size=num_rows).astype(np.int64)
    rows = np.flatnonzero(node_of == 1)
    return binned, grad, hess, node_of, rows


def bench_kernels(quick: bool) -> dict:
    binned, grad, hess, node_of, rows = kernel_workload(quick)
    csr = binned.binned
    csc = binned.csc()
    all_rows = np.arange(binned.num_instances, dtype=np.int64)
    builder = HistogramBuilder()
    min_s = 0.25 if quick else 0.75
    results = {}

    def record(name, before_fn, after_fn):
        before = time_ops(before_fn, min_s)
        after = time_ops(after_fn, min_s)
        results[name] = {
            "before_ops": round(before, 3),
            "after_ops": round(after, 3),
            "speedup": round(after / before, 3),
        }
        print(f"  {name:28s} {before:10.2f} -> {after:10.2f} ops/s "
              f"({after / before:5.2f}x)")

    # sanity: both engines agree before any timing
    ref, ref_t = seed.seed_build_rowstore(csr, all_rows, grad, hess,
                                          NUM_BINS)
    new, new_t = builder.build_rowstore(csr, all_rows, grad, hess,
                                        NUM_BINS)
    assert ref_t == new_t and np.allclose(ref.grad, new.grad)
    builder.release(new)

    record(
        "rowstore_root",
        lambda: seed.seed_build_rowstore(csr, all_rows, grad, hess,
                                         NUM_BINS),
        lambda: builder.release(
            builder.build_rowstore(csr, all_rows, grad, hess,
                                   NUM_BINS)[0]),
    )
    record(
        "rowstore_node",
        lambda: seed.seed_build_rowstore(csr, rows, grad, hess, NUM_BINS),
        lambda: builder.release(
            builder.build_rowstore(csr, rows, grad, hess, NUM_BINS)[0]),
    )

    def layer_after():
        hists, _ = builder.build_colstore_layer(csc, node_of, 2, grad,
                                                hess, NUM_BINS)
        for h in hists:
            builder.release(h)

    record(
        "colstore_layer",
        lambda: seed.seed_build_colstore_layer(csc, node_of, 2, grad,
                                               hess, NUM_BINS),
        layer_after,
    )
    record(
        "colstore_hybrid",
        lambda: seed.seed_build_colstore_hybrid(csc, rows, node_of, 1,
                                                grad, hess, NUM_BINS),
        lambda: builder.release(
            builder.build_colstore_hybrid(csc, rows, node_of, 1, grad,
                                          hess, NUM_BINS)[0]),
    )

    seed_index = seed.SeedColumnwiseIndex(csc)
    seed_index.update_after_split(node_of, [0, 1])
    new_index = ColumnwiseIndex(csc)
    new_index.update_after_split(node_of, [0, 1])
    record(
        "colstore_columnwise_read",
        lambda: seed.seed_build_colstore_columnwise(seed_index, 1, grad,
                                                    hess, NUM_BINS),
        lambda: builder.release(
            builder.build_colstore_columnwise(new_index, 1, grad, hess,
                                              NUM_BINS)[0]),
    )
    record(
        "columnwise_index_update",
        lambda: seed_index.update_after_split(node_of, [0, 1]),
        lambda: new_index.update_after_split(node_of, [0, 1]),
    )
    return results


def bench_end_to_end(quick: bool) -> dict:
    """Reference trainer on a Table-3-small-style config, seed kernels
    injected vs the builder engine."""
    if quick:
        num_rows, num_features, trees, layers = 4_000, 50, 2, 5
    else:
        num_rows, num_features, trees, layers = 20_000, 100, 3, 6
    dataset = make_classification(num_rows, num_features, density=0.1,
                                  seed=7)
    cfg = TrainConfig(num_trees=trees, num_layers=layers,
                      num_candidates=NUM_BINS)
    binned = bin_dataset(dataset, NUM_BINS)
    min_s = 0.5 if quick else 2.0

    before = time_ops(
        lambda: GBDT(cfg, builder=seed.SeedBuilder()).fit(dataset,
                                                          binned=binned),
        min_s, max_reps=50,
    )
    after = time_ops(
        lambda: GBDT(cfg).fit(dataset, binned=binned),
        min_s, max_reps=50,
    )
    entry = {
        "before_ops": round(before, 4),
        "after_ops": round(after, 4),
        "speedup": round(after / before, 3),
    }
    print(f"  {'end_to_end_small':28s} {before:10.4f} -> {after:10.4f} "
          f"fits/s ({after / before:5.2f}x)")
    return {"end_to_end_small": entry}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if perf targets are missed")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_kernels.json")
    args = parser.parse_args()

    mode = "quick" if args.quick else "full"
    print(f"kernel bench ({mode} workload)")
    kernels = bench_kernels(args.quick)
    kernels.update(bench_end_to_end(args.quick))

    report = {
        "generated_by": "bench/kernel_bench.py",
        "mode": mode,
        "numpy": np.__version__,
        "targets": {"rowstore_root_min": ROOT_TARGET,
                    "kernel_floor": FLOOR},
        "kernels": kernels,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    ok = True
    if kernels["rowstore_root"]["speedup"] < ROOT_TARGET:
        ok = False
        print(f"MISSED: rowstore_root "
              f"{kernels['rowstore_root']['speedup']}x < {ROOT_TARGET}x")
    for name, entry in kernels.items():
        if entry["speedup"] < FLOOR:
            ok = False
            print(f"MISSED: {name} {entry['speedup']}x < {FLOOR}x floor")
    if ok:
        print("all perf targets met")
    return 0 if (ok or not args.check) else 1


if __name__ == "__main__":
    raise SystemExit(main())
