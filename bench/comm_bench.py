"""Wire-codec benchmark: raw vs encoded bytes and codec throughput.

Trains every registry plan on an RCV1-like sparse synthetic workload
twice — dense wire format vs the ``sparse`` codec stack — and records,
per plan, the raw and encoded bytes of each ledger kind plus the model
bit-identity verdict.  Separately measures encode/decode throughput of
each codec kernel so the compute-for-bytes trade is quantified, and
writes everything to ``BENCH_comm.json``.

Usage::

    PYTHONPATH=src python bench/comm_bench.py            # full workload
    PYTHONPATH=src python bench/comm_bench.py --quick    # CI-sized
    PYTHONPATH=src python bench/comm_bench.py --check    # enforce targets

Targets (from the codec-stack issue): >=3x histogram-aggregation byte
reduction with the sparse codec on the sparse workload, and a model
bit-identical to the dense baseline on every plan.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.cluster.codecs import (AdaptivePlacementCodec, DeltaIndexCodec,
                                  SparseHistogramCodec, varint_decode,
                                  varint_encode)
from repro.config import ClusterConfig, TrainConfig
from repro.core.histogram import Histogram
from repro.core.serialize import ensemble_to_dict
from repro.data.dataset import bin_dataset
from repro.data.synthetic import make_classification
from repro.systems import make_system
from repro.systems.plans import plan_keys

HIST_KIND = "hist-aggregation"
HIST_REDUCTION_MIN = 3.0


def time_mbps(fn, nbytes: int, min_seconds: float, windows: int = 3
              ) -> float:
    """Best-of-``windows`` MB/s of ``fn`` over a ``nbytes`` payload."""
    fn()  # warmup
    best = 0.0
    for _ in range(windows):
        reps = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_seconds and reps < 2000:
            fn()
            reps += 1
            elapsed = time.perf_counter() - start
        best = max(best, reps * nbytes / elapsed / 1e6)
    return best


def bench_throughput(quick: bool) -> dict:
    """Encode/decode MB/s of each codec kernel (rates are per byte of
    the *dense* payload, so they compare against shipping it raw)."""
    min_s = 0.1 if quick else 0.5
    rng = np.random.default_rng(0)
    results = {}

    # sparse histogram codec at RCV1-like 1% density
    hist = Histogram(2000, 16, 1)
    occupied = rng.choice(hist.grad.shape[0],
                          size=hist.grad.shape[0] // 100, replace=False)
    hist.grad[occupied] = rng.standard_normal((occupied.size, 1))
    hist.hess[occupied] = rng.random((occupied.size, 1))
    codec = SparseHistogramCodec()
    enc = codec.encode(hist)
    results["sparse_hist_encode"] = time_mbps(
        lambda: codec.encode(hist), hist.nbytes, min_s)
    results["sparse_hist_decode"] = time_mbps(
        lambda: codec.decode(enc), hist.nbytes, min_s)

    # adaptive placement on a skewed split
    n = 100_000 if quick else 1_000_000
    go_left = np.zeros(n, dtype=bool)
    go_left[rng.choice(n, size=n // 50, replace=False)] = True
    pcodec = AdaptivePlacementCodec()
    penc = pcodec.encode(go_left)
    results["adaptive_placement_encode"] = time_mbps(
        lambda: pcodec.encode(go_left), penc.raw_nbytes, min_s)
    results["adaptive_placement_decode"] = time_mbps(
        lambda: pcodec.decode(penc, n), penc.raw_nbytes, min_s)

    # delta index on spatially correlated node ids
    ids = np.sort(rng.integers(0, 15, size=n)).astype(np.int32)
    icodec = DeltaIndexCodec()
    ienc = icodec.encode(ids)
    results["delta_index_encode"] = time_mbps(
        lambda: icodec.encode(ids), ids.nbytes, min_s)
    results["delta_index_decode"] = time_mbps(
        lambda: icodec.decode(ienc), ids.nbytes, min_s)

    # raw varint kernels
    values = rng.integers(0, 1 << 20, size=n).astype(np.uint64)
    packed = varint_encode(values)
    results["varint_encode"] = time_mbps(
        lambda: varint_encode(values), values.nbytes, min_s)
    results["varint_decode"] = time_mbps(
        lambda: varint_decode(packed, values.size), values.nbytes, min_s)

    for name, mbps in results.items():
        print(f"  {name:28s} {mbps:10.1f} MB/s")
    return {k: round(v, 2) for k, v in results.items()}


def bench_plans(quick: bool) -> dict:
    """Dense vs sparse-codec bytes and bit-identity on every plan."""
    if quick:
        rows, cols, trees, layers = 600, 800, 2, 4
    else:
        rows, cols, trees, layers = 1000, 2000, 2, 5
    dataset = make_classification(rows, cols, density=0.01, seed=7)
    binned = bin_dataset(dataset, 16)
    cluster = ClusterConfig(num_workers=4)
    results = {}
    for plan_key in plan_keys():
        dense_cfg = TrainConfig(num_trees=trees, num_layers=layers,
                                num_candidates=16)
        codec_cfg = TrainConfig(num_trees=trees, num_layers=layers,
                                num_candidates=16, codec="sparse")
        dense = make_system(plan_key, dense_cfg, cluster).fit(binned)
        encoded = make_system(plan_key, codec_cfg, cluster).fit(binned)
        identical = (ensemble_to_dict(dense.ensemble)
                     == ensemble_to_dict(encoded.ensemble))
        kinds = {}
        for kind, wire in sorted(encoded.comm.bytes_by_kind.items()):
            raw = encoded.comm.raw_bytes_by_kind[kind]
            kinds[kind] = {
                "raw_bytes": int(raw),
                "wire_bytes": int(wire),
                "reduction": round(raw / wire, 3) if wire else None,
            }
        entry = {
            "bit_identical": bool(identical),
            "dense_total_bytes": int(dense.comm.total_bytes),
            "encoded_total_bytes": int(encoded.comm.total_bytes),
            "kinds": kinds,
        }
        hist = kinds.get(HIST_KIND)
        ratio = hist["reduction"] if hist else None
        results[plan_key] = entry
        print(f"  {plan_key:12s} identical={identical!s:5s} "
              f"total {dense.comm.total_bytes:>12,} -> "
              f"{encoded.comm.total_bytes:>12,}"
              + (f"  hist {ratio:.2f}x" if ratio else ""))
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if codec targets are missed")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_comm.json")
    args = parser.parse_args()

    mode = "quick" if args.quick else "full"
    print(f"comm bench ({mode} workload, RCV1-like sparse synthetic)")
    print("plan sweep (dense vs sparse codec):")
    plans = bench_plans(args.quick)
    print("codec kernel throughput:")
    throughput = bench_throughput(args.quick)

    report = {
        "generated_by": "bench/comm_bench.py",
        "mode": mode,
        "numpy": np.__version__,
        "targets": {"hist_reduction_min": HIST_REDUCTION_MIN,
                    "bit_identical": True},
        "plans": plans,
        "throughput_mbps": throughput,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    ok = True
    for plan_key, entry in plans.items():
        if not entry["bit_identical"]:
            ok = False
            print(f"MISSED: {plan_key} model not bit-identical under "
                  f"the sparse codec")
        hist = entry["kinds"].get(HIST_KIND)
        if hist and hist["reduction"] < HIST_REDUCTION_MIN:
            ok = False
            print(f"MISSED: {plan_key} hist-aggregation reduction "
                  f"{hist['reduction']}x < {HIST_REDUCTION_MIN}x")
    if ok:
        print("all codec targets met")
    return 0 if (ok or not args.check) else 1


if __name__ == "__main__":
    raise SystemExit(main())
