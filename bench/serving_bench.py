"""Serving-stack benchmark: compiled predictor, batching, hot-swap.

Four sections, written to ``BENCH_serving.json``:

* ``speedup`` — best-of-3 throughput of the naive per-tree loop
  (``TreeEnsemble.raw_scores``) vs the compiled level-synchronous
  predictor on a 10k-row batch of a trained paper-default model
  (``num_layers = 8``), with exactness asserted before any timing;
* ``latency`` — p50/p95/p99 and throughput of a Poisson trace replayed
  through the micro-batcher over a replica set, per load balancer
  (service time is the measured wall-clock of the compiled predictor —
  computation real, coordination simulated);
* ``hot_swap`` — a mid-traffic deploy of a second model version:
  versions served, the single-version-per-batch invariant, and the
  exact ``deploy:model`` byte accounting;
* ``sharded`` — the replicate-vs-shard grid: shard counts ``S in
  {1, 2, 4, 8}`` x batch size x model shape over a fixed 8-worker
  fleet.  Every cell asserts bit-identity of the sharded chain fold
  against the full predictor and that the ``serve:partial`` ledger
  bytes equal the ring reduce-scatter closed form; the summary pins the
  measured crossover (the smallest ``S >= 2`` whose rollout ships fewer
  deploy bytes than replication — per-worker model bytes scale ``~1/S``
  while the reduction adds ``S - 1`` latency rounds per batch).

Usage::

    PYTHONPATH=src python bench/serving_bench.py            # full workload
    PYTHONPATH=src python bench/serving_bench.py --quick    # CI-sized
    PYTHONPATH=src python bench/serving_bench.py --check    # enforce targets

Target (from the serving issue): compiled >= 5x naive at batch 10k.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.config import ClusterConfig, TrainConfig
from repro.core.gbdt import GBDT
from repro.data.synthetic import make_classification
from repro.serve import (BatchPolicy, MicroBatcher, ModelRegistry,
                         ReplicaSet, synthetic_trace)

BATCH_SIZE = 10_000
SPEEDUP_TARGET = 5.0
NUM_FEATURES = 100


def time_ops(fn, min_seconds: float, max_reps: int = 2000,
             windows: int = 3) -> float:
    """Best-of-``windows`` ops/sec of ``fn`` (same protocol as
    ``bench/kernel_bench.py``: each window runs at least ``min_seconds``
    and the fastest window wins, so one scheduler hiccup cannot tank
    either side of a comparison)."""
    fn()  # warmup
    best = 0.0
    for _ in range(windows):
        reps = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_seconds and reps < max_reps:
            fn()
            reps += 1
            elapsed = time.perf_counter() - start
        best = max(best, reps / elapsed)
    return best


def train_models(quick: bool):
    """The served model and its hot-swap replacement (paper-default
    depth: ``num_layers = 8``), published to a fresh registry."""
    trees = 10 if quick else 50
    dataset = make_classification(8_000 if quick else 20_000,
                                  NUM_FEATURES, density=0.2, seed=5)
    cfg = TrainConfig(num_trees=trees, num_layers=8, learning_rate=0.3)
    primary = GBDT(cfg).fit(dataset).ensemble
    retrain = TrainConfig(num_trees=max(trees // 2, 1), num_layers=8,
                          learning_rate=0.3)
    secondary = GBDT(retrain).fit(dataset).ensemble
    registry = ModelRegistry()
    registry.publish(primary, source="bench v1")
    registry.publish(secondary, source="bench v2")
    return registry, primary


def bench_speedup(registry, primary, quick: bool) -> dict:
    entry = registry.get(1)
    compiled = entry.compiled
    trace = synthetic_trace(BATCH_SIZE, NUM_FEATURES, rate_rps=1e5,
                            seed=1)
    csc = trace.csc()
    exact = bool(np.array_equal(primary.raw_scores(csc),
                                compiled.raw_scores(trace.features)))
    assert exact, "compiled predictor diverged from TreeEnsemble"
    min_s = 0.25 if quick else 0.75
    naive_ops = time_ops(lambda: primary.raw_scores(csc), min_s)
    compiled_ops = time_ops(
        lambda: compiled.raw_scores(trace.features), min_s
    )
    speedup = compiled_ops / naive_ops
    print(f"  {'raw_scores_10k':24s} {naive_ops:8.2f} -> "
          f"{compiled_ops:8.2f} batches/s ({speedup:5.2f}x) exact={exact}")
    return {
        "batch_size": BATCH_SIZE,
        "num_trees": compiled.num_trees,
        "num_layers": 8,
        "naive_ops": round(naive_ops, 3),
        "compiled_ops": round(compiled_ops, 3),
        "speedup": round(speedup, 3),
        "exact": exact,
    }


def bench_latency(registry, quick: bool) -> dict:
    requests = 1_000 if quick else 5_000
    results = {}
    for balancer in ("round-robin", "least-loaded"):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=4),
                              balancer=balancer)
        replicas.deploy()
        trace = synthetic_trace(requests, NUM_FEATURES,
                                rate_rps=20_000.0, seed=2)
        report = MicroBatcher(
            replicas, BatchPolicy(max_batch_size=128, max_delay_s=0.002)
        ).run(trace)
        stats = report.latency_stats()
        results[balancer] = stats.to_dict()
        results[balancer]["batches"] = len(report.batches)
        print(f"  {balancer:24s} p50={stats.p50_s * 1e3:6.2f}ms "
              f"p95={stats.p95_s * 1e3:6.2f}ms "
              f"p99={stats.p99_s * 1e3:6.2f}ms "
              f"throughput={stats.throughput_rps:8.0f}rps")
    return results


def bench_hot_swap(registry, quick: bool) -> dict:
    requests = 1_000 if quick else 5_000
    workers = 4
    replicas = ReplicaSet(registry, ClusterConfig(num_workers=workers),
                          balancer="least-loaded")
    replicas.deploy(1)
    trace = synthetic_trace(requests, NUM_FEATURES, rate_rps=20_000.0,
                            seed=3)
    swap_at = float(trace.arrivals[requests // 2])
    report = MicroBatcher(
        replicas, BatchPolicy(max_batch_size=128, max_delay_s=0.002)
    ).run(trace, swaps=[(swap_at, replicas.deployer(2))])
    single_version = all(
        len({r.model_version for r in report.records
             if r.batch_id == batch.batch_id}) == 1
        for batch in report.batches
    )
    expected = workers * (registry.get(1).nbytes
                          + registry.get(2).nbytes)
    entry = {
        "swap_at_s": round(swap_at, 6),
        "versions_served": report.versions_served(),
        "single_version_batches": single_version,
        "requests_v1": sum(r.model_version == 1 for r in report.records),
        "requests_v2": sum(r.model_version == 2 for r in report.records),
        "deploy_bytes": replicas.deploy_bytes,
        "expected_deploy_bytes": expected,
    }
    print(f"  hot-swap at t={swap_at * 1e3:.1f}ms: versions "
          f"{entry['versions_served']} "
          f"(v1={entry['requests_v1']}, v2={entry['requests_v2']}), "
          f"single-version={single_version}, "
          f"deploy bytes={entry['deploy_bytes']} "
          f"(expected {expected})")
    return entry


def bench_sharded(registry, quick: bool) -> dict:
    """The replicate-vs-shard grid over a fixed 8-worker fleet.

    Model shapes come free from the registry: v1 is the full bench
    model, v2 its half-size hot-swap retrain — same depth, half the
    trees.  Per cell the sharded chain fold is checked bit-identical to
    the full predictor and the ``serve:partial`` bytes against the ring
    reduce-scatter closed form; per (shape, batch) the summary records
    the deploy-byte crossover and the layout the cost model recommends.
    """
    from repro.config import NetworkModel
    from repro.serve import ShardedReplicaSet, reduce_shard_scores
    from repro.systems.costmodel import (price_serving_layouts,
                                         recommend_serving_layout,
                                         score_reduction_bytes_per_batch)

    workers = 8
    shard_counts = (1, 2, 4, 8)
    batch_sizes = (64, 256) if quick else (64, 256, 1024)
    network = NetworkModel()
    cells = []
    crossovers = []
    all_exact = True
    formulas_ok = True
    crossover_ok = True
    footprint_ok = True
    for version in (1, 2):
        entry = registry.get(version)
        compiled = entry.compiled
        for batch in batch_sizes:
            trace = synthetic_trace(batch, NUM_FEATURES,
                                    rate_rps=1e5, seed=7 + version)
            direct = compiled.raw_scores(trace.features)
            deploy_by_s = {}
            for num_shards in shard_counts:
                shards = registry.shards(version, num_shards)
                chained = reduce_shard_scores(
                    [shard.compiled for shard in shards], trace.features)
                exact = bool(np.array_equal(chained, direct))
                all_exact &= exact
                replicas = ShardedReplicaSet(
                    registry, ClusterConfig(num_workers=workers),
                    num_shards=num_shards)
                replicas.deploy(version)
                result = replicas.dispatch(trace.features, close_s=0.0)
                expected_partial = score_reduction_bytes_per_batch(
                    batch, compiled.gradient_dim, num_shards)
                formulas_ok &= replicas.partial_bytes == expected_partial
                per_worker = replicas.model_bytes_per_worker()
                # ~1/S with slack for the repeated metadata keys and
                # the one-tree granularity of the contiguous ranges
                footprint_ok &= (per_worker
                                 <= entry.nbytes / num_shards
                                 + entry.nbytes
                                 / max(compiled.num_trees, 1) + 512)
                deploy_by_s[num_shards] = replicas.deploy_bytes
                cells.append({
                    "model_version": version,
                    "num_trees": compiled.num_trees,
                    "batch": batch,
                    "num_shards": num_shards,
                    "rows": replicas.num_rows,
                    "exact": exact,
                    "model_bytes_per_worker": per_worker,
                    "model_bytes_full": entry.nbytes,
                    "deploy_bytes": replicas.deploy_bytes,
                    "partial_bytes_per_batch": replicas.partial_bytes,
                    "expected_partial_bytes": expected_partial,
                    "reduction_rounds": max(num_shards - 1, 0),
                    "batch_latency_s": round(
                        result.completion_s - result.start_s, 6),
                })
            crossover = next(
                (s for s in shard_counts[1:]
                 if deploy_by_s[s] <= deploy_by_s[1]), None)
            crossover_ok &= crossover == 2
            layouts = price_serving_layouts(
                entry.nbytes,
                {s: [m.nbytes for m in registry.shards(version, s)]
                 for s in shard_counts},
                workers, batch, compiled.gradient_dim,
                network.bytes_per_second, network.latency_s)
            pick = recommend_serving_layout(layouts)
            crossovers.append({
                "model_version": version,
                "num_trees": compiled.num_trees,
                "batch": batch,
                "deploy_bytes_by_shards": deploy_by_s,
                "deploy_crossover_shards": crossover,
                "recommended_shards": pick["num_shards"],
            })
            print(f"  v{version} ({compiled.num_trees} trees) "
                  f"batch={batch:5d}: deploy bytes "
                  + " ".join(f"S={s}:{deploy_by_s[s]}"
                             for s in shard_counts)
                  + f" -> crossover S={crossover}, "
                    f"cost model picks S={pick['num_shards']}")
    return {
        "workers": workers,
        "shard_counts": list(shard_counts),
        "batch_sizes": list(batch_sizes),
        "cells": cells,
        "crossover": crossovers,
        "all_exact": all_exact,
        "partial_bytes_match_formula": formulas_ok,
        "deploy_crossover_at_2": crossover_ok,
        "per_worker_bytes_scale": footprint_ok,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if targets are missed")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_serving.json")
    args = parser.parse_args()

    mode = "quick" if args.quick else "full"
    print(f"serving bench ({mode} workload)")
    registry, primary = train_models(args.quick)
    speedup = bench_speedup(registry, primary, args.quick)
    latency = bench_latency(registry, args.quick)
    hot_swap = bench_hot_swap(registry, args.quick)
    sharded = bench_sharded(registry, args.quick)

    report = {
        "generated_by": "bench/serving_bench.py",
        "mode": mode,
        "numpy": np.__version__,
        "targets": {"speedup_min": SPEEDUP_TARGET},
        "speedup": speedup,
        "latency": latency,
        "hot_swap": hot_swap,
        "sharded": sharded,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    ok = True
    if speedup["speedup"] < SPEEDUP_TARGET:
        ok = False
        print(f"MISSED: speedup {speedup['speedup']}x "
              f"< {SPEEDUP_TARGET}x")
    if not speedup["exact"]:
        ok = False
        print("MISSED: compiled predictor not bit-identical")
    if not hot_swap["single_version_batches"]:
        ok = False
        print("MISSED: a batch straddled two model versions")
    if hot_swap["deploy_bytes"] != hot_swap["expected_deploy_bytes"]:
        ok = False
        print("MISSED: deploy:model byte accounting off")
    if not sharded["all_exact"]:
        ok = False
        print("MISSED: a sharded cell diverged from the full predictor")
    if not sharded["partial_bytes_match_formula"]:
        ok = False
        print("MISSED: serve:partial bytes off the reduce-scatter "
              "closed form")
    if not sharded["deploy_crossover_at_2"]:
        ok = False
        print("MISSED: sharded rollout failed to undercut replicated "
              "deploy bytes at S=2")
    if not sharded["per_worker_bytes_scale"]:
        ok = False
        print("MISSED: per-worker model bytes do not scale ~1/S")
    if ok:
        print("all serving targets met")
    return 0 if (ok or not args.check) else 1


if __name__ == "__main__":
    raise SystemExit(main())
