"""Traffic-scenario benchmark: the million-user conformance grid.

Replays every shipped scenario (steady, diurnal, flash-crowd,
heavy-tail multi-tenant, hot-swap-under-fire) through the full serving
stack and writes the grid to ``BENCH_scenarios.json``: per-tenant p99
and drop rate, SLO violation rate, cache hit rate, and wire bytes for
each scenario, plus the conformance results the ``--check`` gate
enforces:

* **determinism** — each scenario is run twice from its pinned seed and
  the two ``scenario-report/v1`` encodings must be byte-identical;
* **cache exactness** — scenarios that enable the prediction cache are
  re-run with the cache off and every request's score must be
  bit-identical either way (compared per request id: the cache changes
  the billing schedule, never a score);
* **ledger invariants** — conservation (served + dropped == arrivals),
  priority admission (no ``shed-oldest`` drop of a request while a
  strictly lower-priority request sat queued), single-version batches,
  and per-run score exactness, straight from the report's
  ``invariants`` block.

A second section, ``model_grid``, sweeps the database-perspective
inference axes of Guan et al. — batch size x trees x depth — over the
steady scenario (every cell trains its own model shape in process and
replays the same seeded traffic), pinning how serving latency and
throughput move with model shape.

Usage::

    PYTHONPATH=src python bench/scenario_bench.py            # full grid
    PYTHONPATH=src python bench/scenario_bench.py --quick    # CI-sized
    PYTHONPATH=src python bench/scenario_bench.py --check    # enforce
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.ledger import scenario_report_bytes
from repro.serve.scenarios import SCENARIOS, ScenarioRunner, get_scenario

#: --quick shrinks every scenario window to this factor (rates and the
#: fleet stay untouched, so overload scenarios still overload)
QUICK_SCALE = 0.3


def scores_by_request(runner: ScenarioRunner) -> dict:
    """request id -> served score row, from the finished ledger."""
    report = runner.serving_report
    return {
        record.request_id: report.scores[pos]
        for pos, record in enumerate(report.records)
    }


def run_scenario_entry(name: str, scale: float) -> dict:
    """Both conformance runs plus the grid row for one scenario."""
    scenario = get_scenario(name, scale=scale)

    first = ScenarioRunner(scenario)
    report = first.run()
    # reuse the trained models for the repeat runs: determinism of the
    # replay is what is under test, and training is itself covered by
    # the repeat run of the no-cache variant below
    registry, cuts = first.registry, first.cuts
    second = ScenarioRunner(scenario, registry=registry, cuts=cuts)
    replay = second.run()
    deterministic = (scenario_report_bytes(report)
                     == scenario_report_bytes(replay))

    cache_exact = True
    if scenario.cache_capacity > 0:
        bare = dataclasses.replace(scenario, cache_capacity=0)
        third = ScenarioRunner(bare, registry=registry, cuts=cuts)
        third.run()
        with_cache = scores_by_request(first)
        without = scores_by_request(third)
        cache_exact = set(with_cache) == set(without) and all(
            np.array_equal(with_cache[rid], without[rid])
            for rid in with_cache
        )

    totals = report["totals"]
    tenants = {
        tenant: {
            "priority": stats["priority"],
            "p99_s": stats["p99_s"],
            "drop_rate": stats["drop_rate"],
            "slo_violation_rate": stats["slo_violation_rate"],
        }
        for tenant, stats in report["tenants"].items()
    }
    cache = report["cache"]
    hit = "-" if cache is None else f"{cache['hit_rate']:.1%}"
    print(f"  {name:22s} arrivals={totals['arrivals']:6,} "
          f"drop={totals['drop_rate']:6.1%} "
          f"p99={totals['p99_s'] * 1e3:7.2f}ms "
          f"slo-viol={totals['slo_violation_rate']:6.1%} "
          f"cache={hit} det={deterministic} "
          f"cache_exact={cache_exact}")
    return {
        "seed": scenario.seed,
        "arrivals": totals["arrivals"],
        "served": totals["served"],
        "dropped": totals["dropped"],
        "drop_rate": totals["drop_rate"],
        "p50_s": totals["p50_s"],
        "p99_s": totals["p99_s"],
        "slo_violation_rate": totals["slo_violation_rate"],
        "throughput_rps": totals["throughput_rps"],
        "tenants": tenants,
        "cache": cache,
        "wire": report["wire"],
        "versions_served": report["versions_served"],
        "invariants": report["invariants"],
        "deterministic": deterministic,
        "cache_exact": cache_exact,
    }


def run_model_grid(quick: bool) -> list:
    """Batch x trees x depth cells over the steady scenario.

    Models are trained once per (trees, depth) shape and reused across
    the batch-size axis (only the batching policy changes there), so
    the grid isolates each axis the way the paper's inference
    comparison does.  The deterministic service model scales its
    per-row cost with ``trees * depth`` (the predictor walks every tree
    level per row) and the batching window stretches to ``batch /
    offered_rate`` so the batch-size axis actually binds — otherwise
    every cell would replay the identical schedule.
    """
    base = get_scenario("steady", scale=0.15 if quick else 0.4)
    offered_rate = sum(t.rate_rps for t in base.tenants)
    base_shape_cost = 4 * 4
    batches = (32, 128) if quick else (32, 64, 128)
    trees_grid = (4, 8) if quick else (4, 8, 16)
    layers_grid = (4,) if quick else (3, 5)
    cells = []
    for trees in trees_grid:
        for layers in layers_grid:
            registry, cuts = None, None
            for batch in batches:
                scenario = dataclasses.replace(
                    base, name=f"grid-t{trees}-l{layers}-b{batch}",
                    model_trees=trees, model_layers=layers,
                    max_batch_size=batch,
                    max_delay_s=batch / offered_rate,
                    service_per_row_s=base.service_per_row_s
                    * (trees * layers) / base_shape_cost)
                runner = ScenarioRunner(scenario, registry=registry,
                                        cuts=cuts)
                report = runner.run()
                registry, cuts = runner.registry, runner.cuts
                totals = report["totals"]
                cells.append({
                    "trees": trees,
                    "layers": layers,
                    "batch": batch,
                    "arrivals": totals["arrivals"],
                    "batches": totals["batches"],
                    "p50_s": totals["p50_s"],
                    "p99_s": totals["p99_s"],
                    "throughput_rps": totals["throughput_rps"],
                    "invariants_ok": all(
                        report["invariants"].values()),
                })
                print(f"  grid t={trees:2d} l={layers} b={batch:3d}: "
                      f"p50={totals['p50_s'] * 1e3:6.2f}ms "
                      f"p99={totals['p99_s'] * 1e3:6.2f}ms "
                      f"throughput={totals['throughput_rps']:8.0f}rps")
    return cells


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (scaled-down windows)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on any conformance failure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_scenarios.json")
    args = parser.parse_args()

    mode = "quick" if args.quick else "full"
    scale = QUICK_SCALE if args.quick else 1.0
    print(f"scenario bench ({mode} workload, scale={scale})")
    grid = {name: run_scenario_entry(name, scale) for name in SCENARIOS}
    model_grid = run_model_grid(args.quick)

    report = {
        "generated_by": "bench/scenario_bench.py",
        "mode": mode,
        "scale": scale,
        "numpy": np.__version__,
        "scenarios": grid,
        "model_grid": model_grid,
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")

    ok = True
    for name, entry in grid.items():
        if not entry["deterministic"]:
            ok = False
            print(f"MISSED: {name} replay is not byte-identical")
        if not entry["cache_exact"]:
            ok = False
            print(f"MISSED: {name} cache-on scores differ from "
                  "cache-off")
        for invariant, held in entry["invariants"].items():
            if not held:
                ok = False
                print(f"MISSED: {name} violated {invariant}")
    sheds = sum(
        entry["dropped"] for name, entry in grid.items()
        if get_scenario(name).overload == "shed-oldest"
    )
    if sheds == 0:
        ok = False
        print("MISSED: no scenario exercised the shed path — the "
              "priority-admission invariant was checked vacuously")
    for cell in model_grid:
        if not cell["invariants_ok"]:
            ok = False
            print(f"MISSED: model-grid cell t={cell['trees']} "
                  f"l={cell['layers']} b={cell['batch']} violated a "
                  "ledger invariant")
    if ok:
        print("all scenario conformance targets met")
    return 0 if (ok or not args.check) else 1


if __name__ == "__main__":
    raise SystemExit(main())
