"""Closed-loop deployment benchmark: the canary/rollback grid.

Runs the full deployment controller over the {healthy, degraded} ×
{serve, shadow} grid under the ``canary-under-fire`` scenario (flash
crowd plus transport faults) and writes ``BENCH_deploy.json``: the
verdict, the decision log, per-version drift-monitor windows, the
observed canary split, and the deploy-plane wire bill for every cell,
plus the conformance results the ``--check`` gate enforces:

* **determinism** — every cell is run twice from its pinned seed (a
  fresh controller each time: provisioning is part of the episode) and
  the two ``deploy-report/v1`` encodings must be byte-identical;
* **verdicts** — the degraded canary (sign-flipped leaves) must end in
  ``rollback`` with zero requests served by the bad version after the
  rollback decision, re-derived from the serving ledger alone; the
  healthy canary (half-size retrain) must end in ``promote``;
* **calibration** — the healthy canary's window logloss must sit well
  inside the rollback margin while the degraded one exceeds it, so the
  policy's thresholds separate the two cases with real headroom rather
  than riding the edge;
* **split** — the ledger-derived canary fraction must fall within
  4-sigma binomial bounds of the routed fraction (and be exactly zero
  in shadow mode);
* **ledger invariants** — conservation, one version per request, no
  canary traffic outside the canary window, straight from the report's
  ``invariants`` block.

Usage::

    PYTHONPATH=src python bench/deploy_bench.py            # full grid
    PYTHONPATH=src python bench/deploy_bench.py --quick    # CI-sized
    PYTHONPATH=src python bench/deploy_bench.py --check    # enforce
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.ledger import report_bytes
from repro.serve.deploy import (CanaryPolicy, DeployController,
                                RollbackPolicy, audit_deploy)
from repro.serve.scenarios import get_scenario

SCENARIO = "canary-under-fire"
QUICK_SCALE = 0.25

#: the grid: candidate quality x routing mode
CELLS = [
    ("healthy", False),
    ("healthy", True),
    ("degraded", False),
    ("degraded", True),
]

EXPECTED_VERDICT = {"healthy": "promote", "degraded": "rollback"}


def run_cell(canary_model: str, shadow: bool, scale: float) -> dict:
    scenario = get_scenario(SCENARIO, scale=scale)
    policy = CanaryPolicy(shadow=shadow)

    first = DeployController(scenario, canary=policy,
                             canary_model=canary_model)
    report = first.run()
    replay = DeployController(scenario, canary=policy,
                              canary_model=canary_model).run()
    deterministic = report_bytes(report) == report_bytes(replay)

    # the no-traffic-after-rollback check, from the raw ledger
    audit = audit_deploy(first.serving_report, report["decisions"],
                         1, 2, shadow=shadow)

    split = report["split"]
    split_ok = True
    if shadow:
        split_ok = split["canary_batches"] == 0
    elif split["window_batches"] > 0:
        n, p = split["window_batches"], split["target_fraction"]
        sigma = (p * (1 - p) / n) ** 0.5
        split_ok = abs(split["observed_fraction"] - p) \
            <= 4 * sigma + 1e-9

    monitor = report["monitor"]
    mode = "shadow" if shadow else "serve"
    print(f"  {canary_model:9s} {mode:6s} verdict={report['verdict']:9s}"
          f" canary_ll={monitor['2']['logloss']:.4f}"
          f" incumbent_ll={monitor['1']['logloss']:.4f}"
          f" split={split['observed_fraction']:5.1%}"
          f" det={deterministic}")
    return {
        "scenario": SCENARIO,
        "seed": report["seed"],
        "canary_model": canary_model,
        "mode": mode,
        "verdict": report["verdict"],
        "decisions": report["decisions"],
        "monitor": monitor,
        "split": split,
        "serving": report["serving"],
        "wire": report["wire"],
        "invariants": report["invariants"],
        "audit": {k: v for k, v in audit.items() if k != "split"},
        "deterministic": deterministic,
        "split_ok": split_ok,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (scaled-down window)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on any conformance failure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_deploy.json")
    args = parser.parse_args()

    mode = "quick" if args.quick else "full"
    scale = QUICK_SCALE if args.quick else 1.0
    print(f"deploy bench ({mode} workload, scale={scale})")
    grid = {
        f"{model}-{'shadow' if shadow else 'serve'}":
            run_cell(model, shadow, scale)
        for model, shadow in CELLS
    }

    report = {
        "generated_by": "bench/deploy_bench.py",
        "mode": mode,
        "scale": scale,
        "numpy": np.__version__,
        "cells": grid,
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")

    ok = True
    for name, cell in grid.items():
        want = EXPECTED_VERDICT[cell["canary_model"]]
        if cell["verdict"] != want:
            ok = False
            print(f"MISSED: {name} ended {cell['verdict']!r}, "
                  f"expected {want!r}")
        if not cell["deterministic"]:
            ok = False
            print(f"MISSED: {name} replay is not byte-identical")
        if not cell["split_ok"]:
            ok = False
            print(f"MISSED: {name} split outside binomial bounds")
        for source in ("invariants", "audit"):
            for invariant, held in cell[source].items():
                if not held:
                    ok = False
                    print(f"MISSED: {name} violated {invariant}")
    # calibration headroom: the margin must separate the two candidates
    # decisively, not by luck
    margin = RollbackPolicy().logloss_margin
    for shadow in ("serve", "shadow"):
        good = grid[f"healthy-{shadow}"]["monitor"]
        bad = grid[f"degraded-{shadow}"]["monitor"]
        gap_good = good["2"]["logloss"] - good["1"]["logloss"]
        gap_bad = bad["2"]["logloss"] - bad["1"]["logloss"]
        if gap_good > margin / 2:
            ok = False
            print(f"MISSED: healthy-{shadow} logloss gap {gap_good:.3f} "
                  "rides the rollback margin")
        if gap_bad < margin * 1.25:
            ok = False
            print(f"MISSED: degraded-{shadow} logloss gap {gap_bad:.3f} "
                  "barely clears the rollback margin")
    if ok:
        print("all deployment conformance targets met")
    return 0 if (ok or not args.check) else 1


if __name__ == "__main__":
    raise SystemExit(main())
