"""Pinned copies of the original (pre-builder) histogram kernels.

These are the kernels exactly as shipped in the seed revision, kept here
so ``kernel_bench.py`` can measure the builder engine against a stable
"before" baseline without checking out old code.  Do not optimize this
file — its whole value is staying frozen.

``SeedBuilder`` wraps the copies behind the same call surface as
:class:`repro.core.histogram.HistogramBuilder`, so it can be injected
into the reference trainer for end-to-end before/after runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.histogram import Histogram
from repro.data.matrix import CSCMatrix, CSRMatrix


def seed_build_rowstore(
    shard: CSRMatrix,
    rows: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[Histogram, int]:
    rows = np.asarray(rows, dtype=np.int64)
    gradient_dim = grad.shape[1]
    hist = Histogram(shard.num_cols, num_bins, gradient_dim)
    lengths = np.diff(shard.indptr)[rows]
    total = int(lengths.sum())
    if total == 0:
        return hist, 0
    starts = shard.indptr[rows]
    offsets = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(lengths)))[:-1], lengths
    )
    entry_pos = np.repeat(starts, lengths) + offsets
    entry_rows = np.repeat(rows, lengths)
    keys = (
        shard.indices[entry_pos].astype(np.int64) * num_bins
        + shard.values[entry_pos]
    )
    size = shard.num_cols * num_bins
    for c in range(gradient_dim):
        hist.grad[:, c] = np.bincount(
            keys, weights=grad[entry_rows, c], minlength=size
        )
        hist.hess[:, c] = np.bincount(
            keys, weights=hess[entry_rows, c], minlength=size
        )
    return hist, total


def seed_build_colstore_layer(
    shard: CSCMatrix,
    slot_of_instance: np.ndarray,
    num_slots: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[List[Histogram], int]:
    gradient_dim = grad.shape[1]
    hists = [
        Histogram(shard.num_cols, num_bins, gradient_dim)
        for _ in range(num_slots)
    ]
    if shard.nnz == 0 or num_slots == 0:
        return hists, 0
    col_of = np.repeat(
        np.arange(shard.num_cols, dtype=np.int64), np.diff(shard.indptr)
    )
    entry_rows = shard.indices.astype(np.int64)
    slots = slot_of_instance[entry_rows].astype(np.int64)
    active = slots >= 0
    col_of = col_of[active]
    rows = entry_rows[active]
    slots = slots[active]
    bins = shard.values[active].astype(np.int64)
    size = shard.num_cols * num_bins
    keys = slots * size + col_of * num_bins + bins
    for c in range(gradient_dim):
        grad_flat = np.bincount(
            keys, weights=grad[rows, c], minlength=num_slots * size
        )
        hess_flat = np.bincount(
            keys, weights=hess[rows, c], minlength=num_slots * size
        )
        for s in range(num_slots):
            hists[s].grad[:, c] = grad_flat[s * size:(s + 1) * size]
            hists[s].hess[:, c] = hess_flat[s * size:(s + 1) * size]
    return hists, int(shard.nnz)


def seed_build_colstore_hybrid(
    shard: CSCMatrix,
    node_rows: np.ndarray,
    node_of_instance: np.ndarray,
    node_id: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[Histogram, int, int]:
    node_rows = np.asarray(node_rows, dtype=np.int64)
    gradient_dim = grad.shape[1]
    hist = Histogram(shard.num_cols, num_bins, gradient_dim)
    scanned = 0
    searched = 0
    grad_v = hist.grad_view()
    hess_v = hist.hess_view()
    node_size = node_rows.size
    for j in range(shard.num_cols):
        col_rows, col_bins = shard.col(j)
        nnz = col_rows.size
        if nnz == 0:
            continue
        log_cost = node_size * max(int(np.log2(nnz)), 1)
        if nnz <= log_cost:
            scanned += nnz
            keep = node_of_instance[col_rows] == node_id
            rows = col_rows[keep].astype(np.int64)
            bins = col_bins[keep].astype(np.int64)
        else:
            searched += node_size
            pos = np.searchsorted(col_rows, node_rows)
            pos = np.minimum(pos, nnz - 1)
            keep = col_rows[pos] == node_rows
            rows = node_rows[keep]
            bins = col_bins[pos[keep]].astype(np.int64)
        if rows.size == 0:
            continue
        for c in range(gradient_dim):
            grad_v[j, :, c] += np.bincount(
                bins, weights=grad[rows, c], minlength=num_bins
            )
            hess_v[j, :, c] += np.bincount(
                bins, weights=hess[rows, c], minlength=num_bins
            )
    return hist, scanned, searched


class SeedColumnwiseIndex:
    """The original ColumnwiseIndex: re-fetches and re-casts per call."""

    def __init__(self, shard: CSCMatrix) -> None:
        self.shard = shard
        self.order = [
            np.arange(int(n), dtype=np.int64) for n in shard.col_lengths()
        ]
        self.slices: List[Dict[int, Tuple[int, int]]] = [
            {0: (0, int(n))} for n in shard.col_lengths()
        ]

    def node_entries(self, col: int,
                     node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        lo_hi = self.slices[col].get(node_id)
        if lo_hi is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        lo, hi = lo_hi
        col_rows, col_bins = self.shard.col(col)
        sel = self.order[col][lo:hi]
        return col_rows[sel].astype(np.int64), col_bins[sel].astype(np.int64)

    def update_after_split(self, node_of_instance: np.ndarray,
                           active_nodes: Sequence[int]) -> int:
        moved = 0
        active = set(int(n) for n in active_nodes)
        for col in range(self.shard.num_cols):
            col_rows, _ = self.shard.col(col)
            if col_rows.size == 0:
                self.slices[col] = {}
                continue
            nodes = node_of_instance[col_rows.astype(np.int64)]
            order = np.argsort(nodes, kind="stable")
            self.order[col] = order.astype(np.int64)
            moved += order.size
            sorted_nodes = nodes[order]
            bounds = np.flatnonzero(
                np.concatenate(
                    ([True], sorted_nodes[1:] != sorted_nodes[:-1])
                )
            )
            ends = np.concatenate((bounds[1:], [sorted_nodes.size]))
            self.slices[col] = {
                int(sorted_nodes[lo]): (int(lo), int(hi))
                for lo, hi in zip(bounds, ends)
                if int(sorted_nodes[lo]) in active
            }
        return moved


def seed_build_colstore_columnwise(
    index: "SeedColumnwiseIndex",
    node_id: int,
    grad: np.ndarray,
    hess: np.ndarray,
    num_bins: int,
) -> Tuple[Histogram, int]:
    shard = index.shard
    gradient_dim = grad.shape[1]
    hist = Histogram(shard.num_cols, num_bins, gradient_dim)
    grad_v = hist.grad_view()
    hess_v = hist.hess_view()
    touched = 0
    for j in range(shard.num_cols):
        rows, bins = index.node_entries(j, node_id)
        if rows.size == 0:
            continue
        touched += rows.size
        for c in range(gradient_dim):
            grad_v[j, :, c] += np.bincount(
                bins, weights=grad[rows, c], minlength=num_bins
            )
            hess_v[j, :, c] += np.bincount(
                bins, weights=hess[rows, c], minlength=num_bins
            )
    return hist, touched


class SeedBuilder:
    """Seed kernels behind the HistogramBuilder call surface.

    Inject into :class:`repro.core.gbdt.GBDT` for an end-to-end "before"
    measurement: every histogram is freshly allocated and nothing is
    recycled, exactly like the seed revision.
    """

    def build_rowstore(self, shard, rows, grad, hess, num_bins):
        return seed_build_rowstore(shard, rows, grad, hess, num_bins)

    def build_colstore_layer(self, shard, slot_of_instance, num_slots,
                             grad, hess, num_bins):
        return seed_build_colstore_layer(
            shard, slot_of_instance, num_slots, grad, hess, num_bins
        )

    def build_colstore_hybrid(self, shard, node_rows, node_of_instance,
                              node_id, grad, hess, num_bins):
        return seed_build_colstore_hybrid(
            shard, node_rows, node_of_instance, node_id, grad, hess,
            num_bins,
        )

    def build_colstore_columnwise(self, index, node_id, grad, hess,
                                  num_bins):
        return seed_build_colstore_columnwise(
            index, node_id, grad, hess, num_bins
        )

    def subtract(self, parent: Histogram, child: Histogram) -> Histogram:
        return parent.subtract(child)

    def release(self, hist: Optional[Histogram]) -> None:
        pass
