"""Kernel-backend benchmark: histogram and predictor hot paths.

Measures, for every available :mod:`repro.core.kernels` backend,
ops/sec of the histogram scatter grid (the four construction-kernel
entry points on the full ``bench/kernel_bench.py``-style workload)
relative to the numpy baseline, plus the serving ablation: the uint8
bin-quantized predictor against the float compiled predictor at batch
10k on a wide model.  Before any timing it proves the registry-wide
bit-identity contract — identical trees from every backend on all 8
execution plans — and pins the measured speedups into
``BENCH_backends.json``.

Usage::

    PYTHONPATH=src python bench/backend_bench.py            # full workload
    PYTHONPATH=src python bench/backend_bench.py --quick    # CI-sized
    PYTHONPATH=src python bench/backend_bench.py --check    # enforce targets

Targets: numba histogram >= 2x numpy on the full-workload grid
(enforced only where numba is importable — the numpy-only CI job proves
graceful degradation instead); quantized predictor >= 1.5x the float
compiled predictor at batch 10k (always enforced).  ``pyloop`` is a
correctness oracle, never gated on speed.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.config import ClusterConfig, TrainConfig
from repro.core.gbdt import GBDT
from repro.core.histogram import HistogramBuilder
from repro.core.kernels import available_backends
from repro.data.dataset import bin_dataset
from repro.data.synthetic import make_classification
from repro.serve.compiler import compile_ensemble, quantize_ensemble
from repro.systems.plans import get_plan, plan_keys

NUM_BINS = 20
NUMBA_HIST_TARGET = 2.0
QUANTIZED_TARGET = 1.5
#: backends gated on speed when available (pyloop is a correctness
#: oracle and would dominate the runtime if timed on the full grid)
TIMED_BACKENDS = ("numpy", "numba")


def time_ops(fn, min_seconds: float, max_reps: int = 2000,
             windows: int = 3) -> float:
    """Best-of-``windows`` ops/sec of ``fn`` (see kernel_bench)."""
    fn()  # warmup — also triggers any one-off JIT compilation
    best = 0.0
    for _ in range(windows):
        reps = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_seconds and reps < max_reps:
            fn()
            reps += 1
            elapsed = time.perf_counter() - start
        best = max(best, reps / elapsed)
    return best


def tree_signature(tree) -> tuple:
    items = []
    for node_id in sorted(tree.nodes):
        node = tree.nodes[node_id]
        if node.is_leaf:
            items.append((node_id, "leaf",
                          tuple(np.asarray(node.weight).ravel().tolist())))
        else:
            items.append((node_id, "split", node.split.feature,
                          node.threshold))
    return tuple(items)


def check_plan_identity(backends, quick: bool) -> dict:
    """Bit-identical trees from every backend on all 8 registry plans."""
    dataset = make_classification(400 if quick else 800, 20, density=0.4,
                                  seed=7)
    binned = bin_dataset(dataset, 8)
    cluster = ClusterConfig(num_workers=4)
    report = {}
    for plan_key in plan_keys():
        signatures = {}
        for backend in backends:
            cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8,
                              backend=backend)
            res = get_plan(plan_key).build(cfg, cluster).fit(binned)
            signatures[backend] = tuple(tree_signature(t)
                                        for t in res.ensemble.trees)
        baseline = signatures["numpy"]
        divergent = [b for b, sig in signatures.items() if sig != baseline]
        report[plan_key] = {"bit_identical": not divergent,
                            "backends": list(backends)}
        if divergent:
            report[plan_key]["divergent"] = divergent
        state = "ok" if not divergent else f"DIVERGED: {divergent}"
        print(f"  {plan_key:14s} {state}")
    return report


def bench_histogram_grid(backends, quick: bool) -> dict:
    """Ops/sec of the four construction kernels per timed backend."""
    if quick:
        num_rows, num_features = 4_000, 120
    else:
        num_rows, num_features = 20_000, 500
    dataset = make_classification(num_rows, num_features, density=0.1,
                                  seed=99)
    binned = bin_dataset(dataset, NUM_BINS)
    csr = binned.binned
    csc = binned.csc()
    rng = np.random.default_rng(0)
    grad = rng.standard_normal((num_rows, 1))
    hess = rng.random((num_rows, 1))
    node_of = rng.integers(0, 2, size=num_rows).astype(np.int64)
    rows = np.flatnonzero(node_of == 1)
    all_rows = np.arange(num_rows, dtype=np.int64)
    min_s = 0.2 if quick else 0.6

    grid = {}
    baseline = {}
    for backend in backends:
        builder = HistogramBuilder(backend=backend)

        def hist_cases(b):
            return {
                "rowstore_root": lambda: b.release(
                    b.build_rowstore(csr, all_rows, grad, hess,
                                     NUM_BINS)[0]),
                "rowstore_node": lambda: b.release(
                    b.build_rowstore(csr, rows, grad, hess, NUM_BINS)[0]),
                "colstore_hybrid": lambda: b.release(
                    b.build_colstore_hybrid(csc, rows, node_of, 1, grad,
                                            hess, NUM_BINS)[0]),
            }

        def layer_case():
            hists, _ = builder.build_colstore_layer(csc, node_of, 2, grad,
                                                    hess, NUM_BINS)
            for h in hists:
                builder.release(h)

        cases = hist_cases(builder)
        cases["colstore_layer"] = layer_case
        entry = {}
        for name, fn in cases.items():
            ops = time_ops(fn, min_s)
            record = {"ops": round(ops, 3)}
            if backend == "numpy":
                baseline[name] = ops
            else:
                record["speedup_vs_numpy"] = round(ops / baseline[name], 3)
            entry[name] = record
            rel = "" if backend == "numpy" else \
                f" ({ops / baseline[name]:5.2f}x vs numpy)"
            print(f"  {backend:8s} {name:20s} {ops:10.2f} ops/s{rel}")
        ratios = [entry[n]["speedup_vs_numpy"] for n in entry
                  if "speedup_vs_numpy" in entry[n]]
        if ratios:
            entry["grid_speedup"] = round(min(ratios), 3)
        grid[backend] = entry
    return grid


def bench_predictors(quick: bool) -> dict:
    """Float compiled predictor vs uint8 quantized at batch 10k."""
    if quick:
        batch_rows, num_features, trees, layers = 2_000, 60, 10, 6
    else:
        batch_rows, num_features, trees, layers = 10_000, 400, 40, 7
    train = make_classification(3_000, num_features, density=0.3, seed=11)
    binned = bin_dataset(train, 32)
    cfg = TrainConfig(num_trees=trees, num_layers=layers,
                      num_candidates=32, learning_rate=0.3)
    ensemble = GBDT(cfg).fit(train, binned=binned).ensemble
    compiled = compile_ensemble(ensemble)
    quant = quantize_ensemble(compiled, binned.cuts)

    batch = make_classification(batch_rows, num_features, density=0.3,
                                seed=12)
    dense = compiled.densify(batch.csc())
    binned_batch = quant.bin_batch(batch.csc())
    float_scores = compiled.raw_scores(dense)
    quant_scores = quant.raw_scores_binned(binned_batch)
    exact = bool(np.array_equal(float_scores, quant_scores))
    assert exact, "quantized predictor diverged from the float path"

    min_s = 0.3 if quick else 1.0
    float_ops = time_ops(lambda: compiled.raw_scores(dense), min_s)
    quant_ops = time_ops(lambda: quant.raw_scores_binned(binned_batch),
                         min_s)
    speedup = quant_ops / float_ops
    print(f"  float compiled   {float_ops:10.2f} batches/s")
    print(f"  uint8 quantized  {quant_ops:10.2f} batches/s "
          f"({speedup:5.2f}x), exact={exact}")
    return {
        "batch_rows": batch_rows,
        "model": {"trees": trees, "layers": layers,
                  "features": num_features},
        "float_ops": round(float_ops, 3),
        "quantized_ops": round(quant_ops, 3),
        "quantized_speedup": round(speedup, 3),
        "bit_identical": exact,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if perf targets are missed")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_backends.json")
    args = parser.parse_args()

    available = available_backends()
    timed = [b for b in TIMED_BACKENDS if b in available]
    mode = "quick" if args.quick else "full"
    print(f"backend bench ({mode} workload); available: "
          f"{', '.join(available)}")

    print("plan bit-identity (all 8 registry plans):")
    plans = check_plan_identity(available, args.quick)
    print("histogram grid:")
    grid = bench_histogram_grid(timed, args.quick)
    print(f"predictor ablation (batch "
          f"{2000 if args.quick else 10000}):")
    predictor = bench_predictors(args.quick)

    numba_speedup = grid.get("numba", {}).get("grid_speedup")
    report = {
        "generated_by": "bench/backend_bench.py",
        "mode": mode,
        "numpy": np.__version__,
        "available_backends": available,
        "targets": {
            "numba_histogram_min": NUMBA_HIST_TARGET,
            "quantized_predictor_min": QUANTIZED_TARGET,
            "quantized_gate_mode": "full",
        },
        "plan_bit_identity": plans,
        "histogram": grid,
        "numba_histogram_speedup": numba_speedup,
        "numba_status": ("measured" if "numba" in available
                         else "skipped: numba not importable "
                              "(numpy fallback active)"),
        "predictor": predictor,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    ok = True
    for plan_key, entry in plans.items():
        if not entry["bit_identical"]:
            ok = False
            print(f"MISSED: plan {plan_key} not bit-identical across "
                  f"backends")
    if "numba" in available:
        if numba_speedup is None or numba_speedup < NUMBA_HIST_TARGET:
            ok = False
            print(f"MISSED: numba histogram grid {numba_speedup}x < "
                  f"{NUMBA_HIST_TARGET}x over numpy")
    else:
        print("numba absent: histogram gate skipped (graceful "
              "degradation to numpy)")
    if not predictor["bit_identical"]:
        ok = False
        print("MISSED: quantized predictor not bit-identical")
    if args.quick:
        # the speedup target is defined at batch 10k on the wide model;
        # the CI-sized batch is too small for the cache effect to show
        print("quick mode: quantized speed gate deferred to the full "
              "workload (bit-identity still enforced)")
    elif predictor["quantized_speedup"] < QUANTIZED_TARGET:
        ok = False
        print(f"MISSED: quantized predictor "
              f"{predictor['quantized_speedup']}x < {QUANTIZED_TARGET}x "
              f"over the float compiled path")
    if ok:
        print("all backend targets met")
    return 0 if (ok or not args.check) else 1


if __name__ == "__main__":
    raise SystemExit(main())
