"""Candidate-split proposal tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.proposer import (bin_values, num_bins,
                                   propose_candidates,
                                   propose_candidates_exact)
from repro.sketch.quantile import MergingSketch


class TestExactProposal:
    def test_strictly_increasing(self, rng):
        values = rng.standard_normal(1000)
        cuts = propose_candidates_exact(values, 20)
        assert np.all(np.diff(cuts) > 0)
        assert cuts.size <= 19

    def test_excludes_maximum(self, rng):
        values = rng.standard_normal(500)
        cuts = propose_candidates_exact(values, 10)
        assert cuts.max() < values.max()

    def test_few_distinct_values(self):
        values = np.array([1.0, 1.0, 2.0, 2.0, 2.0])
        cuts = propose_candidates_exact(values, 20)
        # only one interior cut possible: at 1.0
        np.testing.assert_array_equal(cuts, [1.0])

    def test_constant_feature_has_no_cuts(self):
        cuts = propose_candidates_exact(np.full(100, 3.5), 20)
        assert cuts.size == 0

    def test_empty_input(self):
        assert propose_candidates_exact(np.empty(0), 20).size == 0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            propose_candidates_exact(np.arange(5.0), 0)

    def test_single_candidate_means_no_cuts(self, rng):
        cuts = propose_candidates_exact(rng.standard_normal(100), 1)
        assert cuts.size == 0


class TestSketchProposal:
    def test_matches_exact_roughly(self, rng):
        values = rng.standard_normal(20_000)
        sketch = MergingSketch(eps=0.005)
        sketch.update(values)
        approx = propose_candidates(sketch, 10)
        exact = propose_candidates_exact(values, 10)
        assert approx.size == exact.size
        # each approximate cut lands within a small rank band of the exact
        ranks_a = np.searchsorted(np.sort(values), approx) / values.size
        ranks_e = np.searchsorted(np.sort(values), exact) / values.size
        assert np.max(np.abs(ranks_a - ranks_e)) < 0.03

    def test_empty_sketch(self):
        assert propose_candidates(MergingSketch(), 8).size == 0


class TestBinning:
    def test_bin_values_semantics(self):
        cuts = np.array([1.0, 3.0, 7.0])
        values = np.array([0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 9.0])
        bins = bin_values(values, cuts)
        # bin b holds values in (cuts[b-1], cuts[b]]
        np.testing.assert_array_equal(bins, [0, 0, 1, 1, 2, 2, 3])

    def test_split_at_bin_b_means_leq_cut(self, rng):
        values = rng.standard_normal(400)
        cuts = propose_candidates_exact(values, 12)
        bins = bin_values(values, cuts)
        for b in range(cuts.size):
            np.testing.assert_array_equal(bins <= b, values <= cuts[b])

    def test_num_bins(self):
        cuts = [np.array([1.0, 2.0]), np.array([]), np.array([5.0])]
        assert num_bins(cuts) == [3, 1, 2]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), q=st.integers(2, 32))
def test_property_binning_consistency(seed, q):
    """Bins are within range and reproduce threshold routing exactly."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(300)
    cuts = propose_candidates_exact(values, q)
    bins = bin_values(values, cuts)
    assert bins.min() >= 0
    assert bins.max() <= cuts.size
    for b in range(cuts.size):
        np.testing.assert_array_equal(bins <= b, values <= cuts[b])
