"""Quantile sketch tests: rank-error guarantees and merging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.quantile import GKSketch, MergingSketch


def rank_error(values: np.ndarray, answer: float, quantile: float) -> float:
    """Normalized rank error of ``answer`` for ``quantile`` over values."""
    values = np.sort(values)
    target = quantile * values.size
    lo = np.searchsorted(values, answer, side="left")
    hi = np.searchsorted(values, answer, side="right")
    # distance from the closest admissible rank of the answer
    if lo <= target <= hi:
        return 0.0
    return min(abs(lo - target), abs(hi - target)) / values.size


class TestGKSketch:
    def test_rejects_bad_eps(self):
        for eps in (0.0, 0.5, -1.0):
            with pytest.raises(ValueError):
                GKSketch(eps=eps)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError, match="empty"):
            GKSketch().query(0.5)

    def test_bad_quantile_raises(self):
        sketch = GKSketch()
        sketch.insert(1.0)
        with pytest.raises(ValueError):
            sketch.query(1.5)

    def test_exact_on_small_input(self):
        sketch = GKSketch(eps=0.01)
        sketch.update(range(1, 101))
        assert sketch.query(0.0) == 1
        assert sketch.query(1.0) == 100
        assert abs(sketch.query(0.5) - 50) <= 2

    def test_rank_error_bound(self, rng):
        values = rng.standard_normal(3000)
        sketch = GKSketch(eps=0.02)
        sketch.update(values)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert rank_error(values, sketch.query(q), q) <= 0.02 + 1e-9

    def test_compress_bounds_size(self, rng):
        values = rng.standard_normal(5000)
        sketch = GKSketch(eps=0.05)
        sketch.update(values)
        sketch.compress()
        # GK keeps O(1/eps * log(eps*N)) tuples; generous envelope
        assert sketch.size < 60 / 0.05

    def test_merge_error_adds(self, rng):
        a_vals = rng.standard_normal(2000)
        b_vals = rng.standard_normal(2000) + 0.5
        a = GKSketch(eps=0.02)
        b = GKSketch(eps=0.02)
        a.update(a_vals)
        b.update(b_vals)
        merged = a.merge(b)
        combined = np.concatenate([a_vals, b_vals])
        assert merged.count == 4000
        for q in (0.25, 0.5, 0.75):
            assert rank_error(combined, merged.query(q), q) <= 0.04 + 1e-9

    def test_serialized_nbytes(self):
        sketch = GKSketch()
        sketch.update(range(50))
        assert sketch.serialized_nbytes == 16 * sketch.size


class TestMergingSketch:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            MergingSketch(eps=0.0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError, match="empty"):
            MergingSketch().query(0.5)

    def test_extremes_are_exact(self, rng):
        values = rng.standard_normal(10_000)
        sketch = MergingSketch(eps=0.01)
        sketch.update(values)
        assert sketch.query(0.0) == values.min()
        assert sketch.query(1.0) == values.max()

    def test_rank_error(self, rng):
        values = rng.standard_normal(50_000)
        sketch = MergingSketch(eps=0.01)
        # feed in batches to exercise compaction
        for chunk in np.array_split(values, 13):
            sketch.update(chunk)
        for q in np.linspace(0.05, 0.95, 10):
            assert rank_error(values, sketch.query(q), q) <= 0.02

    def test_merge_rank_error(self, rng):
        a_vals = rng.standard_normal(20_000)
        b_vals = 2 * rng.standard_normal(15_000) - 1
        a = MergingSketch(eps=0.01)
        b = MergingSketch(eps=0.01)
        a.update(a_vals)
        b.update(b_vals)
        merged = a.merge(b)
        combined = np.concatenate([a_vals, b_vals])
        assert merged.count == combined.size
        for q in (0.1, 0.5, 0.9):
            assert rank_error(combined, merged.query(q), q) <= 0.03

    def test_summary_stays_bounded(self, rng):
        sketch = MergingSketch(eps=0.02, buffer_size=512)
        for _ in range(20):
            sketch.update(rng.standard_normal(1000))
        sketch._fold_buffer()
        assert sketch.size <= sketch.max_summary + 1

    def test_quantiles_vector(self, rng):
        sketch = MergingSketch()
        sketch.update(rng.standard_normal(1000))
        out = sketch.quantiles([0.25, 0.5, 0.75])
        assert out.shape == (3,)
        assert np.all(np.diff(out) >= 0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    size=st.integers(100, 5000),
    scale=st.floats(0.1, 100, allow_nan=False),
)
def test_property_merging_sketch_rank_error(seed, size, scale):
    """Median query error stays within 3x the nominal epsilon for arbitrary
    scales and sizes (the compaction is conservative)."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(size) * scale
    sketch = MergingSketch(eps=0.02)
    sketch.update(values)
    assert rank_error(values, sketch.query(0.5), 0.5) <= 0.06


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), splits=st.integers(2, 6))
def test_property_merge_preserves_count(seed, splits):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(4000)
    parts = np.array_split(values, splits)
    sketches = []
    for part in parts:
        sk = MergingSketch(eps=0.02)
        sk.update(part)
        sketches.append(sk)
    merged = sketches[0]
    for sk in sketches[1:]:
        merged = merged.merge(sk)
    assert merged.count == values.size
    assert merged.query(0.0) == values.min()
    assert merged.query(1.0) == values.max()
