"""KLL sketch tests: rank error, merging, space bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.kll import KLLSketch

from .test_quantile import rank_error


class TestKLL:
    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            KLLSketch(k=4)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError, match="empty"):
            KLLSketch().query(0.5)

    def test_bad_quantile(self):
        sketch = KLLSketch()
        sketch.insert(1.0)
        with pytest.raises(ValueError):
            sketch.query(-0.1)

    def test_extremes_exact(self, rng):
        values = rng.standard_normal(50_000)
        sketch = KLLSketch(k=128, seed=1)
        for chunk in np.array_split(values, 17):
            sketch.update(chunk)
        assert sketch.query(0.0) == values.min()
        assert sketch.query(1.0) == values.max()

    def test_rank_error(self, rng):
        values = rng.standard_normal(100_000)
        sketch = KLLSketch(k=256, seed=2)
        sketch.update(values)
        for q in np.linspace(0.05, 0.95, 10):
            assert rank_error(values, sketch.query(q), q) <= 0.02

    def test_space_sublinear(self, rng):
        sketch = KLLSketch(k=128, seed=3)
        sketch.update(rng.standard_normal(200_000))
        assert sketch.size < 3_000  # << 200K retained items

    def test_merge_rank_error(self, rng):
        a_vals = rng.standard_normal(40_000)
        b_vals = rng.standard_normal(30_000) * 3 + 1
        a = KLLSketch(k=256, seed=4)
        b = KLLSketch(k=256, seed=5)
        a.update(a_vals)
        b.update(b_vals)
        merged = a.merge(b)
        combined = np.concatenate([a_vals, b_vals])
        assert merged.count == combined.size
        for q in (0.1, 0.5, 0.9):
            assert rank_error(combined, merged.query(q), q) <= 0.03

    def test_quantiles_monotone(self, rng):
        sketch = KLLSketch(k=64, seed=6)
        sketch.update(rng.standard_normal(10_000))
        out = sketch.quantiles(np.linspace(0.1, 0.9, 9))
        assert np.all(np.diff(out) >= 0)

    def test_small_stream_exact(self):
        sketch = KLLSketch(k=64)
        sketch.update(np.arange(50.0))
        # below capacity nothing is compacted: all queries exact
        assert sketch.query(0.5) in (24.0, 25.0)
        assert sketch.size == 50

    def test_serialized_nbytes(self, rng):
        sketch = KLLSketch(k=64)
        sketch.update(rng.standard_normal(1000))
        assert sketch.serialized_nbytes == 16 * sketch.size


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(500, 20_000))
def test_property_kll_median_error(seed, size):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(size)
    sketch = KLLSketch(k=200, seed=seed)
    sketch.update(values)
    assert rank_error(values, sketch.query(0.5), 0.5) <= 0.05


class TestKLLAsProposer:
    def test_candidate_proposal_via_kll(self, rng):
        """KLL plugs into the candidate-split proposer (duck-typed)."""
        from repro.sketch.proposer import (propose_candidates,
                                           propose_candidates_exact)

        values = rng.standard_normal(30_000)
        sketch = KLLSketch(k=256, seed=7)
        sketch.update(values)
        approx = propose_candidates(sketch, 16)
        exact = propose_candidates_exact(values, 16)
        assert approx.size == exact.size
        ranks_a = np.searchsorted(np.sort(values), approx) / values.size
        ranks_e = np.searchsorted(np.sort(values), exact) / values.size
        assert np.max(np.abs(ranks_a - ranks_e)) < 0.03
