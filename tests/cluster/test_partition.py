"""Partitioning tests: shards tile the data; grouping balances load."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partition import (greedy_column_groups, group_imbalance,
                                     hash_column_groups,
                                     horizontal_row_ranges,
                                     horizontal_shards,
                                     round_robin_column_groups,
                                     vertical_shards)


class TestHorizontal:
    def test_ranges_tile_instances(self):
        ranges = horizontal_row_ranges(103, 4)
        assert len(ranges) == 4
        combined = np.concatenate(ranges)
        np.testing.assert_array_equal(combined, np.arange(103))

    def test_near_equal_sizes(self):
        sizes = [r.size for r in horizontal_row_ranges(100, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_rows(self):
        ranges = horizontal_row_ranges(2, 5)
        assert sum(r.size for r in ranges) == 2

    def test_shards_preserve_rows(self, binned_binary):
        shards, ranges = horizontal_shards(binned_binary, 4)
        assert sum(s.num_instances for s in shards) == \
            binned_binary.num_instances
        for shard, rows in zip(shards, ranges):
            np.testing.assert_array_equal(shard.labels,
                                          binned_binary.labels[rows])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            horizontal_row_ranges(10, 0)


class TestColumnGrouping:
    def test_greedy_covers_every_feature_once(self, rng):
        pairs = rng.integers(0, 1000, size=50)
        groups = greedy_column_groups(pairs, 4)
        combined = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_greedy_beats_or_ties_round_robin(self, rng):
        """LPT balances at least as well as round-robin on skewed loads."""
        pairs = (rng.pareto(1.5, size=200) * 100).astype(np.int64) + 1
        greedy = greedy_column_groups(pairs, 8)
        rr = round_robin_column_groups(200, 8)
        assert group_imbalance(greedy, pairs) <= \
            group_imbalance(rr, pairs) + 1e-9

    def test_greedy_lpt_bound(self, rng):
        """LPT guarantee: max load <= mean + max item weight."""
        pairs = rng.integers(1, 500, size=120)
        groups = greedy_column_groups(pairs, 6)
        loads = np.array([pairs[g].sum() for g in groups])
        assert loads.max() <= pairs.sum() / 6 + pairs.max()

    def test_round_robin(self):
        groups = round_robin_column_groups(10, 3)
        np.testing.assert_array_equal(groups[0], [0, 3, 6, 9])
        np.testing.assert_array_equal(groups[2], [2, 5, 8])

    def test_hash_covers_all(self):
        groups = hash_column_groups(77, 4, seed=3)
        combined = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(combined, np.arange(77))

    def test_groups_are_sorted(self, rng):
        pairs = rng.integers(0, 100, size=30)
        for group in greedy_column_groups(pairs, 3):
            assert np.all(np.diff(group) > 0)


class TestVerticalShards:
    def test_features_tile(self, binned_binary):
        shards, groups = vertical_shards(binned_binary, 4)
        combined = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(
            combined, np.arange(binned_binary.num_features)
        )
        assert sum(s.num_features for s in shards) == \
            binned_binary.num_features

    def test_every_shard_has_all_instances(self, binned_binary):
        shards, _ = vertical_shards(binned_binary, 4)
        for shard in shards:
            assert shard.num_instances == binned_binary.num_instances

    def test_shard_columns_match_source(self, binned_binary):
        shards, groups = vertical_shards(binned_binary, 3)
        dense = binned_binary.binned.to_dense()
        for shard, group in zip(shards, groups):
            np.testing.assert_array_equal(
                shard.binned.to_dense(), dense[:, group]
            )

    def test_strategies(self, binned_binary):
        for strategy in ("greedy", "round-robin", "hash"):
            shards, groups = vertical_shards(binned_binary, 3,
                                             strategy=strategy)
            assert len(shards) == 3

    def test_unknown_strategy(self, binned_binary):
        with pytest.raises(ValueError, match="strategy"):
            vertical_shards(binned_binary, 3, strategy="zigzag")

    def test_greedy_balances_pairs(self, binned_sparse):
        shards, groups = vertical_shards(binned_sparse, 4)
        loads = np.array([s.binned.nnz for s in shards])
        assert loads.max() <= loads.mean() * 1.3 + 10


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_features=st.integers(1, 100),
    num_workers=st.integers(1, 10),
)
def test_property_greedy_partition_and_bound(seed, num_features,
                                             num_workers):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, 1000, size=num_features)
    groups = greedy_column_groups(pairs, num_workers)
    assert len(groups) == num_workers
    combined = np.sort(np.concatenate([g for g in groups]))
    np.testing.assert_array_equal(combined, np.arange(num_features))
    loads = np.array([pairs[g].sum() if g.size else 0 for g in groups])
    if pairs.size:
        assert loads.max() <= pairs.sum() / num_workers + pairs.max()
