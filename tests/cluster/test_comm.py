"""Collective communication tests: correctness of the data movement plus
the cost-model byte accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.comm import (SPLIT_INFO_BYTES, allreduce_histograms,
                                broadcast_bytes, exchange_split_infos,
                                gather_bytes, ps_push_histograms,
                                reduce_scatter_histograms)
from repro.cluster.network import SimulatedNetwork
from repro.config import NetworkModel
from repro.core.histogram import Histogram


def random_hists(rng, num_workers=4, num_features=6, num_bins=5,
                 gradient_dim=2):
    hists = []
    for _ in range(num_workers):
        hist = Histogram(num_features, num_bins, gradient_dim)
        hist.grad[:] = rng.standard_normal(hist.grad.shape)
        hist.hess[:] = rng.random(hist.hess.shape)
        hists.append(hist)
    return hists


@pytest.fixture
def net():
    return SimulatedNetwork(NetworkModel(bandwidth_gbps=1.0,
                                         latency_s=0.0))


class TestAllReduce:
    def test_sums_elementwise(self, rng, net):
        hists = random_hists(rng)
        total = allreduce_histograms(hists, net)
        expected = sum(h.grad for h in hists)
        np.testing.assert_allclose(total.grad, expected)

    def test_ring_cost(self, rng, net):
        hists = random_hists(rng, num_workers=4)
        size = hists[0].nbytes
        allreduce_histograms(hists, net)
        # every worker sends 2 * (W-1)/W * size
        assert net.total_bytes == int(2 * 3 / 4 * size * 4)
        assert net.total_seconds == pytest.approx(
            2 * 3 / 4 * size / net.model.bytes_per_second
        )

    def test_single_worker_free(self, rng, net):
        hists = random_hists(rng, num_workers=1)
        allreduce_histograms(hists, net)
        assert net.total_bytes == 0

    def test_empty_raises(self, net):
        with pytest.raises(ValueError):
            allreduce_histograms([], net)


class TestReduceScatter:
    def test_shards_hold_summed_slices(self, rng, net):
        hists = random_hists(rng, num_features=6)
        shards = reduce_scatter_histograms(
            hists,
            [np.array([0, 1]), np.array([2, 3]), np.array([4]),
             np.array([5])],
            net,
        )
        total = sum(h.grad for h in hists).reshape(6, 5, 2)
        np.testing.assert_allclose(
            shards[0].grad_view(), total[[0, 1]]
        )
        np.testing.assert_allclose(
            shards[2].grad_view(), total[[4]]
        )

    def test_cost_is_half_of_allreduce(self, rng):
        hists = random_hists(rng, num_workers=4)
        net_rs = SimulatedNetwork(NetworkModel(latency_s=0.0))
        reduce_scatter_histograms(
            hists, [np.array([i]) for i in range(4)], net_rs
        )
        net_ar = SimulatedNetwork(NetworkModel(latency_s=0.0))
        allreduce_histograms(hists, net_ar)
        assert net_ar.total_bytes == 2 * net_rs.total_bytes

    def test_empty_feature_shard(self, rng, net):
        hists = random_hists(rng)
        shards = reduce_scatter_histograms(
            hists, [np.arange(6), np.array([], dtype=np.int64)], net
        )
        assert np.all(shards[1].grad == 0)


class TestPSPush:
    def test_sums(self, rng, net):
        hists = random_hists(rng)
        total = ps_push_histograms(hists, net)
        np.testing.assert_allclose(total.grad,
                                   sum(h.grad for h in hists))

    def test_cost_full_size_per_worker(self, rng, net):
        hists = random_hists(rng, num_workers=4)
        size = hists[0].nbytes
        ps_push_histograms(hists, net)
        assert net.total_bytes == size * 4
        # elapsed is one full histogram per server link
        assert net.total_seconds == pytest.approx(
            size / net.model.bytes_per_second
        )


class TestSmallCollectives:
    def test_broadcast(self, net):
        seconds = broadcast_bytes(1000, 5, net)
        assert net.total_bytes == 4000
        assert seconds == net.total_seconds

    def test_broadcast_single_worker(self, net):
        assert broadcast_bytes(1000, 1, net) == 0.0
        assert net.total_bytes == 0

    def test_gather(self, net):
        gather_bytes(100, 5, net)
        assert net.total_bytes == 400

    def test_exchange_split_infos(self, net):
        exchange_split_infos(3, 4, net)
        assert net.total_bytes == 3 * SPLIT_INFO_BYTES * 3

    def test_validation(self, net):
        with pytest.raises(ValueError):
            broadcast_bytes(10, 0, net)
        with pytest.raises(ValueError):
            gather_bytes(10, 0, net)
