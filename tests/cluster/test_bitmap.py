"""Placement bitmap tests (Section 4.2.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.bitmap import (bitmap_nbytes, decode_placement,
                                  encode_placement)


class TestBitmap:
    def test_round_trip(self, rng):
        go_left = rng.random(100) < 0.5
        decoded = decode_placement(encode_placement(go_left), 100)
        np.testing.assert_array_equal(decoded, go_left)

    def test_nbytes_formula(self):
        assert bitmap_nbytes(0) == 0
        assert bitmap_nbytes(1) == 1
        assert bitmap_nbytes(8) == 1
        assert bitmap_nbytes(9) == 2
        # the Section 3.1.4 example: 48M instances -> 6 MB
        assert bitmap_nbytes(48_000_000) == 6_000_000

    def test_payload_size_matches_formula(self, rng):
        for n in (1, 7, 8, 9, 63, 64, 65):
            go_left = rng.random(n) < 0.5
            assert len(encode_placement(go_left)) == bitmap_nbytes(n)

    def test_32x_compression_vs_int32(self):
        """The paper's claim: bitmaps reduce placement traffic by 32x."""
        n = 1024
        assert n * 4 / bitmap_nbytes(n) == 32.0

    def test_count_too_large(self):
        with pytest.raises(ValueError, match="bits"):
            decode_placement(b"\x00", 9)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            decode_placement(b"", -1)
        with pytest.raises(ValueError):
            bitmap_nbytes(-1)

    def test_empty(self):
        assert decode_placement(b"", 0).size == 0


@settings(max_examples=40, deadline=None)
@given(bits=st.lists(st.booleans(), min_size=0, max_size=300))
def test_property_round_trip(bits):
    go_left = np.array(bits, dtype=bool)
    payload = encode_placement(go_left)
    assert len(payload) == bitmap_nbytes(go_left.size)
    np.testing.assert_array_equal(
        decode_placement(payload, go_left.size), go_left
    )
