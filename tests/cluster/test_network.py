"""Simulated network accounting tests."""

from __future__ import annotations

import math

import pytest

from repro.cluster.network import CommStats, SimulatedNetwork
from repro.config import NetworkModel


class TestNetworkModel:
    def test_transfer_time_formula(self):
        model = NetworkModel(bandwidth_gbps=1.0, latency_s=0.001)
        # 125 MB over 1 Gbps = 1 second + latency
        assert model.transfer_time(125_000_000) == pytest.approx(1.001)

    def test_zero_bytes_is_free(self):
        assert NetworkModel().transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)

    def test_profiles(self):
        assert NetworkModel.production().bandwidth_gbps == \
            10 * NetworkModel.laboratory().bandwidth_gbps

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)


class TestSimulatedNetwork:
    def test_records_accumulate(self):
        net = SimulatedNetwork(NetworkModel())
        net.record("a", 100, 0.5)
        net.record("a", 50, 0.25)
        net.record("b", 10, 0.1)
        assert net.total_bytes == 160
        assert net.total_seconds == pytest.approx(0.85)
        stats = net.snapshot()
        assert stats.bytes_by_kind == {"a": 150, "b": 10}

    def test_snapshot_diff(self):
        net = SimulatedNetwork(NetworkModel())
        net.record("x", 100, 1.0)
        before = net.snapshot()
        net.record("x", 40, 0.4)
        net.record("y", 5, 0.05)
        delta = net.snapshot().minus(before)
        assert delta.total_bytes == 45
        assert delta.total_seconds == pytest.approx(0.45)
        assert delta.bytes_by_kind == {"x": 40, "y": 5}

    def test_snapshot_is_isolated(self):
        net = SimulatedNetwork(NetworkModel())
        snap = net.snapshot()
        net.record("x", 1, 0.1)
        assert snap.total_bytes == 0

    def test_transfer_uses_model(self):
        net = SimulatedNetwork(NetworkModel(bandwidth_gbps=8.0,
                                            latency_s=0.0))
        seconds = net.transfer("t", 1_000_000_000)
        assert seconds == pytest.approx(1.0)
        assert net.total_bytes == 1_000_000_000

    def test_rejects_negative(self):
        net = SimulatedNetwork(NetworkModel())
        with pytest.raises(ValueError):
            net.record("x", -1, 0.0)
        with pytest.raises(ValueError):
            net.record("x", 1, -0.1)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite_seconds(self, bad):
        net = SimulatedNetwork(NetworkModel())
        with pytest.raises(ValueError, match="finite"):
            net.record("x", 1, bad)
        assert net.records == [] and net.total_seconds == 0.0

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite_bytes(self, bad):
        net = SimulatedNetwork(NetworkModel())
        with pytest.raises(ValueError, match="finite"):
            net.record("x", bad, 0.1)
        assert net.records == [] and net.total_bytes == 0

    def test_relabel_since_moves_kinds_not_totals(self):
        net = SimulatedNetwork(NetworkModel())
        net.record("a", 100, 1.0)
        mark = net.mark()
        net.record("a", 40, 0.4)
        net.record("b", 10, 0.1)
        net.relabel_since(mark, "recovery:")
        assert net.total_bytes == 150
        assert net.total_seconds == pytest.approx(1.5)
        assert net.snapshot().bytes_by_kind == {
            "a": 100, "recovery:a": 40, "recovery:b": 10,
        }

    def test_relabel_since_skips_fault_kinds(self):
        net = SimulatedNetwork(NetworkModel())
        mark = net.mark()
        net.record("retry:a", 5, 0.05)
        net.record("a", 10, 0.1)
        net.relabel_since(mark, "recovery:")
        assert net.snapshot().bytes_by_kind == {
            "retry:a": 5, "recovery:a": 10,
        }

    def test_relabel_since_validates_mark(self):
        net = SimulatedNetwork(NetworkModel())
        with pytest.raises(ValueError, match="ledger"):
            net.relabel_since(3, "recovery:")
        with pytest.raises(ValueError, match="ledger"):
            net.relabel_since(-1, "recovery:")


class TestCommStats:
    def test_minus_omits_zero_delta_kinds(self):
        later = CommStats(total_bytes=30, total_seconds=0.3,
                          bytes_by_kind={"a": 10, "b": 20},
                          seconds_by_kind={"a": 0.1, "b": 0.2})
        earlier = CommStats(total_bytes=10, total_seconds=0.1,
                            bytes_by_kind={"a": 10},
                            seconds_by_kind={"a": 0.1})
        delta = later.minus(earlier)
        assert delta.total_bytes == 20
        assert delta.bytes_by_kind == {"b": 20}
        assert delta.seconds_by_kind == {"b": pytest.approx(0.2)}

    def test_minus_surfaces_kind_only_in_earlier(self):
        # relabel_since can move a kind's traffic away entirely; the
        # delta must report it as negative, not silently drop it
        later = CommStats(total_bytes=5, total_seconds=0.05,
                          bytes_by_kind={"recovery:a": 5},
                          seconds_by_kind={"recovery:a": 0.05})
        earlier = CommStats(total_bytes=5, total_seconds=0.05,
                            bytes_by_kind={"a": 5},
                            seconds_by_kind={"a": 0.05})
        delta = later.minus(earlier)
        assert delta.total_bytes == 0
        assert delta.bytes_by_kind == {"a": -5, "recovery:a": 5}

    def test_minus_of_self_is_empty(self):
        stats = CommStats(total_bytes=7, total_seconds=0.7,
                          bytes_by_kind={"a": 7},
                          seconds_by_kind={"a": 0.7})
        delta = stats.minus(stats)
        assert delta.total_bytes == 0
        assert delta.total_seconds == 0.0
        assert delta.bytes_by_kind == {}
        assert delta.seconds_by_kind == {}

    def test_snapshot_isolated_from_later_records(self):
        net = SimulatedNetwork(NetworkModel())
        net.record("a", 10, 0.1)
        snap = net.snapshot()
        net.record("a", 90, 0.9)
        net.record("b", 1, 0.01)
        assert snap.total_bytes == 10
        assert snap.bytes_by_kind == {"a": 10}
        assert snap.seconds_by_kind == {"a": pytest.approx(0.1)}
        # and mutating the snapshot never touches the live ledger
        snap.bytes_by_kind["c"] = 99
        assert "c" not in net.snapshot().bytes_by_kind
