"""Simulated network accounting tests."""

from __future__ import annotations

import pytest

from repro.cluster.network import SimulatedNetwork
from repro.config import NetworkModel


class TestNetworkModel:
    def test_transfer_time_formula(self):
        model = NetworkModel(bandwidth_gbps=1.0, latency_s=0.001)
        # 125 MB over 1 Gbps = 1 second + latency
        assert model.transfer_time(125_000_000) == pytest.approx(1.001)

    def test_zero_bytes_is_free(self):
        assert NetworkModel().transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)

    def test_profiles(self):
        assert NetworkModel.production().bandwidth_gbps == \
            10 * NetworkModel.laboratory().bandwidth_gbps

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)


class TestSimulatedNetwork:
    def test_records_accumulate(self):
        net = SimulatedNetwork(NetworkModel())
        net.record("a", 100, 0.5)
        net.record("a", 50, 0.25)
        net.record("b", 10, 0.1)
        assert net.total_bytes == 160
        assert net.total_seconds == pytest.approx(0.85)
        stats = net.snapshot()
        assert stats.bytes_by_kind == {"a": 150, "b": 10}

    def test_snapshot_diff(self):
        net = SimulatedNetwork(NetworkModel())
        net.record("x", 100, 1.0)
        before = net.snapshot()
        net.record("x", 40, 0.4)
        net.record("y", 5, 0.05)
        delta = net.snapshot().minus(before)
        assert delta.total_bytes == 45
        assert delta.total_seconds == pytest.approx(0.45)
        assert delta.bytes_by_kind == {"x": 40, "y": 5}

    def test_snapshot_is_isolated(self):
        net = SimulatedNetwork(NetworkModel())
        snap = net.snapshot()
        net.record("x", 1, 0.1)
        assert snap.total_bytes == 0

    def test_transfer_uses_model(self):
        net = SimulatedNetwork(NetworkModel(bandwidth_gbps=8.0,
                                            latency_s=0.0))
        seconds = net.transfer("t", 1_000_000_000)
        assert seconds == pytest.approx(1.0)
        assert net.total_bytes == 1_000_000_000

    def test_rejects_negative(self):
        net = SimulatedNetwork(NetworkModel())
        with pytest.raises(ValueError):
            net.record("x", -1, 0.0)
