"""Unit tests for the seeded fault-injection primitives.

The end-to-end invariants (bit-identical recovery, exact ledger
accounting) live in ``tests/systems/test_chaos.py``; this file pins the
building blocks: ``FaultPlan`` parsing/validation, the injector's
determinism, and the retry cost arithmetic.
"""

from __future__ import annotations

import pytest

from repro.cluster.faults import (FAULT_PREFIXES, FaultInjector, FaultPlan,
                                  TransportFault, UnrecoverableFaultError)
from repro.cluster.network import SimulatedNetwork
from repro.config import NetworkModel


class TestFaultPlanParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "42:crash=2,drop=0.05,timeout=0.01,backoff=0.02,"
            "timeout-s=0.3,retries=5"
        )
        assert plan.seed == 42
        assert plan.crashes == 2
        assert plan.drop_rate == 0.05
        assert plan.timeout_rate == 0.01
        assert plan.backoff_s == 0.02
        assert plan.timeout_s == 0.3
        assert plan.max_retries == 5
        assert plan.active

    def test_spec_tolerates_whitespace(self):
        plan = FaultPlan.parse("7: crash=1 , drop=0.1 ")
        assert plan.seed == 7
        assert plan.crashes == 1
        assert plan.drop_rate == 0.1

    @pytest.mark.parametrize("bad", [
        "no-colon",              # missing SEED: prefix
        ":crash=1",              # empty seed
        "x:crash=1",             # non-integer seed
        "42:",                   # names no fault
        "42:bogus=1",            # unknown key
        "42:crash",              # no '=value'
        "42:crash=abc",          # non-numeric value
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_validation(self):
        with pytest.raises(ValueError, match="crashes"):
            FaultPlan(seed=0, crashes=-1)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(seed=0, drop_rate=1.0)
        with pytest.raises(ValueError, match="timeout_rate"):
            FaultPlan(seed=0, timeout_rate=-0.1)
        with pytest.raises(ValueError, match="eventually succeed"):
            FaultPlan(seed=0, drop_rate=0.6, timeout_rate=0.5)
        with pytest.raises(ValueError, match="backoff_s"):
            FaultPlan(seed=0, backoff_s=-1.0)
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan(seed=0, max_retries=0)
        with pytest.raises(ValueError, match="max_crashes_per_tree"):
            FaultPlan(seed=0, max_crashes_per_tree=0)

    def test_inactive_plan(self):
        assert not FaultPlan(seed=3).active

    def test_describe_names_only_active_faults(self):
        text = FaultPlan.parse("9:crash=1,drop=0.25").describe()
        assert "seed=9" in text
        assert "crashes=1" in text
        assert "drop=0.25" in text
        assert "timeout" not in text


class TestFaultInjector:
    def test_crash_schedule_is_deterministic(self):
        plan = FaultPlan(seed=13, crashes=3)
        first = FaultInjector(plan, 4, 10, 5).scheduled_crashes()
        second = FaultInjector(plan, 4, 10, 5).scheduled_crashes()
        assert first == second
        assert len(first) == 3
        for event in first:
            assert 0 <= event.tree < 10
            assert 0 <= event.layer < 4
            assert 0 <= event.worker < 4

    def test_each_crash_fires_exactly_once(self):
        plan = FaultPlan(seed=13, crashes=3)
        injector = FaultInjector(plan, 4, 10, 5)
        events = injector.scheduled_crashes()
        fired = []
        for _ in range(2):  # the replay pass must not re-fire
            for tree in range(10):
                for layer in range(4):
                    event = injector.maybe_crash(tree, layer)
                    if event is not None:
                        fired.append(event)
        assert sorted(fired, key=lambda e: (e.tree, e.layer)) == events
        assert injector.counters.crashes == 3
        assert injector.scheduled_crashes() == []

    def test_crash_pileup_beyond_budget_rejected(self):
        plan = FaultPlan(seed=0, crashes=5, max_crashes_per_tree=2)
        with pytest.raises(UnrecoverableFaultError, match="budget"):
            FaultInjector(plan, num_workers=4, num_trees=1, num_layers=4)

    def test_invalid_cluster_shape_rejected(self):
        plan = FaultPlan(seed=0, crashes=1)
        with pytest.raises(ValueError):
            FaultInjector(plan, num_workers=0, num_trees=1, num_layers=3)
        with pytest.raises(ValueError):
            FaultInjector(plan, num_workers=2, num_trees=1, num_layers=1)

    def test_transport_faults_deterministic_and_counted(self):
        plan = FaultPlan(seed=5, drop_rate=0.3, timeout_rate=0.2)
        a = FaultInjector(plan, 2, 1, 3)
        b = FaultInjector(plan, 2, 1, 3)
        seq_a = [a.transport_faults("hist") for _ in range(50)]
        seq_b = [b.transport_faults("hist") for _ in range(50)]
        assert seq_a == seq_b
        fired = [f for faults in seq_a for f in faults]
        assert a.counters.drops == \
            sum(1 for f in fired if f.kind == "drop")
        assert a.counters.timeouts == \
            sum(1 for f in fired if f.kind == "timeout")
        assert a.counters.transport_events == len(fired)
        # drops are detected instantly; timeouts wait out timeout_s
        for fault in fired:
            expected = 0.0 if fault.kind == "drop" else plan.timeout_s
            assert fault.penalty_s == expected

    @pytest.mark.parametrize("prefix", FAULT_PREFIXES)
    def test_fault_traffic_is_never_faulted(self, prefix):
        plan = FaultPlan(seed=5, drop_rate=0.9)
        injector = FaultInjector(plan, 2, 1, 3)
        for _ in range(20):
            assert injector.transport_faults(prefix + "hist") == []
        assert injector.counters.transport_events == 0

    def test_inactive_transport_is_free(self):
        plan = FaultPlan(seed=5, crashes=1)
        injector = FaultInjector(plan, 2, 1, 3)
        assert injector.transport_faults("hist") == []

    def test_hopeless_drop_rate_raises(self):
        plan = FaultPlan(seed=1, drop_rate=0.95, max_retries=3)
        injector = FaultInjector(plan, 2, 1, 3)
        with pytest.raises(UnrecoverableFaultError, match="consecutive"):
            for _ in range(100):
                injector.transport_faults("hist")

    def test_retry_seconds_backoff_doubles(self):
        plan = FaultPlan(seed=0, drop_rate=0.1, backoff_s=0.01,
                         timeout_s=0.5)
        injector = FaultInjector(plan, 2, 1, 3)
        drop = TransportFault("drop", 0.0)
        timeout = TransportFault("timeout", plan.timeout_s)
        assert injector.retry_seconds(0, 1.0, drop) == \
            pytest.approx(1.0 + 0.01)
        assert injector.retry_seconds(2, 1.0, drop) == \
            pytest.approx(1.0 + 0.04)
        assert injector.retry_seconds(0, 1.0, timeout) == \
            pytest.approx(1.0 + 0.01 + 0.5)


class TestNetworkFaultIntegration:
    def test_injected_retries_land_under_retry_kind(self):
        plan = FaultPlan(seed=2, drop_rate=0.4)
        injector = FaultInjector(plan, 2, 1, 3)
        net = SimulatedNetwork(NetworkModel(), injector=injector)
        for _ in range(60):
            net.record("hist", 100, 0.001)
        stats = net.snapshot()
        assert stats.bytes_by_kind["hist"] == 6000
        fired = injector.counters.transport_events
        assert fired > 0
        assert stats.bytes_by_kind["retry:hist"] == 100 * fired
        # every retry costs at least the re-send plus one backoff step
        assert stats.seconds_by_kind["retry:hist"] >= \
            fired * (0.001 + plan.backoff_s)

    def test_retry_records_not_reinjected(self):
        plan = FaultPlan(seed=2, drop_rate=0.9, max_retries=2)
        injector = FaultInjector(plan, 2, 1, 3)
        net = SimulatedNetwork(NetworkModel(), injector=injector)
        # direct recording under a fault prefix must never draw the RNG
        for _ in range(50):
            net.record("retry:hist", 10, 0.001)
        assert injector.counters.transport_events == 0
