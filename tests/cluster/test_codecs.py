"""Round-trip property tests for every wire codec.

Lossless codecs must be bit-identical under decode(encode(x)) — the
invariant that keeps codec-enabled training byte-for-byte reproducible
against the dense baseline.  Lossy codecs must bound their error by the
narrow dtype's precision.  Size claims (fallbacks never exceed the dense
baseline; sparse wins below the cutoff density) are checked alongside.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.bitmap import bitmap_nbytes
from repro.cluster.codecs import (CODEC_STACKS, AdaptivePlacementCodec,
                                  BitmapPlacementCodec, DeltaIndexCodec,
                                  DenseHistogramCodec,
                                  LowPrecisionHistogramCodec, RawIndexCodec,
                                  SparseHistogramCodec, apply_model_delta,
                                  codec_names, encode_model_delta,
                                  get_codec_stack, sparse_cutoff_density,
                                  sparse_entry_bytes, varint_decode,
                                  varint_encode, varint_length,
                                  zigzag_decode, zigzag_encode)
from repro.core.histogram import Histogram


def make_hist(num_features, num_bins, gradient_dim, density, seed):
    """A histogram with approximately the requested occupied density."""
    rng = np.random.default_rng(seed)
    hist = Histogram(num_features, num_bins, gradient_dim)
    slots = num_features * num_bins
    nnz = int(round(density * slots))
    if nnz:
        idx = rng.choice(slots, size=nnz, replace=False)
        hist.grad[idx] = rng.standard_normal((nnz, gradient_dim))
        hist.hess[idx] = rng.random((nnz, gradient_dim))
    return hist


def assert_hist_identical(a: Histogram, b: Histogram) -> None:
    assert (a.num_features, a.num_bins, a.gradient_dim) \
        == (b.num_features, b.num_bins, b.gradient_dim)
    np.testing.assert_array_equal(a.grad, b.grad)
    np.testing.assert_array_equal(a.hess, b.hess)
    assert a.grad.dtype == b.grad.dtype == np.float64


# ---------------------------------------------------------------------------
# varint / zigzag kernels
# ---------------------------------------------------------------------------

class TestVarint:
    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.int64, st.integers(0, 200),
                      elements=st.integers(-2**62, 2**62)))
    def test_zigzag_round_trip(self, values):
        np.testing.assert_array_equal(
            zigzag_decode(zigzag_encode(values)), values)

    def test_zigzag_interleaves_signs(self):
        np.testing.assert_array_equal(
            zigzag_encode(np.array([0, -1, 1, -2, 2])),
            np.array([0, 1, 2, 3, 4], dtype=np.uint64))

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.uint64, st.integers(0, 200),
                      elements=st.integers(0, 2**64 - 1)))
    def test_varint_round_trip(self, values):
        payload = varint_encode(values)
        assert len(payload) == int(varint_length(values).sum())
        np.testing.assert_array_equal(
            varint_decode(payload, values.size), values)

    def test_varint_length_boundaries(self):
        # each 7-bit boundary adds a byte; the max uint64 takes 10
        cases = {0: 1, 127: 1, 128: 2, 2**14 - 1: 2, 2**14: 3,
                 2**63: 10, 2**64 - 1: 10}
        values = np.array(list(cases), dtype=np.uint64)
        np.testing.assert_array_equal(
            varint_length(values), np.array(list(cases.values())))

    def test_varint_small_values_one_byte_each(self):
        values = np.arange(100, dtype=np.uint64)
        assert len(varint_encode(values)) == 100

    def test_varint_decode_underflow_raises(self):
        payload = varint_encode(np.array([1, 2], dtype=np.uint64))
        with pytest.raises(ValueError, match="2 varints, 3 requested"):
            varint_decode(payload, 3)


# ---------------------------------------------------------------------------
# histogram codecs
# ---------------------------------------------------------------------------

class TestHistogramCodecs:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 16), st.integers(1, 4),
           st.floats(0.0, 1.0), st.integers(0, 2**32 - 1))
    def test_lossless_round_trip_bit_identical(
            self, features, bins, dim, density, seed):
        hist = make_hist(features, bins, dim, density, seed)
        for codec in (DenseHistogramCodec(), SparseHistogramCodec()):
            assert codec.lossless
            assert_hist_identical(codec.decode(codec.encode(hist)), hist)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 16), st.integers(1, 4),
           st.floats(0.0, 1.0), st.integers(0, 2**32 - 1))
    def test_sparse_never_exceeds_dense(self, features, bins, dim,
                                        density, seed):
        hist = make_hist(features, bins, dim, density, seed)
        enc = SparseHistogramCodec().encode(hist)
        assert enc.nbytes <= enc.raw_nbytes == hist.nbytes
        assert enc.saved_bytes >= 0

    def test_sparse_wins_below_cutoff_density(self):
        dim = 1
        hist = make_hist(64, 32, dim, density=0.05, seed=0)
        enc = SparseHistogramCodec().encode(hist)
        assert enc.codec == "sparse"
        nnz = int(np.flatnonzero(hist.grad.any(axis=1)
                                 | hist.hess.any(axis=1)).size)
        assert enc.nbytes == 16 + nnz * sparse_entry_bytes(dim)
        # ~16x smaller at 5% density
        assert enc.raw_nbytes / enc.nbytes > 10

    def test_sparse_dense_fallback_above_cutoff(self):
        hist = make_hist(64, 32, 1, density=1.0, seed=0)
        enc = SparseHistogramCodec().encode(hist)
        assert enc.codec == "sparse/dense-fallback"
        assert enc.nbytes == hist.nbytes

    def test_cutoff_density_formula(self):
        assert sparse_cutoff_density(1) == pytest.approx(16 / 20)
        assert sparse_cutoff_density(10) == pytest.approx(160 / 164)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 16), st.integers(1, 4),
           st.floats(0.0, 1.0), st.integers(0, 2**32 - 1))
    def test_lossy_bounded_relative_error(self, features, bins, dim,
                                          density, seed):
        hist = make_hist(features, bins, dim, density, seed)
        for dtype, name, eps in ((np.float32, "f32", 1e-7),
                                 (np.float16, "f16", 1e-3)):
            codec = LowPrecisionHistogramCodec(dtype, name)
            assert not codec.lossless
            out = codec.decode(codec.encode(hist))
            np.testing.assert_allclose(out.grad, hist.grad, rtol=eps,
                                       atol=eps)
            np.testing.assert_allclose(out.hess, hist.hess, rtol=eps,
                                       atol=eps)

    def test_lossy_byte_reduction(self):
        hist = make_hist(32, 16, 2, density=1.0, seed=1)
        f32 = LowPrecisionHistogramCodec(np.float32, "f32").encode(hist)
        f16 = LowPrecisionHistogramCodec(np.float16, "f16").encode(hist)
        assert f32.nbytes == 16 + hist.nbytes // 2
        assert f16.nbytes == 16 + hist.nbytes // 4


# ---------------------------------------------------------------------------
# placement codecs
# ---------------------------------------------------------------------------

class TestPlacementCodecs:
    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(bool, st.integers(1, 500)))
    def test_round_trip_both_codecs(self, go_left):
        for codec in (BitmapPlacementCodec(), AdaptivePlacementCodec()):
            enc = codec.encode(go_left)
            np.testing.assert_array_equal(
                codec.decode(enc, go_left.size), go_left)

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(bool, st.integers(1, 500)))
    def test_adaptive_never_exceeds_bitmap(self, go_left):
        enc = AdaptivePlacementCodec().encode(go_left)
        assert enc.nbytes <= bitmap_nbytes(go_left.size)
        assert enc.raw_nbytes == bitmap_nbytes(go_left.size)

    def test_adaptive_picks_sparse_on_skewed_split(self):
        go_left = np.zeros(10_000, dtype=bool)
        go_left[::500] = True   # 20 minority instances
        enc = AdaptivePlacementCodec().encode(go_left)
        assert enc.codec == "placement-sparse"
        assert enc.nbytes < 100 < bitmap_nbytes(go_left.size)

    def test_adaptive_picks_bitmap_on_even_split(self):
        rng = np.random.default_rng(0)
        go_left = rng.random(10_000) < 0.5
        enc = AdaptivePlacementCodec().encode(go_left)
        assert enc.codec == "bitmap"
        assert enc.nbytes == bitmap_nbytes(go_left.size)


# ---------------------------------------------------------------------------
# index codec
# ---------------------------------------------------------------------------

class TestIndexCodecs:
    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.int32, st.integers(0, 400),
                      elements=st.integers(-2**31, 2**31 - 1)))
    def test_round_trip_exact(self, values):
        for codec in (RawIndexCodec(), DeltaIndexCodec()):
            out = codec.decode(codec.encode(values))
            np.testing.assert_array_equal(out, values)
            assert out.dtype == values.dtype

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.int32, st.integers(1, 400),
                      elements=st.integers(-2**31, 2**31 - 1)))
    def test_delta_never_exceeds_raw(self, values):
        enc = DeltaIndexCodec().encode(values)
        assert enc.nbytes <= enc.raw_nbytes == values.nbytes

    def test_delta_compresses_node_ids(self):
        # spatially correlated node ids (the checkpoint payload shape):
        # long runs of equal small ids delta to zeros -> ~4x vs int32
        ids = np.repeat(np.arange(16, dtype=np.int32), 1000)
        enc = DeltaIndexCodec().encode(ids)
        assert enc.codec == "delta"
        assert enc.raw_nbytes / enc.nbytes >= 3.9


# ---------------------------------------------------------------------------
# model-version delta
# ---------------------------------------------------------------------------

def payload(trees, **meta):
    out = {"format": 1, "objective": "binary", "num_classes": 2,
           "trees": list(trees)}
    out.update(meta)
    return out


class TestModelDelta:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8))
    def test_round_trip_exact(self, shared, dropped, appended):
        trees = [{"id": i} for i in range(shared + dropped + appended)]
        prev = payload(trees[:shared + dropped])
        new = payload(trees[:shared] + trees[shared + dropped:])
        delta = encode_model_delta(prev, new)
        if delta is None:
            # only legitimate refusal: no shared prefix at all
            assert shared == 0 and shared + dropped > 0
            return
        assert apply_model_delta(prev, delta) == new
        assert delta["base_trees"] == shared
        assert delta["dropped_trees"] == dropped
        assert len(delta["trees"]) == appended

    def test_append_only_delta_ships_suffix(self):
        prev = payload([{"id": 0}, {"id": 1}])
        new = payload([{"id": 0}, {"id": 1}, {"id": 2}])
        delta = encode_model_delta(prev, new)
        assert delta["trees"] == [{"id": 2}]
        assert delta["dropped_trees"] == 0

    def test_changed_metadata_refuses_delta(self):
        prev = payload([{"id": 0}], objective="binary")
        new = payload([{"id": 0}], objective="multiclass")
        assert encode_model_delta(prev, new) is None

    def test_stale_base_rejected(self):
        delta = {"delta_format": 1, "base_trees": 3, "dropped_trees": 0,
                 "trees": []}
        with pytest.raises(ValueError, match="3 base trees"):
            apply_model_delta(payload([{"id": 0}]), delta)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown delta format"):
            apply_model_delta(payload([]), {"delta_format": 99})


# ---------------------------------------------------------------------------
# the stack registry
# ---------------------------------------------------------------------------

class TestCodecStacks:
    def test_registry_names(self):
        assert set(codec_names()) == {"none", "sparse", "delta", "f32",
                                      "f16"}

    def test_lossless_flags(self):
        for name in ("none", "sparse", "delta"):
            assert CODEC_STACKS[name].lossless
        for name in ("f32", "f16"):
            assert not CODEC_STACKS[name].lossless

    def test_lossless_flag_matches_histogram_codec(self):
        for stack in CODEC_STACKS.values():
            assert stack.lossless == stack.histogram.lossless
            assert stack.placement.lossless and stack.index.lossless

    def test_identity_stack(self):
        assert get_codec_stack("none").is_identity
        assert get_codec_stack("").is_identity
        assert not get_codec_stack("sparse").is_identity

    def test_lookup_case_insensitive(self):
        assert get_codec_stack("SPARSE") is CODEC_STACKS["sparse"]

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown codec 'zstd'"):
            get_codec_stack("zstd")

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(("none", "sparse", "delta")),
           st.floats(0.0, 1.0), st.integers(0, 2**32 - 1))
    def test_lossless_stacks_round_trip_everything(self, name, density,
                                                   seed):
        stack = get_codec_stack(name)
        hist = make_hist(8, 12, 2, density, seed)
        assert_hist_identical(
            stack.histogram.decode(stack.histogram.encode(hist)), hist)
        rng = np.random.default_rng(seed)
        go_left = rng.random(257) < density
        np.testing.assert_array_equal(
            stack.placement.decode(stack.placement.encode(go_left), 257),
            go_left)
        ids = rng.integers(0, 31, size=400).astype(np.int32)
        np.testing.assert_array_equal(
            stack.index.decode(stack.index.encode(ids)), ids)
