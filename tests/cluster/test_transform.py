"""Horizontal-to-vertical transformation tests (Section 4.2.1, Table 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.transform import (compressed_pair_bytes,
                                     horizontal_to_vertical)
from repro.config import ClusterConfig
from repro.data.synthetic import make_classification


@pytest.fixture(scope="module")
def transform_result():
    ds = make_classification(600, 80, density=0.3, seed=21)
    cluster = ClusterConfig(num_workers=4)
    return ds, horizontal_to_vertical(ds, cluster, num_candidates=12)


class TestCorrectness:
    def test_features_tile(self, transform_result):
        ds, result = transform_result
        combined = np.sort(np.concatenate(result.groups))
        np.testing.assert_array_equal(combined,
                                      np.arange(ds.num_features))

    def test_shards_agree_with_global(self, transform_result):
        ds, result = transform_result
        dense = result.global_binned.binned.to_dense()
        for shard, group in zip(result.shards, result.groups):
            np.testing.assert_array_equal(shard.binned.to_dense(),
                                          dense[:, group])

    def test_blocked_groups_match_shards(self, transform_result):
        """The blockified representation holds the same data as the
        training shards, instance by instance (two-phase lookup)."""
        ds, result = transform_result
        for shard, blocked in zip(result.shards, result.blocked_groups):
            assert blocked.num_rows == ds.num_instances
            for i in (0, 5, 100, ds.num_instances - 1):
                cols, bins = blocked.lookup(i)
                ref_cols, ref_bins = shard.binned.row(i)
                np.testing.assert_array_equal(np.sort(cols),
                                              np.sort(ref_cols))

    def test_blocks_are_merged(self, transform_result):
        _, result = transform_result
        for blocked in result.blocked_groups:
            assert blocked.num_blocks <= 5

    def test_bin_values_consistent_with_cuts(self, transform_result):
        """Every binned value equals the searchsorted rank of the raw
        value in that feature's cut array — the encoding is lossless with
        respect to the histograms."""
        ds, result = transform_result
        csr = ds.features
        binned = result.global_binned.binned
        for i in (0, 17, 300):
            cols, vals = csr.row(i)
            _, bins = binned.row(i)
            for c, v, b in zip(cols, vals, bins):
                assert b == np.searchsorted(result.cuts[c], v,
                                            side="left")

    def test_labels_preserved(self, transform_result):
        ds, result = transform_result
        np.testing.assert_array_equal(result.global_binned.labels,
                                      ds.labels)


class TestCostReport:
    def test_all_steps_accounted(self, transform_result):
        _, result = transform_result
        report = result.report
        assert report.load_data_seconds > 0
        assert report.get_splits_seconds > 0
        assert report.broadcast_label_seconds > 0
        assert set(report.repartition_seconds) == {
            "naive", "compressed", "blockified"
        }

    def test_encoding_ordering(self, transform_result):
        """Table 5 shape: naive >= compressed >= blockified (time), and
        naive strictly exceeds compressed in bytes."""
        _, result = transform_result
        seconds = result.report.repartition_seconds
        nbytes = result.report.repartition_bytes
        assert seconds["naive"] >= seconds["compressed"] >= \
            seconds["blockified"]
        assert nbytes["naive"] > nbytes["compressed"]
        assert nbytes["compressed"] == nbytes["blockified"]

    def test_compression_ratio_about_4x(self, transform_result):
        """12-byte raw pairs vs 2-3 encoded bytes: the paper reports up
        to 4x compression."""
        _, result = transform_result
        assert result.report.compression_ratio >= 4.0

    def test_total_seconds(self, transform_result):
        _, result = transform_result
        report = result.report
        assert report.total_seconds("blockified") <= \
            report.total_seconds("naive")


class TestCompressedPairBytes:
    def test_small_group(self):
        # 100 features -> 1 byte fid; 20 bins -> 1 byte bin
        assert compressed_pair_bytes(100, 20) == 2

    def test_large_group(self):
        # 100k features -> 3 bytes fid
        assert compressed_pair_bytes(100_000, 20) == 4

    def test_minimum_one_byte_each(self):
        assert compressed_pair_bytes(1, 1) == 2


class TestTrainingOnTransformed:
    def test_vero_fit_from_raw(self):
        from repro import TrainConfig, Vero

        ds = make_classification(500, 40, density=0.5, seed=22)
        train, valid = ds.split(0.8, seed=1)
        cfg = TrainConfig(num_trees=4, num_layers=4, num_candidates=8)
        vero = Vero(cfg, ClusterConfig(num_workers=3))
        result, transform = vero.fit_from_raw(train, valid=valid)
        assert len(result.ensemble) == 4
        assert result.evals[-1].metric_value > 0.7
        assert transform.report.compression_ratio >= 4.0
