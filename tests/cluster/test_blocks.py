"""Blockified column group and two-phase index tests (Figure 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.blocks import (Block, BlockedColumnGroup,
                                  blockify_shard)
from repro.data.matrix import CSRMatrix


def make_group(rng, num_rows=60, num_features=5, num_blocks=4):
    """Random binned matrix split into row blocks."""
    dense = np.full((num_rows, num_features), -1, dtype=np.int64)
    mask = rng.random((num_rows, num_features)) < 0.5
    dense[mask] = rng.integers(0, 8, size=mask.sum())
    rows = []
    for i in range(num_rows):
        cols = np.flatnonzero(dense[i] >= 0)
        rows.append([(int(c), int(dense[i, c])) for c in cols])
    csr = CSRMatrix.from_rows(rows, num_features, dtype=np.int32)
    bounds = np.linspace(0, num_rows, num_blocks + 1).astype(int)
    blocks = [
        blockify_shard(
            csr.select_rows(np.arange(lo, hi)), row_offset=int(lo)
        )
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    return csr, BlockedColumnGroup(blocks, num_features)


class TestBlock:
    def test_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            Block(0, np.array([0, 2]), np.array([1]), np.array([1]))
        with pytest.raises(ValueError, match="align"):
            Block(0, np.array([0, 2]), np.array([1, 2]), np.array([1]))

    def test_nbytes(self, rng):
        _, group = make_group(rng)
        assert all(b.nbytes > 0 for b in group.blocks)


class TestBlockedColumnGroup:
    def test_blocks_must_tile(self, rng):
        csr, _ = make_group(rng, num_rows=20, num_blocks=2)
        b0 = blockify_shard(csr.select_rows(np.arange(0, 10)), 0)
        b2 = blockify_shard(csr.select_rows(np.arange(12, 20)), 12)
        with pytest.raises(ValueError, match="tile"):
            BlockedColumnGroup([b0, b2], 5)

    def test_first_block_at_zero(self, rng):
        csr, _ = make_group(rng, num_rows=20, num_blocks=1)
        block = blockify_shard(csr.select_rows(np.arange(5, 20)), 5)
        with pytest.raises(ValueError, match="instance 0"):
            BlockedColumnGroup([block], 5)

    def test_two_phase_lookup_matches_csr(self, rng):
        csr, group = make_group(rng)
        for i in range(csr.num_rows):
            cols, bins = group.lookup(i)
            ref_cols, ref_bins = csr.row(i)
            np.testing.assert_array_equal(cols, ref_cols)
            np.testing.assert_array_equal(bins, ref_bins)

    def test_lookup_out_of_range(self, rng):
        _, group = make_group(rng)
        with pytest.raises(IndexError):
            group.lookup(60)

    def test_merge_reduces_block_count(self, rng):
        csr, group = make_group(rng, num_blocks=9)
        merged = group.merge(max_blocks=3)
        assert merged.num_blocks <= 3
        for i in range(csr.num_rows):
            np.testing.assert_array_equal(merged.lookup(i)[0],
                                          csr.row(i)[0])

    def test_merge_noop_when_small(self, rng):
        _, group = make_group(rng, num_blocks=2)
        assert group.merge(max_blocks=5) is group

    def test_to_csr_round_trip(self, rng):
        csr, group = make_group(rng)
        assert group.to_csr() == csr

    def test_empty_group(self):
        group = BlockedColumnGroup([], 3)
        assert group.num_rows == 0
        assert group.to_csr().shape == (0, 3)

    def test_blocks_sorted_by_offset(self, rng):
        csr, _ = make_group(rng, num_rows=20, num_blocks=1)
        b0 = blockify_shard(csr.select_rows(np.arange(0, 10)), 0)
        b1 = blockify_shard(csr.select_rows(np.arange(10, 20)), 10)
        group = BlockedColumnGroup([b1, b0], 5)  # reversed input
        assert [b.row_offset for b in group.blocks] == [0, 10]
