"""Shared fixtures: small deterministic datasets and configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig, make_classification
from repro.data.dataset import bin_dataset


@pytest.fixture(scope="session")
def small_binary():
    """Small dense-ish binary dataset."""
    return make_classification(1200, 25, num_classes=2, density=0.5,
                               seed=11, name="small-binary")


@pytest.fixture(scope="session")
def small_sparse():
    """Sparse higher-dimensional binary dataset (missing values common)."""
    return make_classification(900, 300, num_classes=2, density=0.05,
                               seed=12, name="small-sparse")


@pytest.fixture(scope="session")
def small_multiclass():
    return make_classification(1000, 40, num_classes=4, density=0.4,
                               seed=13, name="small-multiclass")


@pytest.fixture(scope="session")
def tiny_config():
    return TrainConfig(num_trees=3, num_layers=4, num_candidates=8)


@pytest.fixture(scope="session")
def cluster4():
    return ClusterConfig(num_workers=4)


@pytest.fixture(scope="session")
def binned_binary(small_binary, tiny_config):
    return bin_dataset(small_binary, tiny_config.num_candidates)


@pytest.fixture(scope="session")
def binned_sparse(small_sparse, tiny_config):
    return bin_dataset(small_sparse, tiny_config.num_candidates)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
