"""Configuration validation tests."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, NetworkModel, TrainConfig


class TestTrainConfig:
    def test_paper_defaults(self):
        cfg = TrainConfig()
        assert cfg.num_trees == 100     # T (Section 5.1)
        assert cfg.num_layers == 8      # L
        assert cfg.num_candidates == 20  # q

    @pytest.mark.parametrize("field,value", [
        ("num_trees", 0),
        ("num_layers", 1),
        ("num_candidates", 0),
        ("learning_rate", 0.0),
        ("learning_rate", 1.5),
        ("reg_lambda", -0.1),
        ("reg_gamma", -1.0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            TrainConfig(**{field: value})

    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            TrainConfig(objective="ranking")

    def test_multiclass_needs_three_classes(self):
        with pytest.raises(ValueError):
            TrainConfig(objective="multiclass", num_classes=2)

    def test_gradient_dim(self):
        assert TrainConfig().gradient_dim == 1
        assert TrainConfig(objective="regression").gradient_dim == 1
        assert TrainConfig(objective="multiclass",
                           num_classes=7).gradient_dim == 7

    def test_max_nodes(self):
        assert TrainConfig(num_layers=3).max_nodes == 7

    def test_frozen(self):
        cfg = TrainConfig()
        with pytest.raises(Exception):
            cfg.num_trees = 5


class TestClusterConfig:
    def test_defaults_match_lab_cluster(self):
        cluster = ClusterConfig()
        assert cluster.num_workers == 8
        assert cluster.network.bandwidth_gbps == 1.0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)

    def test_network_profiles(self):
        lab = NetworkModel.laboratory()
        prod = NetworkModel.production()
        assert prod.bytes_per_second == 10 * lab.bytes_per_second

    def test_bytes_per_second(self):
        assert NetworkModel(bandwidth_gbps=8.0).bytes_per_second == 1e9


class TestBackendField:
    def test_default_is_empty(self):
        assert TrainConfig().backend == ""

    def test_backend_carried_verbatim(self):
        # resolution happens at build time (make_backend), so the config
        # layer accepts any string and stays import-free
        assert TrainConfig(backend="numba").backend == "numba"
        assert TrainConfig(backend="auto").backend == "auto"
