"""Model serialization tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.serialize import (FORMAT_VERSION, ensemble_from_dict,
                                  ensemble_to_dict, load_ensemble,
                                  save_ensemble)


@pytest.fixture(scope="module")
def trained(small_binary):
    cfg = TrainConfig(num_trees=4, num_layers=4, num_candidates=8)
    gbdt = GBDT(cfg)
    result = gbdt.fit(small_binary)
    return gbdt, result.ensemble, small_binary


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, trained):
        gbdt, ensemble, dataset = trained
        back = ensemble_from_dict(ensemble_to_dict(ensemble))
        np.testing.assert_array_equal(
            gbdt.predict(ensemble, dataset), gbdt.predict(back, dataset)
        )

    def test_file_round_trip(self, trained, tmp_path):
        gbdt, ensemble, dataset = trained
        path = tmp_path / "model.json"
        save_ensemble(ensemble, path)
        back = load_ensemble(path)
        assert len(back) == len(ensemble)
        np.testing.assert_array_equal(
            gbdt.predict(ensemble, dataset), gbdt.predict(back, dataset)
        )

    def test_multiclass_round_trip(self, small_multiclass, tmp_path):
        cfg = TrainConfig(num_trees=2, num_layers=3,
                          objective="multiclass", num_classes=4)
        gbdt = GBDT(cfg)
        ensemble = gbdt.fit(small_multiclass).ensemble
        path = tmp_path / "mc.json"
        save_ensemble(ensemble, path, objective="multiclass",
                      num_classes=4)
        back = load_ensemble(path)
        assert back.gradient_dim == 4
        np.testing.assert_array_equal(
            gbdt.predict(ensemble, small_multiclass),
            gbdt.predict(back, small_multiclass),
        )

    def test_payload_is_json_serializable(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble)
        text = json.dumps(payload)
        assert ensemble_from_dict(json.loads(text)).trees


class TestValidation:
    def test_format_version_checked(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            ensemble_from_dict(payload)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not a valid model"):
            load_ensemble(path)

    def test_metadata_preserved(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble, objective="binary",
                                   num_classes=2)
        assert payload["objective"] == "binary"
        assert payload["learning_rate"] == ensemble.learning_rate
