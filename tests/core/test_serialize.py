"""Model serialization tests."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.serialize import (FORMAT_VERSION, canonical_payload_bytes,
                                  ensemble_from_dict, ensemble_to_dict,
                                  load_ensemble, payload_checksum,
                                  save_ensemble)

#: committed golden model: regenerate ONLY on a deliberate format bump
GOLDEN = (Path(__file__).resolve().parent.parent / "data" / "golden"
          / "model_multiclass_v1.json")
GOLDEN_CHECKSUM = \
    "728251b236bd60c63e55259c95c3cf1c7ea3b7806483156c597025ed4435aceb"


@pytest.fixture(scope="module")
def trained(small_binary):
    cfg = TrainConfig(num_trees=4, num_layers=4, num_candidates=8)
    gbdt = GBDT(cfg)
    result = gbdt.fit(small_binary)
    return gbdt, result.ensemble, small_binary


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, trained):
        gbdt, ensemble, dataset = trained
        back = ensemble_from_dict(ensemble_to_dict(ensemble))
        np.testing.assert_array_equal(
            gbdt.predict(ensemble, dataset), gbdt.predict(back, dataset)
        )

    def test_file_round_trip(self, trained, tmp_path):
        gbdt, ensemble, dataset = trained
        path = tmp_path / "model.json"
        save_ensemble(ensemble, path)
        back = load_ensemble(path)
        assert len(back) == len(ensemble)
        np.testing.assert_array_equal(
            gbdt.predict(ensemble, dataset), gbdt.predict(back, dataset)
        )

    def test_multiclass_round_trip(self, small_multiclass, tmp_path):
        cfg = TrainConfig(num_trees=2, num_layers=3,
                          objective="multiclass", num_classes=4)
        gbdt = GBDT(cfg)
        ensemble = gbdt.fit(small_multiclass).ensemble
        path = tmp_path / "mc.json"
        save_ensemble(ensemble, path, objective="multiclass",
                      num_classes=4)
        back = load_ensemble(path)
        assert back.gradient_dim == 4
        np.testing.assert_array_equal(
            gbdt.predict(ensemble, small_multiclass),
            gbdt.predict(back, small_multiclass),
        )

    def test_payload_is_json_serializable(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble)
        text = json.dumps(payload)
        assert ensemble_from_dict(json.loads(text)).trees


class TestGoldenFile:
    """Byte-for-byte compatibility with the committed format-v1 file.

    These tests pin the on-disk format itself, not just semantic
    round-tripping: if serializer output drifts (key order, float
    formatting, indent), saved models in the wild stop matching their
    recorded checksums even though they still load.
    """

    def test_round_trip_byte_for_byte(self, tmp_path):
        ensemble = load_ensemble(GOLDEN)
        regenerated = tmp_path / "regen.json"
        # metadata rides on the loaded ensemble, so a plain re-save must
        # reproduce the file exactly
        save_ensemble(ensemble, regenerated)
        assert regenerated.read_bytes() == GOLDEN.read_bytes()

    def test_checksum_pinned(self):
        payload = json.loads(GOLDEN.read_text())
        assert payload_checksum(payload) == GOLDEN_CHECKSUM

    def test_golden_metadata(self):
        ensemble = load_ensemble(GOLDEN)
        assert ensemble.objective == "multiclass"
        assert ensemble.num_classes == 3
        assert ensemble.gradient_dim == 3
        assert len(ensemble) == 3

    def test_golden_predictions_finite(self):
        from repro.serve import compile_ensemble

        compiled = compile_ensemble(load_ensemble(GOLDEN))
        scores = compiled.raw_scores(np.full((4, 12), np.nan))
        assert np.isfinite(scores).all()


class TestCanonicalEncoding:
    def test_key_order_independent(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble)
        shuffled = json.loads(
            json.dumps(payload), object_pairs_hook=lambda kv:
            dict(reversed(kv))
        )
        assert canonical_payload_bytes(payload) == \
            canonical_payload_bytes(shuffled)
        assert payload_checksum(payload) == payload_checksum(shuffled)

    def test_checksum_detects_tampering(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble)
        before = payload_checksum(payload)
        tampered = json.loads(json.dumps(payload))
        tampered["learning_rate"] = payload["learning_rate"] + 1e-9
        assert payload_checksum(tampered) != before

    def test_objective_metadata_round_trip(self, trained):
        _, ensemble, _ = trained
        back = ensemble_from_dict(ensemble_to_dict(ensemble))
        assert back.objective == "binary"
        assert back.num_classes == 2


class TestValidation:
    def test_format_version_checked(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            ensemble_from_dict(payload)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not a valid model"):
            load_ensemble(path)

    def test_metadata_preserved(self, trained):
        _, ensemble, _ = trained
        payload = ensemble_to_dict(ensemble, objective="binary",
                                   num_classes=2)
        assert payload["objective"] == "binary"
        assert payload["learning_rate"] == ensemble.learning_rate
