"""Exact greedy trainer tests: correctness against brute force and
convergence of the histogram approximation toward it."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.exact import (ExactGBDT, PresortedColumns,
                              exact_best_split, grow_tree_exact)
from repro.core.loss import make_loss
from repro.data.dataset import Dataset
from repro.data.matrix import CSRMatrix


def brute_force_exact(dense, node_rows, grad, hess, g_tot, h_tot, lam):
    """Enumerate every (feature, threshold, default) directly."""
    best_gain = 0.0
    best = None

    def score(g, h):
        return float((g * g / (h + lam)).sum())

    parent = score(g_tot, h_tot)
    for f in range(dense.shape[1]):
        present = [(dense[i, f], i) for i in node_rows
                   if not np.isnan(dense[i, f])]
        present.sort()
        values = sorted({v for v, _ in present})
        for threshold in values[:-1]:
            gl = sum(grad[i] for v, i in present if v <= threshold)
            hl = sum(hess[i] for v, i in present if v <= threshold)
            gp = sum(grad[i] for v, i in present)
            hp = sum(hess[i] for v, i in present)
            for default_left in (False, True):
                g_left = gl + (g_tot - gp if default_left else 0)
                h_left = hl + (h_tot - hp if default_left else 0)
                g_right = g_tot - g_left
                h_right = h_tot - h_left
                if h_left.sum() <= 0 or h_right.sum() <= 0:
                    continue
                gain = 0.5 * (score(g_left, h_left)
                              + score(g_right, h_right) - parent)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (f, threshold, default_left)
    return best, best_gain


class TestExactBestSplit:
    def test_matches_brute_force(self, rng):
        dense = rng.standard_normal((40, 4))
        dense[rng.random((40, 4)) < 0.3] = 0.0  # zeros become missing
        features = CSRMatrix.from_dense(dense)
        masked = dense.copy()
        masked[masked == 0] = np.nan
        grad = rng.standard_normal((40, 1))
        hess = rng.random((40, 1)) + 0.01
        g_tot = grad.sum(axis=0)
        h_tot = hess.sum(axis=0)
        presorted = PresortedColumns(features.to_csc())
        node_of = np.zeros(40, dtype=np.int32)
        split, threshold = exact_best_split(
            presorted, node_of, 0, grad, hess, g_tot, h_tot, 1.0, 0.0,
        )
        ref, ref_gain = brute_force_exact(
            masked, range(40), grad, hess, g_tot, h_tot, 1.0,
        )
        if ref is None:
            assert split is None
        else:
            assert split is not None
            assert split.gain == pytest.approx(ref_gain)
            assert (split.feature, threshold, split.default_left) == ref

    def test_no_split_on_constant_node(self):
        features = CSRMatrix.from_dense(np.ones((10, 2)))
        presorted = PresortedColumns(features.to_csc())
        grad = np.ones((10, 1))
        hess = np.ones((10, 1))
        split, _ = exact_best_split(
            presorted, np.zeros(10, dtype=np.int32), 0, grad, hess,
            grad.sum(0), hess.sum(0), 1.0, 0.0,
        )
        assert split is None


class TestExactTrainer:
    def test_learns(self, small_binary):
        train, valid = small_binary.split(0.8, seed=1)
        cfg = TrainConfig(num_trees=8, num_layers=5, learning_rate=0.3)
        result = ExactGBDT(cfg).fit(train, valid)
        assert result.evals[-1].metric_value > 0.85

    def test_exact_at_least_as_good_as_coarse_hist(self, small_binary):
        """With very few candidate splits the histogram trainer loses
        accuracy the exact trainer keeps."""
        train, valid = small_binary.split(0.8, seed=2)
        cfg_exact = TrainConfig(num_trees=8, num_layers=5,
                                learning_rate=0.3)
        cfg_coarse = TrainConfig(num_trees=8, num_layers=5,
                                 learning_rate=0.3, num_candidates=2)
        exact = ExactGBDT(cfg_exact).fit(train, valid)
        coarse = GBDT(cfg_coarse).fit(train, valid)
        assert exact.evals[-1].metric_value >= \
            coarse.evals[-1].metric_value - 0.01

    def test_hist_converges_to_exact_with_many_bins(self):
        """On data with few distinct values per feature, a histogram with
        enough bins reproduces the exact trees."""
        rng = np.random.default_rng(3)
        dense = rng.integers(1, 7, size=(400, 5)).astype(float)
        labels = (dense[:, 0] + dense[:, 1] > 7).astype(np.int64)
        ds = Dataset(CSRMatrix.from_dense(dense), labels)
        cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=64)
        hist = GBDT(cfg).fit(ds)
        exact = ExactGBDT(cfg).fit(ds)
        hist_preds = GBDT(cfg).predict(hist.ensemble, ds)
        exact_preds = ExactGBDT(cfg).predict(exact.ensemble, ds)
        np.testing.assert_allclose(hist_preds, exact_preds, atol=1e-9)

    def test_trees_respect_depth(self, small_binary):
        cfg = TrainConfig(num_trees=1, num_layers=3)
        result = ExactGBDT(cfg).fit(small_binary)
        assert max(result.ensemble.trees[0].nodes) <= 6

    def test_leaf_assignment_matches_routing(self, small_binary):
        cfg = TrainConfig(num_trees=1, num_layers=4)
        loss = make_loss("binary")
        grad, hess = loss.gradients(
            small_binary.labels,
            loss.init_scores(small_binary.num_instances),
        )
        presorted = PresortedColumns(small_binary.csc())
        tree, leaf = grow_tree_exact(cfg, small_binary, presorted, grad,
                                     hess)
        routed = tree.assign_leaves(small_binary.csc())
        np.testing.assert_array_equal(leaf, routed)
