"""Split finding tests: vectorized search against brute-force enumeration,
default-direction handling, and the determinism contract."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import Histogram
from repro.core.split import (SplitInfo, find_best_split, leaf_weight,
                              split_gain_of)


def random_histogram(rng, num_features=4, num_bins=5, gradient_dim=1,
                     missing=True):
    """Histogram with optional extra 'missing' gradient mass."""
    hist = Histogram(num_features, num_bins, gradient_dim)
    hist.grad[:] = rng.standard_normal(hist.grad.shape)
    hist.hess[:] = rng.random(hist.hess.shape) + 0.01
    grad_total = hist.grad_view().sum(axis=(0, 1)) / num_features
    hess_total = hist.hess_view().sum(axis=(0, 1)) / num_features
    # per-feature column sums must each equal the node totals; rescale so
    # the histogram is self-consistent (each feature summarizes the node)
    gv, hv = hist.grad_view(), hist.hess_view()
    for f in range(num_features):
        gv[f] += (grad_total - gv[f].sum(axis=0)) / num_bins
        hv[f] += (hess_total - hv[f].sum(axis=0)) / num_bins + 0.01
    grad_total = gv[0].sum(axis=0)
    hess_total = hv[0].sum(axis=0)
    if missing:
        grad_total = grad_total + rng.standard_normal(gradient_dim)
        hess_total = hess_total + rng.random(gradient_dim) + 0.05
    return hist, grad_total, hess_total


def brute_force_best(hist, grad_total, hess_total, lam, gamma, bins):
    best = None
    for f in range(hist.num_features):
        for b in range(int(bins[f]) - 1):
            for default_left in (False, True):
                gain = split_gain_of(hist, grad_total, hess_total, lam,
                                     gamma, f, b, default_left)
                # skip empty children like the vectorized search
                gl = hist.hess_view()[f, : b + 1].sum(axis=0)
                if default_left:
                    gl = gl + (hess_total
                               - hist.hess_view()[f].sum(axis=0))
                gr = hess_total - gl
                if gl.sum() <= 0 or gr.sum() <= 0:
                    continue
                cand = SplitInfo(f, b, default_left, gain)
                if gain > 0 and cand.better_than(best):
                    best = cand
    return best


class TestLeafWeight:
    def test_formula(self):
        w = leaf_weight(np.array([2.0]), np.array([3.0]), 1.0)
        assert w == pytest.approx(-0.5)

    def test_vector(self):
        w = leaf_weight(np.array([1.0, -2.0]), np.array([1.0, 3.0]), 1.0)
        np.testing.assert_allclose(w, [-0.5, 0.5])


class TestFindBestSplit:
    def test_matches_brute_force(self, rng):
        hist, g, h = random_histogram(rng)
        bins = np.full(4, 5)
        split = find_best_split(hist, g, h, 1.0, 0.0, bins)
        ref = brute_force_best(hist, g, h, 1.0, 0.0, bins)
        assert (split is None) == (ref is None)
        if split is not None:
            assert (split.feature, split.bin, split.default_left) == \
                (ref.feature, ref.bin, ref.default_left)
            assert split.gain == pytest.approx(ref.gain)

    def test_feature_offset(self, rng):
        hist, g, h = random_histogram(rng)
        bins = np.full(4, 5)
        base = find_best_split(hist, g, h, 1.0, 0.0, bins)
        shifted = find_best_split(hist, g, h, 1.0, 0.0, bins,
                                  feature_offset=100)
        assert shifted.feature == base.feature + 100

    def test_respects_bins_per_feature(self, rng):
        hist, g, h = random_histogram(rng)
        # features with a single bin can never split
        bins = np.array([1, 1, 1, 1])
        assert find_best_split(hist, g, h, 1.0, 0.0, bins) is None

    def test_gamma_subtracts_from_gain(self, rng):
        hist, g, h = random_histogram(rng)
        bins = np.full(4, 5)
        s0 = find_best_split(hist, g, h, 1.0, 0.0, bins)
        s1 = find_best_split(hist, g, h, 1.0, 0.1, bins)
        if s0 is not None and s1 is not None:
            assert s1.gain == pytest.approx(s0.gain - 0.1)

    def test_gain_decreases_with_lambda(self, rng):
        hist, g, h = random_histogram(rng)
        bins = np.full(4, 5)
        gains = []
        for lam in (0.1, 1.0, 10.0):
            s = find_best_split(hist, g, h, lam, 0.0, bins)
            gains.append(s.gain if s is not None else 0.0)
        assert gains[0] >= gains[1] >= gains[2]

    def test_huge_gamma_gives_no_split(self, rng):
        hist, g, h = random_histogram(rng)
        bins = np.full(4, 5)
        assert find_best_split(hist, g, h, 1.0, 1e9, bins) is None

    def test_pure_node_has_no_split(self):
        # all gradient mass in one bin of each feature: any split gives
        # an empty child on one side or no gain
        hist = Histogram(2, 3, 1)
        hist.grad_view()[:, 0, 0] = -5.0
        hist.hess_view()[:, 0, 0] = 2.0
        g = np.array([-5.0])
        h = np.array([2.0])
        assert find_best_split(hist, g, h, 1.0, 0.0,
                               np.array([3, 3])) is None

    def test_missing_values_can_matter(self):
        """A node where the winning arrangement routes missing right."""
        hist = Histogram(1, 2, 1)
        hist.grad_view()[0, 0, 0] = -4.0   # bin 0: negative gradients
        hist.hess_view()[0, 0, 0] = 2.0
        hist.grad_view()[0, 1, 0] = 1.0
        hist.hess_view()[0, 1, 0] = 1.0
        # node totals include missing mass aligned with bin-1 gradients
        g = np.array([-4.0 + 1.0 + 3.0])
        h = np.array([2.0 + 1.0 + 1.5])
        split = find_best_split(hist, g, h, 1.0, 0.0, np.array([2]))
        assert split is not None
        assert not split.default_left

    def test_bins_length_mismatch(self, rng):
        hist, g, h = random_histogram(rng)
        with pytest.raises(ValueError):
            find_best_split(hist, g, h, 1.0, 0.0, np.array([5]))


class TestDeterminismContract:
    def test_sort_key_order(self):
        a = SplitInfo(2, 1, False, 1.0)
        b = SplitInfo(1, 0, False, 0.5)
        assert a.better_than(b)          # higher gain wins
        c = SplitInfo(1, 3, False, 1.0)
        assert c.better_than(a)          # tie: lower feature wins
        d = SplitInfo(1, 2, False, 1.0)
        assert d.better_than(c)          # tie: lower bin wins
        e = SplitInfo(1, 2, True, 1.0)
        assert d.better_than(e)          # tie: default-right wins
        assert a.better_than(None)

    def test_exact_tie_resolution_in_search(self):
        """Two identical features: the lower id must be chosen."""
        hist = Histogram(3, 3, 1)
        for f in (1, 2):  # feature 0 is empty/useless
            hist.grad_view()[f, 0, 0] = -3.0
            hist.hess_view()[f, 0, 0] = 1.0
            hist.grad_view()[f, 1, 0] = 3.0
            hist.hess_view()[f, 1, 0] = 1.0
        g = np.array([0.0])
        h = np.array([2.0])
        split = find_best_split(hist, g, h, 1.0, 0.0, np.array([3, 3, 3]))
        assert split.feature == 1
        assert split.bin == 0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    lam=st.floats(0.01, 10.0),
    gradient_dim=st.integers(1, 3),
)
def test_property_matches_brute_force(seed, lam, gradient_dim):
    rng = np.random.default_rng(seed)
    hist, g, h = random_histogram(rng, gradient_dim=gradient_dim)
    bins = np.full(4, 5)
    split = find_best_split(hist, g, h, lam, 0.0, bins)
    ref = brute_force_best(hist, g, h, lam, 0.0, bins)
    if ref is None:
        assert split is None
    else:
        assert split is not None
        assert split.gain == pytest.approx(ref.gain)
        assert (split.feature, split.bin, split.default_left) == \
            (ref.feature, ref.bin, ref.default_left)
