"""Histogram kernel tests: every kernel against a brute-force reference,
plus the subtraction identity of Section 2.1.2."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import (ColumnwiseIndex, Histogram,
                                  build_colstore_columnwise,
                                  build_colstore_hybrid,
                                  build_colstore_layer, build_rowstore,
                                  histogram_size_bytes, node_totals)
from repro.data.matrix import CSRMatrix


def brute_force_histogram(dense_bins, rows, grad, hess, num_bins):
    """Reference: iterate entries one by one. -1 marks a missing value."""
    num_features = dense_bins.shape[1]
    hist = Histogram(num_features, num_bins, grad.shape[1])
    gv, hv = hist.grad_view(), hist.hess_view()
    for i in rows:
        for f in range(num_features):
            b = dense_bins[i, f]
            if b < 0:
                continue
            gv[f, b] += grad[i]
            hv[f, b] += hess[i]
    return hist


def make_binned(rng, num_rows=40, num_features=6, num_bins=5,
                density=0.6):
    """Random binned CSR plus the dense bin matrix (-1 = missing)."""
    dense = np.full((num_rows, num_features), -1, dtype=np.int64)
    mask = rng.random((num_rows, num_features)) < density
    dense[mask] = rng.integers(0, num_bins, size=mask.sum())
    rows = []
    for i in range(num_rows):
        cols = np.flatnonzero(dense[i] >= 0)
        rows.append([(int(c), int(dense[i, c])) for c in cols])
    csr = CSRMatrix.from_rows(rows, num_features, dtype=np.int32)
    return csr, dense


class TestHistogramContainer:
    def test_size_formula(self):
        # Sizehist = 2 * D * q * C * 8 (Section 3.1.1)
        assert histogram_size_bytes(330_000, 20, 9) == \
            2 * 330_000 * 20 * 9 * 8
        hist = Histogram(10, 8, 3)
        assert hist.nbytes == histogram_size_bytes(10, 8, 3)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Histogram(0, 5, 1)

    def test_add_and_subtract(self, rng):
        a = Histogram(3, 4, 2)
        b = Histogram(3, 4, 2)
        a.grad[:] = rng.standard_normal(a.grad.shape)
        b.grad[:] = rng.standard_normal(b.grad.shape)
        total = a.copy().add_inplace(b)
        back = total.subtract(b)
        assert back.allclose(a)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shapes"):
            Histogram(3, 4, 2).subtract(Histogram(3, 4, 1))

    def test_views_share_memory(self):
        hist = Histogram(2, 3, 1)
        hist.grad_view()[1, 2, 0] = 5.0
        assert hist.grad[1 * 3 + 2, 0] == 5.0


class TestRowstoreKernel:
    @pytest.mark.parametrize("gradient_dim", [1, 3])
    def test_matches_brute_force(self, rng, gradient_dim):
        csr, dense = make_binned(rng)
        grad = rng.standard_normal((40, gradient_dim))
        hess = rng.random((40, gradient_dim))
        rows = rng.choice(40, size=17, replace=False)
        rows.sort()
        hist, touched = build_rowstore(csr, rows, grad, hess, 5)
        ref = brute_force_histogram(dense, rows, grad, hess, 5)
        assert hist.allclose(ref, rtol=1e-12)
        assert touched == sum((dense[r] >= 0).sum() for r in rows)

    def test_empty_rows(self, rng):
        csr, _ = make_binned(rng)
        grad = rng.standard_normal((40, 1))
        hist, touched = build_rowstore(csr, np.empty(0, dtype=np.int64),
                                       grad, grad, 5)
        assert touched == 0
        assert np.all(hist.grad == 0)


class TestColstoreLayerKernel:
    @pytest.mark.parametrize("gradient_dim", [1, 2])
    def test_matches_brute_force_per_node(self, rng, gradient_dim):
        csr, dense = make_binned(rng)
        csc = csr.to_csc()
        grad = rng.standard_normal((40, gradient_dim))
        hess = rng.random((40, gradient_dim))
        # three "nodes" plus some retired rows (slot -1)
        slot = rng.integers(-1, 3, size=40)
        hists, touched = build_colstore_layer(csc, slot, 3, grad, hess, 5)
        assert touched == csc.nnz
        for s in range(3):
            rows = np.flatnonzero(slot == s)
            ref = brute_force_histogram(dense, rows, grad, hess, 5)
            assert hists[s].allclose(ref, rtol=1e-12)

    def test_no_active_slots(self, rng):
        csr, _ = make_binned(rng)
        grad = rng.standard_normal((40, 1))
        hists, _ = build_colstore_layer(
            csr.to_csc(), np.full(40, -1), 0, grad, grad, 5
        )
        assert hists == []


class TestColstoreHybridKernel:
    def test_matches_brute_force(self, rng):
        csr, dense = make_binned(rng, num_rows=60, density=0.3)
        csc = csr.to_csc()
        grad = rng.standard_normal((60, 1))
        hess = rng.random((60, 1))
        node_of = rng.integers(5, 8, size=60)
        node_rows = np.flatnonzero(node_of == 6)
        hist, scanned, searched = build_colstore_hybrid(
            csc, node_rows, node_of, 6, grad, hess, 5
        )
        ref = brute_force_histogram(dense, node_rows, grad, hess, 5)
        assert hist.allclose(ref, rtol=1e-12)
        assert scanned + searched > 0

    def test_uses_both_strategies(self, rng):
        # tiny node on a dataset with long columns forces binary search;
        # short columns force linear scans
        csr, dense = make_binned(rng, num_rows=200, num_features=4,
                                 density=0.9)
        sparse_csr, sparse_dense = make_binned(rng, num_rows=200,
                                               num_features=4,
                                               density=0.01)
        grad = rng.standard_normal((200, 1))
        node_of = np.zeros(200, dtype=np.int64)
        node_of[:3] = 1
        node_rows = np.arange(3)
        _, scanned_dense, searched_dense = build_colstore_hybrid(
            csr.to_csc(), node_rows, node_of, 1, grad, grad, 5
        )
        assert searched_dense > 0  # long columns -> binary search
        _, scanned_sparse, searched_sparse = build_colstore_hybrid(
            sparse_csr.to_csc(), node_rows, node_of, 1, grad, grad, 5
        )
        assert scanned_sparse > 0  # short columns -> linear scan


class TestColumnwiseIndexKernel:
    def test_matches_brute_force_after_splits(self, rng):
        csr, dense = make_binned(rng, num_rows=50)
        csc = csr.to_csc()
        index = ColumnwiseIndex(csc)
        grad = rng.standard_normal((50, 1))
        hess = rng.random((50, 1))
        # initial: everything on node 0
        hist, _ = build_colstore_columnwise(index, 0, grad, hess, 5)
        ref = brute_force_histogram(dense, np.arange(50), grad, hess, 5)
        assert hist.allclose(ref, rtol=1e-12)
        # split node 0 -> nodes 1, 2 and regroup
        node_of = np.where(rng.random(50) < 0.4, 1, 2)
        moved = index.update_after_split(node_of, [1, 2])
        assert moved == csc.nnz
        for node in (1, 2):
            hist, _ = build_colstore_columnwise(index, node, grad, hess, 5)
            ref = brute_force_histogram(
                dense, np.flatnonzero(node_of == node), grad, hess, 5
            )
            assert hist.allclose(ref, rtol=1e-12)

    def test_node_entries_empty_for_unknown_node(self, rng):
        csr, _ = make_binned(rng)
        index = ColumnwiseIndex(csr.to_csc())
        rows, bins = index.node_entries(0, 99)
        assert rows.size == 0 and bins.size == 0


class TestNodeTotals:
    def test_sums(self, rng):
        grad = rng.standard_normal((30, 2))
        hess = rng.random((30, 2))
        rows = np.array([1, 5, 9])
        g, h = node_totals(rows, grad, hess)
        np.testing.assert_allclose(g, grad[rows].sum(axis=0))
        np.testing.assert_allclose(h, hess[rows].sum(axis=0))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_subtraction_identity(seed):
    """parent histogram == left + right for any disjoint split."""
    rng = np.random.default_rng(seed)
    csr, _ = make_binned(rng, num_rows=30, num_features=5, num_bins=4)
    grad = rng.standard_normal((30, 2))
    hess = rng.random((30, 2))
    rows = np.arange(30)
    go_left = rng.random(30) < rng.random()
    parent, _ = build_rowstore(csr, rows, grad, hess, 4)
    left, _ = build_rowstore(csr, rows[go_left], grad, hess, 4)
    right, _ = build_rowstore(csr, rows[~go_left], grad, hess, 4)
    derived = parent.subtract(left)
    assert derived.allclose(right, rtol=1e-9, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_kernels_agree(seed):
    """Row-store, hybrid column and columnwise kernels give one answer."""
    rng = np.random.default_rng(seed)
    csr, _ = make_binned(rng, num_rows=25, num_features=4, num_bins=4)
    csc = csr.to_csc()
    grad = rng.standard_normal((25, 1))
    hess = rng.random((25, 1))
    node_of = rng.integers(0, 2, size=25)
    rows = np.flatnonzero(node_of == 1)
    row_hist, _ = build_rowstore(csr, rows, grad, hess, 4)
    hyb_hist, _, _ = build_colstore_hybrid(csc, rows, node_of, 1, grad,
                                           hess, 4)
    index = ColumnwiseIndex(csc)
    index.update_after_split(node_of, [0, 1])
    col_hist, _ = build_colstore_columnwise(index, 1, grad, hess, 4)
    assert row_hist.allclose(hyb_hist, rtol=1e-12)
    assert row_hist.allclose(col_hist, rtol=1e-12)
